"""Plan executors.

The discrete-event engine that walks an execution plan against the
simulated clouds. Three scheduling strategies reproduce the spectrum in
3.3:

* :class:`SequentialExecutor` -- one operation at a time (the floor).
* :class:`BestEffortExecutor` -- Terraform's documented behaviour: a
  bounded-parallel, unprioritized graph walk (the baseline).
* :class:`CriticalPathExecutor` -- the cloudless scheduler: ready
  operations are dispatched longest-remaining-path first, optionally
  rate-limit aware, with retry handling for transient faults.

Scale notes (see ``docs/performance.md``): the dispatch loop pulls from
a per-strategy ready *queue* (FIFO deque or priority heap) instead of
scanning a ready list, so picking the next operation is O(log n)
instead of O(n) -- at 10k resources the difference between a quadratic
and a near-linear apply. The frozen pre-optimization loop lives in
``repro.deploy.reference`` for equivalence tests and speedup
measurement; scheduling decisions here must stay byte-identical to it.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from ..cloud.base import CloudAPIError, PendingOperation
from ..cloud.clock import EventQueue
from ..cloud.gateway import CloudGateway
from ..cloud.resilience import (
    GATE_OPEN,
    GATE_WAIT,
    HealthMonitor,
    RetryPolicy,
    is_outage_error,
)
from ..graph.critical_path import analyze
from ..graph.dag import Dag
from ..graph.partition import change_partition
from ..graph.plan import Action, Plan, PlannedChange
from ..lang.values import is_unknown
from ..perf import PERF
from ..state.document import ResourceState, StateDocument
from .wal import IntentJournal


@dataclasses.dataclass
class OperationRecord:
    """One executed API operation (for timing/Gantt analysis)."""

    change_id: str
    operation: str
    t_submit: float
    t_complete: float
    ok: bool
    error_code: str = ""
    attempt: int = 1

    @property
    def duration(self) -> float:
        return self.t_complete - self.t_submit


@dataclasses.dataclass
class Quarantine:
    """A change parked because its partition is unreachable.

    Not a failure: the work is deferred, not lost. A later apply or
    ``resume`` re-plans it once the partition's breaker lets probes
    through again.
    """

    change_id: str
    provider: str
    region: str
    reason: str
    at: float  # sim time the change was parked

    @property
    def partition(self) -> str:
        return f"{self.provider}/{self.region}" if self.region else self.provider


@dataclasses.dataclass
class ApplyResult:
    """Outcome of one apply run."""

    started_at: float
    finished_at: float
    succeeded: List[str] = dataclasses.field(default_factory=list)
    failed: Dict[str, str] = dataclasses.field(default_factory=dict)
    skipped: List[str] = dataclasses.field(default_factory=list)
    operations: List[OperationRecord] = dataclasses.field(default_factory=list)
    state: Optional[StateDocument] = None
    api_calls: int = 0
    #: changes parked behind unreachable partitions (degraded mode);
    #: typed dispositions, not failures -- see :class:`Quarantine`
    quarantined: Dict[str, Quarantine] = dataclasses.field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def ok(self) -> bool:
        return not self.failed and not self.skipped and not self.quarantined

    @property
    def partial(self) -> bool:
        """Degraded-mode completion: everything reachable converged,
        the rest is parked awaiting partition recovery."""
        return bool(self.quarantined) and not self.failed and not self.skipped

    def quarantined_partitions(self) -> List[str]:
        return sorted({q.partition for q in self.quarantined.values()})

    def errors_for(self, change_id: str) -> List[OperationRecord]:
        return [
            op for op in self.operations if op.change_id == change_id and not op.ok
        ]


@dataclasses.dataclass
class _Running:
    change: PlannedChange
    steps: List[str]
    step_idx: int = 0
    attempts: int = 0
    pending: Optional[PendingOperation] = None
    #: WAL bookkeeping (unused when no journal is attached): the intent
    #: id logged for the in-flight step, cleared at commit/abort.
    open_iid: Optional[int] = None


_STEPS = {
    Action.CREATE: ["create"],
    Action.UPDATE: ["update"],
    Action.DELETE: ["delete"],
    Action.REPLACE: ["delete", "create"],
    Action.READ: [],
}


class _RevStr:
    """Reverse-ordered string wrapper for min-heaps that need max-cid ties."""

    __slots__ = ("s",)

    def __init__(self, s: str):
        self.s = s

    def __lt__(self, other: "_RevStr") -> bool:
        return self.s > other.s

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _RevStr) and self.s == other.s


class _ReadyQueue:
    """The executor's pool of dispatchable change ids.

    Each scheduling strategy supplies a queue whose ``pop`` order is
    *provably identical* to what its ``pick_next`` would choose from a
    ready list maintained the old way (initial roots pushed in sorted
    order, successors pushed in sorted order as they unblock) -- the
    equivalence tests in ``tests/test_executor_equivalence.py`` hold the
    two implementations together.
    """

    def push(self, cid: str) -> None:
        raise NotImplementedError

    def pop(self) -> str:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class _FifoReady(_ReadyQueue):
    """Dispatch in the order changes became ready (``pick_next = ready[0]``)."""

    def __init__(self) -> None:
        self._items: Deque[str] = deque()

    def push(self, cid: str) -> None:
        self._items.append(cid)

    def pop(self) -> str:
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)


class _MinIdReady(_ReadyQueue):
    """Dispatch the smallest change id (``pick_next = min(ready)``)."""

    def __init__(self) -> None:
        self._heap: List[str] = []

    def push(self, cid: str) -> None:
        heapq.heappush(self._heap, cid)

    def pop(self) -> str:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class _PriorityReady(_ReadyQueue):
    """Highest critical-path priority first; ties broken by max cid.

    Mirrors ``max(ready, key=lambda cid: (priority[cid], cid))``: the
    min-heap entry ``(-priority, _RevStr(cid))`` sorts exactly that
    comparison's reverse.
    """

    def __init__(self, priority: Dict[str, float]):
        self._priority = priority
        self._heap: List[Tuple[float, _RevStr, str]] = []

    def push(self, cid: str) -> None:
        pri = self._priority.get(cid, 0.0)
        heapq.heappush(self._heap, (-pri, _RevStr(cid), cid))

    def pop(self) -> str:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class _GroupedRateAwareReady(_ReadyQueue):
    """Rate-aware critical-path dispatch via per-provider heaps.

    The old selection over a flat ready list was::

        best = max(ready, key=lambda cid: (pri(cid), cid))
        candidates = [cid for cid in ready if pri(cid) >= 0.8 * pri(best)]
        return min(candidates, key=lambda cid: (est(cid), -pri(cid), cid))

    where ``est(cid)`` is the provider write bucket's next start time --
    a function of the change's *provider alone*. Group the ready set by
    provider limiter, keep each group as a min-heap on ``(-pri, cid)``,
    and the winner is the min over in-band group tops of
    ``(est_group, -pri, cid)``:

    * a group's top has the group's max priority, so any group whose top
      is below the band has no in-band members;
    * within a group ``est`` is constant, so among its in-band members
      the argmin of ``(est, -pri, cid)`` is the heap top itself.

    That turns an O(ready) scan with a rate-limiter probe per candidate
    into O(#providers) probes plus one heap pop.
    """

    def __init__(
        self, priority: Dict[str, float], plan: Plan, gateway: CloudGateway
    ):
        self._priority = priority
        self._plan = plan
        self._gateway = gateway
        #: limiter-identity key -> (limiter or None, heap of (-pri, cid))
        self._groups: Dict[Any, Tuple[Any, List[Tuple[float, str]]]] = {}
        self._limiter_by_rtype: Dict[str, Any] = {}
        self._size = 0

    def _limiter_for(self, rtype: str) -> Any:
        if rtype not in self._limiter_by_rtype:
            try:
                plane = self._gateway.plane_for(rtype)
            except Exception:
                self._limiter_by_rtype[rtype] = None
            else:
                self._limiter_by_rtype[rtype] = plane.limiter
        return self._limiter_by_rtype[rtype]

    def push(self, cid: str) -> None:
        limiter = self._limiter_for(self._plan.changes[cid].rtype)
        key = id(limiter) if limiter is not None else None
        group = self._groups.get(key)
        if group is None:
            group = (limiter, [])
            self._groups[key] = group
        pri = self._priority.get(cid, 0.0)
        heapq.heappush(group[1], (-pri, cid))
        self._size += 1

    def pop(self) -> str:
        now = self._gateway.clock.now
        band = 0.8 * max(-heap[0][0] for _, heap in self._groups.values())
        best_key: Any = None
        best: Optional[Tuple[float, float, str]] = None
        for key, (limiter, heap) in self._groups.items():
            neg_pri, cid = heap[0]
            if -neg_pri < band:
                continue
            est = limiter.available_at("write", now) if limiter is not None else now
            cand = (est, neg_pri, cid)
            if best is None or cand < best:
                best = cand
                best_key = key
        limiter, heap = self._groups[best_key]
        cid = heapq.heappop(heap)[1]
        if not heap:
            del self._groups[best_key]
        self._size -= 1
        return cid

    def __len__(self) -> int:
        return self._size


class _PickNextReady(_ReadyQueue):
    """Compatibility queue for subclasses that only override ``pick_next``.

    Preserves the pre-optimization behaviour (a plain list the picker
    scans) so custom schedulers keep working unchanged -- at the old
    O(n) cost.
    """

    def __init__(self, pick: Callable[[List[str]], str]):
        self._pick = pick
        self._items: List[str] = []

    def push(self, cid: str) -> None:
        self._items.append(cid)

    def pop(self) -> str:
        cid = self._pick(self._items)
        self._items.remove(cid)
        return cid

    def __len__(self) -> int:
        return len(self._items)


class PlanExecutor:
    """Base discrete-event executor; subclasses pick scheduling order."""

    name = "base"

    def __init__(
        self,
        gateway: CloudGateway,
        concurrency: int = 10,
        retry: Optional[RetryPolicy] = None,
        health: Optional[HealthMonitor] = None,
    ):
        self.gateway = gateway
        self.concurrency = max(1, concurrency)
        self.retry = retry or RetryPolicy()
        #: optional partition health: when set, dispatch consults the
        #: circuit breakers and unreachable partitions are quarantined
        #: instead of failed. ``None`` (the default) keeps scheduling
        #: byte-identical to the golden reference.
        self.health = health

    # -- scheduling hooks ---------------------------------------------------

    def prepare(self, plan: Plan, dag: Dag) -> None:
        """Called once before execution; compute priorities here."""

    def pick_next(self, ready: List[str]) -> str:
        """Choose the next ready change id. Default: FIFO.

        Contract: must return an element of ``ready`` (the caller
        removes it). This is the *reference* statement of each
        strategy's scheduling order; the hot path dispatches through
        :meth:`_make_ready_queue`, whose pop order must match it
        exactly (heap variants preserve determinism by tie-breaking on
        the change id). Subclasses that override only ``pick_next``
        still work -- the dispatch loop detects that and falls back to
        a list-based queue driven by this method.
        """
        return ready[0]

    def _make_ready_queue(self) -> _ReadyQueue:
        """The ready-pool implementation matching :meth:`pick_next`.

        Called after :meth:`prepare`, so strategy state (priorities) is
        available. Override together with ``pick_next``.
        """
        return _FifoReady()

    def _ready_queue(self) -> _ReadyQueue:
        cls = type(self)
        pick_depth = next(
            i for i, k in enumerate(cls.__mro__) if "pick_next" in vars(k)
        )
        queue_depth = next(
            i for i, k in enumerate(cls.__mro__) if "_make_ready_queue" in vars(k)
        )
        if pick_depth < queue_depth:
            # a subclass customized the picker without supplying a queue
            return _PickNextReady(self.pick_next)
        return self._make_ready_queue()

    # -- main loop -------------------------------------------------------------

    def apply(
        self,
        plan: Plan,
        wal: Optional[IntentJournal] = None,
        crash_hook: Optional[Callable[[int], None]] = None,
    ) -> ApplyResult:
        """Execute the plan; mutates ``plan.state`` as the new state.

        ``wal`` attaches a write-ahead intent journal: every mutating
        step logs an intent before dispatch and a commit marker after
        its state commit, and creates carry idempotency tokens minted
        from the journal's run id. ``crash_hook`` is called with a
        monotonically increasing index at every event boundary (after
        the event is popped, before it is processed); raising
        :class:`~repro.deploy.wal.SimulatedCrash` from it models the
        process dying at exactly that boundary. Both default to ``None``
        and add zero work on that path -- scheduling stays byte-identical
        to the golden reference.
        """
        clock = self.gateway.clock
        started = clock.now
        calls_before = self.gateway.total_api_calls()
        result = ApplyResult(started_at=started, finished_at=started)
        state = plan.state

        dag = plan.execution_dag()
        self.prepare(plan, dag)
        PERF.count("executor.applies")

        indeg: Dict[str, int] = dag.in_degrees()
        ready = self._ready_queue()
        for cid in sorted(n for n, d in indeg.items() if d == 0):
            ready.push(cid)
        running: Dict[str, _Running] = {}
        done: Set[str] = set()
        dead: Set[str] = set()  # failed, skipped, or quarantined
        events = EventQueue(clock)
        health = self.health
        #: (provider, region) -> change ids held back while that
        #: partition's half-open breaker has its probe in flight
        paused: Dict[Tuple[str, str], List[str]] = {}

        def release_successors(cid: str) -> None:
            for succ in sorted(dag.successors(cid)):
                indeg[succ] -= 1
                if indeg[succ] == 0 and succ not in dead:
                    ready.push(succ)

        def finish_change(cid: str, ok: bool, error: str = "") -> None:
            rc = running.pop(cid, None)
            if (
                wal is not None
                and not ok
                and rc is not None
                and rc.open_iid is not None
            ):
                wal.log_abort(rc.open_iid, error=error)
                rc.open_iid = None
            if ok:
                done.add(cid)
                result.succeeded.append(cid)
                release_successors(cid)
                return
            dead.add(cid)
            result.failed[cid] = error
            # Skip everything downstream. The walk prunes at nodes that
            # are already dead: whenever a node is marked dead, its
            # entire live descendant closure is marked in the same
            # pass, so an already-dead node has nothing new below it.
            # (No descendant can be done or running -- it would have
            # needed this change to finish first.)
            stack = [cid]
            while stack:
                cur = stack.pop()
                for succ in sorted(dag.successors(cur)):
                    if succ in dead:
                        continue
                    dead.add(succ)
                    result.skipped.append(succ)
                    stack.append(succ)

        def quarantine_change(
            cid: str, reason: str, part: Tuple[str, str]
        ) -> None:
            """Park ``cid`` and its live descendant closure as
            Quarantined: typed deferral, not failure. An open WAL
            intent is aborted with a ``quarantined:`` marker so
            recovery classifies it as parked work."""
            rc = running.pop(cid, None)
            if wal is not None and rc is not None and rc.open_iid is not None:
                wal.log_abort(rc.open_iid, error=f"quarantined: {reason}")
                rc.open_iid = None
            if cid in dead or cid in done:
                return
            dead.add(cid)
            result.quarantined[cid] = Quarantine(
                cid, part[0], part[1], reason, clock.now
            )
            PERF.count("executor.quarantined")
            stack = [cid]
            while stack:
                cur = stack.pop()
                for succ in sorted(dag.successors(cur)):
                    if succ in dead:
                        continue
                    dead.add(succ)
                    result.quarantined[succ] = Quarantine(
                        succ,
                        part[0],
                        part[1],
                        f"depends on quarantined {cur}",
                        clock.now,
                    )
                    stack.append(succ)

        def quarantine_paused(part: Tuple[str, str], reason: str) -> None:
            for held in paused.pop(part, []):
                if held not in dead and held not in done:
                    quarantine_change(held, reason, part)

        def drain_paused(part: Tuple[str, str]) -> None:
            """Re-gate changes held behind ``part``'s probe (called when
            the probe succeeded and the breaker closed)."""
            for held in paused.pop(part, []):
                if held in dead or held in done:
                    continue
                held_rc = running.get(held)
                if held_rc is not None:
                    submit_step(held, held_rc)

        def start(cid: str) -> None:
            change = plan.changes[cid]
            steps = list(_STEPS[change.action])
            rc = _Running(change=change, steps=steps)
            if not steps:  # READ: value already resolved at plan time
                result.operations.append(
                    OperationRecord(cid, "read", clock.now, clock.now, True)
                )
                done.add(cid)
                result.succeeded.append(cid)
                release_successors(cid)
                return
            running[cid] = rc
            submit_step(cid, rc)

        def submit_step(cid: str, rc: _Running) -> None:
            if health is not None:
                part = self._partition(rc.change, state)
                if part[0]:
                    verdict = health.gate(part[0], part[1], clock.now)
                    if verdict == GATE_OPEN:
                        # fail fast locally: zero API calls into the
                        # dark partition once its breaker is open
                        PERF.count("executor.fast_fails")
                        quarantine_change(
                            cid,
                            f"partition {part[0]}/{part[1] or '*'} "
                            f"unreachable (circuit open)",
                            part,
                        )
                        return
                    if verdict == GATE_WAIT:
                        # a probe is already in flight; hold this change
                        # until the probe settles the partition's fate
                        paused.setdefault(part, []).append(cid)
                        return
            rc.attempts += 1
            token = ""
            if wal is not None:
                op_name = rc.steps[rc.step_idx]
                if op_name == "create":
                    # Stable across retries AND across resume (the
                    # journal keeps its run id), so a re-sent create
                    # deduplicates against the crashed run's resource.
                    token = f"{wal.run_id}/{cid}/{rc.step_idx}"
                if rc.attempts == 1:
                    prior_id = ""
                    if op_name in ("delete", "update"):
                        prior = (
                            rc.change.prior
                            if rc.change.prior
                            else state.get(rc.change.address)
                        )
                        if prior is not None:
                            prior_id = prior.resource_id
                    rc.open_iid = wal.log_intent(
                        cid,
                        op_name,
                        rc.change.rtype,
                        address=str(rc.change.address),
                        token=token,
                        resource_id=prior_id,
                    )
            try:
                pending = self._submit_operation(plan, rc, state, token=token)
            except CloudAPIError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, rc.steps[rc.step_idx], clock.now, clock.now,
                        False, exc.code, rc.attempts,
                    )
                )
                finish_change(cid, False, str(exc))
                return
            except _UnresolvedValueError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, rc.steps[rc.step_idx], clock.now, clock.now,
                        False, "UnresolvedValue", rc.attempts,
                    )
                )
                finish_change(cid, False, str(exc))
                return
            rc.pending = pending
            events.schedule(pending.t_complete, ("complete", cid))

        def on_complete(cid: str) -> None:
            rc = running.get(cid)
            if rc is None or rc.pending is None:
                return
            op_name = rc.steps[rc.step_idx]
            try:
                response = rc.pending.resolve()
            except CloudAPIError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, op_name, rc.pending.t_submit, clock.now,
                        False, exc.code, rc.attempts,
                    )
                )
                if health is not None:
                    part = self._partition(rc.change, state)
                    outage = is_outage_error(exc)
                    if part[0]:
                        health.record(
                            part[0],
                            part[1],
                            ok=False,
                            now=clock.now,
                            latency_s=clock.now - rc.pending.t_submit,
                            code=exc.code,
                            outage=outage,
                        )
                    if outage and part[0]:
                        if health.blocked(part[0], part[1], clock.now):
                            # this failure tripped (or re-tripped) the
                            # breaker: park the change and everything
                            # held behind the failed probe
                            reason = (
                                f"partition {part[0]}/{part[1] or '*'} "
                                f"unreachable: {exc.code}"
                            )
                            quarantine_change(cid, reason, part)
                            quarantine_paused(part, reason)
                            return
                        if not (
                            exc.transient
                            and rc.attempts < self.retry.max_attempts
                        ):
                            # outage-class exhaustion parks instead of
                            # failing: the change is fine, the cloud is
                            # not
                            quarantine_change(
                                cid,
                                f"retries exhausted against "
                                f"{part[0]}/{part[1] or '*'}: {exc.code}",
                                part,
                            )
                            return
                if exc.transient and rc.attempts < self.retry.max_attempts:
                    # event-loop retry over the same RetryPolicy the
                    # resilience layer uses; schedule order (and hence
                    # golden-test equivalence) is untouched by counters
                    delay = self.retry.backoff(rc.attempts)
                    PERF.count("resilience.retries")
                    PERF.observe("resilience.backoff_sim_s", delay)
                    events.schedule(clock.now + delay, ("retry", cid))
                else:
                    if exc.transient:
                        PERF.count("resilience.gave_up")
                    finish_change(cid, False, str(exc))
                return
            result.operations.append(
                OperationRecord(
                    cid, op_name, rc.pending.t_submit, clock.now, True,
                    "", rc.attempts,
                )
            )
            if health is not None:
                part = self._partition(rc.change, state)
                if part[0]:
                    health.record(
                        part[0],
                        part[1],
                        ok=True,
                        now=clock.now,
                        latency_s=clock.now - rc.pending.t_submit,
                    )
                    if paused:
                        drain_paused(part)
            self._commit_step(plan, rc, state, op_name, response, clock.now)
            if wal is not None and rc.open_iid is not None:
                committed_id = (
                    response.get("id", "") if isinstance(response, dict) else ""
                )
                wal.log_commit(rc.open_iid, resource_id=committed_id)
                rc.open_iid = None
            rc.step_idx += 1
            rc.attempts = 0
            if rc.step_idx < len(rc.steps):
                submit_step(cid, rc)
            else:
                finish_change(cid, True)

        # drive the event loop
        perf_enabled = PERF.enabled
        event_index = 0
        while True:
            while len(ready) and len(running) < self.concurrency:
                if perf_enabled:
                    t0 = time.perf_counter()
                    cid = ready.pop()
                    PERF.observe("executor.pick_next", time.perf_counter() - t0)
                    PERF.count("executor.dispatches")
                else:
                    cid = ready.pop()
                if cid in dead:
                    continue
                start(cid)
            if not running:
                if not len(ready):
                    break
                continue
            popped = events.pop()
            if popped is None:
                break
            if crash_hook is not None:
                # event boundary: the clock has advanced to the popped
                # event but its effect has not been processed -- exactly
                # where a process kill strands in-flight operations
                crash_hook(event_index)
                event_index += 1
            _, (kind, cid) = popped
            if kind == "complete":
                on_complete(cid)
            elif kind == "retry":
                rc = running.get(cid)
                if rc is not None:
                    submit_step(cid, rc)

        # changes still held behind a probe when the loop ran dry: the
        # probe never resolved in this run's horizon, so park them too
        for part in sorted(paused):
            quarantine_paused(
                part,
                f"partition {part[0]}/{part[1] or '*'} probe did not "
                f"resolve before the run ended",
            )

        result.finished_at = clock.now
        result.state = state
        result.api_calls = self.gateway.total_api_calls() - calls_before
        state.bump()
        return result

    # -- operation submission / commit -------------------------------------------

    def _partition(
        self, change: PlannedChange, state: StateDocument
    ) -> Tuple[str, str]:
        """(provider, region) a change's operations land in.

        Planner-populated ``change.region`` first (set from provider
        config, location attrs, or prior state), then the prior state
        entry's home region, then the provider default. Provider ""
        means unknown -- the caller skips gating. Shared with the
        shard partitioner so gating and sharding agree."""
        return change_partition(change, state, self.gateway)

    def _submit_operation(
        self, plan: Plan, rc: _Running, state: StateDocument, token: str = ""
    ) -> PendingOperation:
        change = rc.change
        op = rc.steps[rc.step_idx]
        rtype = change.rtype
        if op == "delete":
            prior = change.prior if change.prior else state.get(change.address)
            if prior is None:
                raise _UnresolvedValueError(
                    f"{change.id}: nothing in state to delete"
                )
            return self.gateway.submit(
                "delete", rtype, resource_id=prior.resource_id
            )
        # create / update need (re-)evaluated attribute values
        attrs = self._materialized_attrs(change)
        region = change.region or self.gateway.region_for(rtype, attrs)
        if op == "create":
            payload = {k: v for k, v in attrs.items() if v is not None}
            return self.gateway.submit(
                "create",
                rtype,
                attrs=payload,
                region=region,
                idempotency_token=token,
            )
        # update: send only the changed attributes
        changed_names = [d.name for d in change.diffs]
        prior = change.prior if change.prior else state.get(change.address)
        if prior is None:
            raise _UnresolvedValueError(f"{change.id}: nothing in state to update")
        payload = {
            name: attrs[name]
            for name in changed_names
            if name in attrs and attrs[name] is not None
        }
        return self.gateway.submit(
            "update", rtype, resource_id=prior.resource_id, attrs=payload
        )

    def _materialized_attrs(self, change: PlannedChange) -> Dict[str, Any]:
        assert change.node is not None
        attrs = change.node.evaluate_attrs()
        unknowns = sorted(
            name for name, value in attrs.items() if is_unknown(value)
        )
        if unknowns:
            raise _UnresolvedValueError(
                f"{change.id}: attributes still unknown at apply time: "
                f"{', '.join(unknowns)}"
            )
        return attrs

    def _commit_step(
        self,
        plan: Plan,
        rc: _Running,
        state: StateDocument,
        op: str,
        response: Any,
        now: float,
    ) -> None:
        change = rc.change
        if op == "delete":
            state.remove(change.address)
            plan.resolver.drop_override(change.id)
            return
        assert isinstance(response, dict)
        deps = sorted(
            p
            for p in plan.graph.dag.predecessors(change.id)
            if plan.graph.nodes.get(p) is not None
            and plan.graph.nodes[p].address.mode == "managed"
        )
        provider = change.provider or self.gateway.provider_of(change.rtype)
        region = change.region or self.gateway.region_for(change.rtype, response)
        if op == "create":
            entry = ResourceState(
                address=change.address,
                resource_id=response["id"],
                provider=provider,
                attrs=dict(response),
                region=region,
                created_at=now,
                updated_at=now,
                dependencies=deps,
            )
            state.set(entry)
        else:  # update
            entry = state.get(change.address) or change.prior
            if entry is not None:
                state.set(
                    entry.replace(
                        attrs=dict(response),
                        updated_at=now,
                        dependencies=deps or list(entry.dependencies),
                    )
                )
        plan.resolver.set_override(change.id, dict(response))


class _UnresolvedValueError(RuntimeError):
    """Attribute values still unknown when the operation must run."""


class SequentialExecutor(PlanExecutor):
    """One operation at a time, alphabetical order. The floor."""

    name = "sequential"

    def __init__(
        self,
        gateway: CloudGateway,
        retry: Optional[RetryPolicy] = None,
        health: Optional[HealthMonitor] = None,
    ):
        super().__init__(gateway, concurrency=1, retry=retry, health=health)

    def pick_next(self, ready: List[str]) -> str:
        return min(ready)

    def _make_ready_queue(self) -> _ReadyQueue:
        return _MinIdReady()


class BestEffortExecutor(PlanExecutor):
    """Terraform-style bounded-parallel walk, no prioritization.

    Ready nodes are dispatched in the order they became ready
    (alphabetical among ties) -- a faithful model of the "best effort"
    graph walk the paper critiques.
    """

    name = "best-effort"

    def __init__(
        self,
        gateway: CloudGateway,
        concurrency: int = 10,
        retry: Optional[RetryPolicy] = None,
        health: Optional[HealthMonitor] = None,
    ):
        super().__init__(
            gateway, concurrency=concurrency, retry=retry, health=health
        )

    def pick_next(self, ready: List[str]) -> str:
        return ready[0]

    def _make_ready_queue(self) -> _ReadyQueue:
        return _FifoReady()


class CriticalPathExecutor(PlanExecutor):
    """The cloudless scheduler: longest-remaining-path-first dispatch.

    ``rate_aware=True`` additionally prefers, among near-critical
    candidates, operations whose provider write bucket can start
    soonest, so a throttled provider does not stall the critical path.
    """

    name = "critical-path"

    def __init__(
        self,
        gateway: CloudGateway,
        concurrency: int = 10,
        retry: Optional[RetryPolicy] = None,
        rate_aware: bool = True,
        health: Optional[HealthMonitor] = None,
    ):
        super().__init__(
            gateway, concurrency=concurrency, retry=retry, health=health
        )
        self.rate_aware = rate_aware
        self._priority: Dict[str, float] = {}
        self._plan: Optional[Plan] = None

    def prepare(self, plan: Plan, dag: Dag) -> None:
        analysis = analyze(plan, self.gateway.mean_latency, execution_dag=dag)
        self._priority = analysis.priorities
        self._plan = plan

    def pick_next(self, ready: List[str]) -> str:
        best = max(ready, key=lambda cid: (self._priority.get(cid, 0.0), cid))
        if not self.rate_aware:
            return best
        top = self._priority.get(best, 0.0)
        candidates = [
            cid for cid in ready if self._priority.get(cid, 0.0) >= 0.8 * top
        ]
        now = self.gateway.clock.now

        def start_estimate(cid: str) -> float:
            change = self._plan.changes[cid]
            try:
                plane = self.gateway.plane_for(change.rtype)
            except Exception:
                return now
            return plane.limiter.available_at("write", now)

        return min(
            candidates,
            key=lambda cid: (start_estimate(cid), -self._priority.get(cid, 0.0), cid),
        )

    def _make_ready_queue(self) -> _ReadyQueue:
        if self.rate_aware:
            assert self._plan is not None  # prepare() ran
            return _GroupedRateAwareReady(self._priority, self._plan, self.gateway)
        return _PriorityReady(self._priority)
