"""Plan executors.

The discrete-event engine that walks an execution plan against the
simulated clouds. Three scheduling strategies reproduce the spectrum in
3.3:

* :class:`SequentialExecutor` -- one operation at a time (the floor).
* :class:`BestEffortExecutor` -- Terraform's documented behaviour: a
  bounded-parallel, unprioritized graph walk (the baseline).
* :class:`CriticalPathExecutor` -- the cloudless scheduler: ready
  operations are dispatched longest-remaining-path first, optionally
  rate-limit aware, with retry handling for transient faults.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..cloud.base import CloudAPIError, PendingOperation
from ..cloud.clock import EventQueue
from ..cloud.gateway import CloudGateway
from ..graph.critical_path import analyze
from ..graph.dag import Dag
from ..graph.plan import Action, Plan, PlannedChange
from ..lang.values import is_unknown
from ..state.document import ResourceState, StateDocument


@dataclasses.dataclass
class RetryPolicy:
    """Retry behaviour for transient cloud errors."""

    max_attempts: int = 3
    base_backoff_s: float = 5.0
    multiplier: float = 2.0

    def backoff(self, attempt: int) -> float:
        return self.base_backoff_s * (self.multiplier ** max(0, attempt - 1))


@dataclasses.dataclass
class OperationRecord:
    """One executed API operation (for timing/Gantt analysis)."""

    change_id: str
    operation: str
    t_submit: float
    t_complete: float
    ok: bool
    error_code: str = ""
    attempt: int = 1

    @property
    def duration(self) -> float:
        return self.t_complete - self.t_submit


@dataclasses.dataclass
class ApplyResult:
    """Outcome of one apply run."""

    started_at: float
    finished_at: float
    succeeded: List[str] = dataclasses.field(default_factory=list)
    failed: Dict[str, str] = dataclasses.field(default_factory=dict)
    skipped: List[str] = dataclasses.field(default_factory=list)
    operations: List[OperationRecord] = dataclasses.field(default_factory=list)
    state: Optional[StateDocument] = None
    api_calls: int = 0

    @property
    def makespan_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def ok(self) -> bool:
        return not self.failed and not self.skipped

    def errors_for(self, change_id: str) -> List[OperationRecord]:
        return [
            op for op in self.operations if op.change_id == change_id and not op.ok
        ]


@dataclasses.dataclass
class _Running:
    change: PlannedChange
    steps: List[str]
    step_idx: int = 0
    attempts: int = 0
    pending: Optional[PendingOperation] = None


_STEPS = {
    Action.CREATE: ["create"],
    Action.UPDATE: ["update"],
    Action.DELETE: ["delete"],
    Action.REPLACE: ["delete", "create"],
    Action.READ: [],
}


class PlanExecutor:
    """Base discrete-event executor; subclasses pick scheduling order."""

    name = "base"

    def __init__(
        self,
        gateway: CloudGateway,
        concurrency: int = 10,
        retry: Optional[RetryPolicy] = None,
    ):
        self.gateway = gateway
        self.concurrency = max(1, concurrency)
        self.retry = retry or RetryPolicy()

    # -- scheduling hook ----------------------------------------------------

    def prepare(self, plan: Plan, dag: Dag) -> None:
        """Called once before execution; compute priorities here."""

    def pick_next(self, ready: List[str]) -> str:
        """Choose the next ready change id. Default: FIFO."""
        return ready[0]

    # -- main loop -------------------------------------------------------------

    def apply(self, plan: Plan) -> ApplyResult:
        """Execute the plan; mutates ``plan.state`` as the new state."""
        clock = self.gateway.clock
        started = clock.now
        calls_before = self.gateway.total_api_calls()
        result = ApplyResult(started_at=started, finished_at=started)
        state = plan.state

        dag = plan.execution_dag()
        self.prepare(plan, dag)

        indeg: Dict[str, int] = {n: dag.in_degree(n) for n in dag.nodes}
        ready: List[str] = sorted([n for n, d in indeg.items() if d == 0])
        running: Dict[str, _Running] = {}
        done: Set[str] = set()
        dead: Set[str] = set()  # failed or skipped
        events = EventQueue(clock)

        def finish_change(cid: str, ok: bool, error: str = "") -> None:
            running.pop(cid, None)
            if ok:
                done.add(cid)
                result.succeeded.append(cid)
                for succ in sorted(dag.successors(cid)):
                    indeg[succ] -= 1
                    if indeg[succ] == 0 and succ not in dead:
                        ready.append(succ)
            else:
                dead.add(cid)
                result.failed[cid] = error
                for desc in dag.descendants(cid):
                    if desc not in dead and desc not in done:
                        dead.add(desc)
                        result.skipped.append(desc)

        def start(cid: str) -> None:
            change = plan.changes[cid]
            steps = list(_STEPS[change.action])
            rc = _Running(change=change, steps=steps)
            if not steps:  # READ: value already resolved at plan time
                result.operations.append(
                    OperationRecord(cid, "read", clock.now, clock.now, True)
                )
                done.add(cid)
                result.succeeded.append(cid)
                for succ in sorted(dag.successors(cid)):
                    indeg[succ] -= 1
                    if indeg[succ] == 0 and succ not in dead:
                        ready.append(succ)
                return
            running[cid] = rc
            submit_step(cid, rc)

        def submit_step(cid: str, rc: _Running) -> None:
            rc.attempts += 1
            try:
                pending = self._submit_operation(plan, rc, state)
            except CloudAPIError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, rc.steps[rc.step_idx], clock.now, clock.now,
                        False, exc.code, rc.attempts,
                    )
                )
                finish_change(cid, False, str(exc))
                return
            except _UnresolvedValueError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, rc.steps[rc.step_idx], clock.now, clock.now,
                        False, "UnresolvedValue", rc.attempts,
                    )
                )
                finish_change(cid, False, str(exc))
                return
            rc.pending = pending
            events.schedule(pending.t_complete, ("complete", cid))

        def on_complete(cid: str) -> None:
            rc = running.get(cid)
            if rc is None or rc.pending is None:
                return
            op_name = rc.steps[rc.step_idx]
            try:
                response = rc.pending.resolve()
            except CloudAPIError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, op_name, rc.pending.t_submit, clock.now,
                        False, exc.code, rc.attempts,
                    )
                )
                if exc.transient and rc.attempts < self.retry.max_attempts:
                    delay = self.retry.backoff(rc.attempts)
                    events.schedule(clock.now + delay, ("retry", cid))
                else:
                    finish_change(cid, False, str(exc))
                return
            result.operations.append(
                OperationRecord(
                    cid, op_name, rc.pending.t_submit, clock.now, True,
                    "", rc.attempts,
                )
            )
            self._commit_step(plan, rc, state, op_name, response, clock.now)
            rc.step_idx += 1
            rc.attempts = 0
            if rc.step_idx < len(rc.steps):
                submit_step(cid, rc)
            else:
                finish_change(cid, True)

        # drive the event loop
        while True:
            while ready and len(running) < self.concurrency:
                ready_sorted = ready  # subclasses reorder through pick_next
                cid = self.pick_next(ready_sorted)
                ready.remove(cid)
                if cid in dead:
                    continue
                start(cid)
            if not running:
                if not ready:
                    break
                continue
            popped = events.pop()
            if popped is None:
                break
            _, (kind, cid) = popped
            if kind == "complete":
                on_complete(cid)
            elif kind == "retry":
                rc = running.get(cid)
                if rc is not None:
                    submit_step(cid, rc)

        result.finished_at = clock.now
        result.state = state
        result.api_calls = self.gateway.total_api_calls() - calls_before
        state.bump()
        return result

    # -- operation submission / commit -------------------------------------------

    def _submit_operation(
        self, plan: Plan, rc: _Running, state: StateDocument
    ) -> PendingOperation:
        change = rc.change
        op = rc.steps[rc.step_idx]
        rtype = change.rtype
        if op == "delete":
            prior = change.prior if change.prior else state.get(change.address)
            if prior is None:
                raise _UnresolvedValueError(
                    f"{change.id}: nothing in state to delete"
                )
            return self.gateway.submit(
                "delete", rtype, resource_id=prior.resource_id
            )
        # create / update need (re-)evaluated attribute values
        attrs = self._materialized_attrs(change)
        region = change.region or self.gateway.region_for(rtype, attrs)
        if op == "create":
            payload = {k: v for k, v in attrs.items() if v is not None}
            return self.gateway.submit("create", rtype, attrs=payload, region=region)
        # update: send only the changed attributes
        changed_names = [d.name for d in change.diffs]
        prior = change.prior if change.prior else state.get(change.address)
        if prior is None:
            raise _UnresolvedValueError(f"{change.id}: nothing in state to update")
        payload = {
            name: attrs[name]
            for name in changed_names
            if name in attrs and attrs[name] is not None
        }
        return self.gateway.submit(
            "update", rtype, resource_id=prior.resource_id, attrs=payload
        )

    def _materialized_attrs(self, change: PlannedChange) -> Dict[str, Any]:
        assert change.node is not None
        attrs = change.node.evaluate_attrs()
        unknowns = sorted(
            name for name, value in attrs.items() if is_unknown(value)
        )
        if unknowns:
            raise _UnresolvedValueError(
                f"{change.id}: attributes still unknown at apply time: "
                f"{', '.join(unknowns)}"
            )
        return attrs

    def _commit_step(
        self,
        plan: Plan,
        rc: _Running,
        state: StateDocument,
        op: str,
        response: Any,
        now: float,
    ) -> None:
        change = rc.change
        if op == "delete":
            state.remove(change.address)
            plan.resolver.drop_override(change.id)
            return
        assert isinstance(response, dict)
        deps = sorted(
            p
            for p in plan.graph.dag.predecessors(change.id)
            if plan.graph.nodes.get(p) is not None
            and plan.graph.nodes[p].address.mode == "managed"
        )
        provider = change.provider or self.gateway.provider_of(change.rtype)
        region = change.region or self.gateway.region_for(change.rtype, response)
        if op == "create":
            entry = ResourceState(
                address=change.address,
                resource_id=response["id"],
                provider=provider,
                attrs=dict(response),
                region=region,
                created_at=now,
                updated_at=now,
                dependencies=deps,
            )
            state.set(entry)
        else:  # update
            entry = state.get(change.address)
            if entry is None and change.prior is not None:
                entry = change.prior.copy()
                state.set(entry)
            if entry is not None:
                entry.attrs = dict(response)
                entry.updated_at = now
                entry.dependencies = deps or entry.dependencies
        plan.resolver.set_override(change.id, dict(response))


class _UnresolvedValueError(RuntimeError):
    """Attribute values still unknown when the operation must run."""


class SequentialExecutor(PlanExecutor):
    """One operation at a time, alphabetical order. The floor."""

    name = "sequential"

    def __init__(self, gateway: CloudGateway, retry: Optional[RetryPolicy] = None):
        super().__init__(gateway, concurrency=1, retry=retry)

    def pick_next(self, ready: List[str]) -> str:
        return min(ready)


class BestEffortExecutor(PlanExecutor):
    """Terraform-style bounded-parallel walk, no prioritization.

    Ready nodes are dispatched in the order they became ready
    (alphabetical among ties) -- a faithful model of the "best effort"
    graph walk the paper critiques.
    """

    name = "best-effort"

    def __init__(
        self,
        gateway: CloudGateway,
        concurrency: int = 10,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(gateway, concurrency=concurrency, retry=retry)

    def pick_next(self, ready: List[str]) -> str:
        return ready[0]


class CriticalPathExecutor(PlanExecutor):
    """The cloudless scheduler: longest-remaining-path-first dispatch.

    ``rate_aware=True`` additionally prefers, among near-critical
    candidates, operations whose provider write bucket can start
    soonest, so a throttled provider does not stall the critical path.
    """

    name = "critical-path"

    def __init__(
        self,
        gateway: CloudGateway,
        concurrency: int = 10,
        retry: Optional[RetryPolicy] = None,
        rate_aware: bool = True,
    ):
        super().__init__(gateway, concurrency=concurrency, retry=retry)
        self.rate_aware = rate_aware
        self._priority: Dict[str, float] = {}

    def prepare(self, plan: Plan, dag: Dag) -> None:
        analysis = analyze(plan, self.gateway.mean_latency, execution_dag=dag)
        self._priority = analysis.priorities
        self._plan = plan

    def pick_next(self, ready: List[str]) -> str:
        best = max(ready, key=lambda cid: (self._priority.get(cid, 0.0), cid))
        if not self.rate_aware:
            return best
        top = self._priority.get(best, 0.0)
        candidates = [
            cid for cid in ready if self._priority.get(cid, 0.0) >= 0.8 * top
        ]
        now = self.gateway.clock.now

        def start_estimate(cid: str) -> float:
            change = self._plan.changes[cid]
            try:
                plane = self.gateway.plane_for(change.rtype)
            except Exception:
                return now
            return plane.limiter.available_at("write", now)

        return min(
            candidates,
            key=lambda cid: (start_estimate(cid), -self._priority.get(cid, 0.0), cid),
        )
