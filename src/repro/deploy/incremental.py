"""State refresh and incremental update planning (3.3).

Baseline behaviour ("treat deltas like a deployment from scratch"):
refresh *every* resource in state through the rate-limited cloud API,
then re-plan the whole graph. Cloudless behaviour: diff the two config
versions, compute the impact scope on the dependency graph, refresh and
re-plan only that subgraph.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from ..addressing import DATA, MANAGED, ResourceAddress
from ..cloud.clock import EventQueue
from ..cloud.gateway import CloudGateway
from ..graph.builder import (
    GraphBuildError,
    ResourceGraph,
    ResourceNode,
    build_graph,
)
from ..graph.impact import (
    ConfigDelta,
    ImpactAnalyzer,
    _decl_fingerprint,
    diff_configurations,
)
from ..graph.plan import Plan, Planner
from ..lang.config import Configuration, ResourceDecl
from ..lang.module_loader import ModuleLoader
from ..lang.values import Unknown, values_equal
from ..perf import PERF
from ..state.document import StateDocument


@dataclasses.dataclass
class RefreshResult:
    """Outcome of a state refresh pass."""

    refreshed: List[str]
    drifted: List[str]
    missing: List[str]
    api_calls: int
    duration_s: float


def refresh_state(
    gateway: CloudGateway,
    state: StateDocument,
    addresses: Optional[Set[str]] = None,
    concurrency: int = 10,
) -> RefreshResult:
    """Re-read resources from the cloud, updating ``state`` in place.

    ``addresses=None`` refreshes everything (the baseline); a set
    restricts the pass to the impact scope (the cloudless optimization).
    """
    clock = gateway.clock
    started = clock.now
    calls_before = gateway.total_api_calls()
    entries = [
        e
        for e in state.resources()
        if addresses is None or str(e.address) in addresses
    ]
    refreshed: List[str] = []
    drifted: List[str] = []
    missing: List[str] = []

    events = EventQueue(clock)
    queue = list(entries)
    inflight: Dict[int, Any] = {}
    token = 0
    while queue or inflight:
        while queue and len(inflight) < concurrency:
            entry = queue.pop(0)
            pending = gateway.submit(
                "read", entry.address.type, resource_id=entry.resource_id
            )
            inflight[token] = (entry, pending)
            events.schedule(pending.t_complete, token)
            token += 1
        popped = events.pop()
        if popped is None:
            break
        _, tok = popped
        entry, pending = inflight.pop(tok)
        snapshot = pending.resolve()
        addr_text = str(entry.address)
        refreshed.append(addr_text)
        if snapshot is None:
            missing.append(addr_text)
            state.remove(entry.address)
            continue
        if not values_equal(entry.attrs, snapshot):
            drifted.append(addr_text)
            state.set(
                entry.replace(attrs=dict(snapshot), updated_at=clock.now)
            )
    return RefreshResult(
        refreshed=refreshed,
        drifted=drifted,
        missing=missing,
        api_calls=gateway.total_api_calls() - calls_before,
        duration_s=clock.now - started,
    )


@dataclasses.dataclass
class UpdatePlanResult:
    """A planned update, with the bookkeeping the E2 benchmark reports."""

    plan: Plan
    graph: ResourceGraph
    delta: Optional[ConfigDelta]
    scope: Optional[Set[str]]
    refresh: RefreshResult
    plan_duration_s: float

    @property
    def turnaround_s(self) -> float:
        return self.refresh.duration_s + self.plan_duration_s

    @property
    def scope_size(self) -> int:
        return len(self.scope) if self.scope is not None else len(self.graph)


class UpdatePipeline:
    """Plans configuration updates, full-refresh or impact-scoped."""

    def __init__(
        self,
        gateway: CloudGateway,
        incremental: bool = True,
        refresh_concurrency: int = 10,
    ):
        self.gateway = gateway
        self.incremental = incremental
        self.refresh_concurrency = refresh_concurrency
        self.planner = Planner(
            spec_lookup=gateway.try_spec,
            region_lookup=gateway.region_for,
            provider_lookup=gateway.provider_of,
        )

    def plan_update(
        self,
        old_config: Configuration,
        new_config: Configuration,
        state: StateDocument,
        variables: Optional[Dict[str, Any]] = None,
        loader: Optional[ModuleLoader] = None,
    ) -> UpdatePlanResult:
        graph = build_graph(new_config, variables=variables, loader=loader)
        data_values = read_data_sources(self.gateway, graph, state)
        plan_started = self.gateway.clock.now

        if not self.incremental:
            refresh = refresh_state(
                self.gateway, state, None, self.refresh_concurrency
            )
            plan_started = self.gateway.clock.now
            plan = self.planner.plan(graph, state, data_values=data_values)
            return UpdatePlanResult(
                plan=plan,
                graph=graph,
                delta=None,
                scope=None,
                refresh=refresh,
                plan_duration_s=self.gateway.clock.now - plan_started,
            )

        delta = diff_configurations(old_config, new_config)
        seeds = ImpactAnalyzer(graph).seeds_from_delta(delta, old_config)
        # declarations removed/renamed: their instances live only in state
        for mode, rtype, name in delta.changed_resources:
            for entry in state.instances_of(rtype, name, (), mode):
                seeds.add(str(entry.address))
        scope = ImpactAnalyzer(graph).impact_scope(seeds)
        refresh = refresh_state(
            self.gateway, state, scope, self.refresh_concurrency
        )
        plan_started = self.gateway.clock.now
        plan = self.planner.plan(
            graph, state, data_values=data_values, limit_to=scope
        )
        return UpdatePlanResult(
            plan=plan,
            graph=graph,
            delta=delta,
            scope=scope,
            refresh=refresh,
            plan_duration_s=self.gateway.clock.now - plan_started,
        )


def read_data_sources(
    gateway: CloudGateway,
    graph: ResourceGraph,
    state: StateDocument,
) -> Dict[str, Dict[str, Any]]:
    """Evaluate and read every data source in the graph (plan phase).

    Reads run in dependency order because one data source's query may
    reference another's result.
    """
    from ..graph.plan import ValueResolver
    from ..lang.context import DeferredResolver

    resolver = ValueResolver(graph, state)
    slot = graph.binding_resolver
    if isinstance(slot, DeferredResolver):
        previous = slot.target
        slot.target = resolver
    else:
        previous = None

    values: Dict[str, Dict[str, Any]] = {}
    try:
        for nid in graph.dag.topological_order():
            node = graph.nodes.get(nid)
            if node is None or node.address.mode != "data":
                continue
            attrs = node.evaluate_attrs()
            region = ""
            location = attrs.get("location") or attrs.get("region")
            if isinstance(location, str):
                region = location
            result = gateway.read_data(node.address.type, attrs, region)
            values[nid] = result
            resolver.set_override(nid, result)
    finally:
        if isinstance(slot, DeferredResolver):
            slot.target = previous
    return values


# -- decl-level incremental re-planning ---------------------------------------


class IncrementalPatchError(RuntimeError):
    """A patch cannot be applied in place; the session falls back to a
    full graph rebuild (recorded in ``IncrementalSession.rebuilds``)."""


@dataclasses.dataclass
class IncrementalPlanResult:
    """One re-plan pass over a long-lived estate session."""

    plan: Plan
    #: instance addresses re-diffed this pass (None = full plan)
    scope: Optional[Set[str]]
    #: ``(mode, type, name)`` decl keys the patch actually changed
    dirty: List[Tuple[str, str, str]]
    #: "incremental" when the graph was patched in place, "rebuild"
    #: when the session fell back to parse-and-rebuild
    mode: str
    wall_s: float

    @property
    def scope_size(self) -> int:
        return len(self.scope) if self.scope is not None else len(self.plan.graph)


class IncrementalSession:
    """A long-lived estate whose plan survives between edits.

    ``UpdatePipeline`` re-parses and re-builds the whole configuration
    on every update, so its turnaround is O(estate) even when one
    declaration changed. This session keeps the parsed config, the
    expanded graph, and per-declaration fingerprints resident; an edit
    arrives as a *patch* -- a source snippet holding only the touched
    root-module resource declarations -- and only the dirty subgraph is
    re-expanded and re-diffed:

    * fingerprint the patch decls against the resident config; no-op
      decls are dropped (``shard.dirty_nodes_replanned`` counts what
      survives);
    * swap the dirty declarations into the resident graph O(dirty +
      dependents): old instances out, re-expanded instances in,
      dependency edges rewired from the new expressions;
    * re-plan with ``limit_to`` = the impact scope of the dirty
      instances (seeds + descendants), everything else NOOP.

    Edits the patch path cannot express in place -- locals, variables,
    outputs, module calls, non-root declarations, references the local
    resolver cannot trace -- raise :class:`IncrementalPatchError`
    internally and fall back to a full rebuild, preserving behaviour at
    the cost of the O(estate) walk (``rebuilds`` counts these).
    """

    def __init__(
        self,
        gateway: CloudGateway,
        source: Optional[str] = None,
        config: Optional[Configuration] = None,
        variables: Optional[Dict[str, Any]] = None,
        compile_cache: Optional[Any] = None,
    ):
        if (source is None) == (config is None):
            raise ValueError("pass exactly one of source/config")
        self.gateway = gateway
        # streaming parse: chunk ASTs stay resident on the config, so
        # replan patches that repeat unchanged text skip re-lexing it
        self.config = (
            config
            if config is not None
            else Configuration.parse_streaming(source)
        )
        self.variables = variables
        #: callbacks fired when the session falls back to a full
        #: rebuild -- the compiled-artifact cache registers one so a
        #: graph it journaled before the rebuild is never served again
        self.on_rebuild: List[Any] = []
        if compile_cache is not None:
            self.on_rebuild.append(lambda _session: compile_cache.clear())
        self.planner = Planner(
            spec_lookup=gateway.try_spec,
            region_lookup=gateway.region_for,
            provider_lookup=gateway.provider_of,
        )
        self.graph = build_graph(self.config, variables=variables)
        self.rebuilds = 0
        self._fingerprints: Dict[Tuple[str, str, str], tuple] = {
            (k[0], k[1], k[2]): _decl_fingerprint(d)
            for k, d in self.config.resources.items()
        }
        self._data_values: Dict[str, Dict[str, Any]] = {}

    # -- full plan ---------------------------------------------------------

    def plan(self, state: StateDocument) -> IncrementalPlanResult:
        """Full plan of the resident graph (initial converge)."""
        started = time.perf_counter()
        self._data_values = read_data_sources(self.gateway, self.graph, state)
        plan = self.planner.plan(
            self.graph, state, data_values=self._data_values
        )
        return IncrementalPlanResult(
            plan=plan,
            scope=None,
            dirty=[],
            mode="full",
            wall_s=time.perf_counter() - started,
        )

    # -- incremental re-plan ----------------------------------------------

    def replan(
        self,
        patch_source: str,
        state: StateDocument,
        remove: Tuple[str, ...] = (),
    ) -> IncrementalPlanResult:
        """Apply a decl-level patch and re-plan the dirty subgraph.

        ``patch_source`` holds replacement/new root-module resource
        declarations; ``remove`` names declarations to drop, as
        ``"type.name"`` (managed) or ``"data.type.name"``.
        """
        started = time.perf_counter()
        patch = Configuration.parse_streaming(patch_source, reuse=self.config)
        if patch.diagnostics.has_errors():
            first = patch.diagnostics.errors[0]
            raise GraphBuildError(f"patch has errors: {first.message}")
        try:
            result = self._replan_patched(patch, state, remove)
        except IncrementalPatchError:
            result = self._replan_rebuilt(patch, state, remove)
        result.wall_s = time.perf_counter() - started
        return result

    def _parse_remove_keys(
        self, remove: Tuple[str, ...]
    ) -> List[Tuple[str, str, str]]:
        keys = []
        for text in remove:
            parts = text.split(".")
            if len(parts) == 3 and parts[0] == "data":
                keys.append((DATA, parts[1], parts[2]))
            elif len(parts) == 2:
                keys.append((MANAGED, parts[0], parts[1]))
            else:
                raise ValueError(f"bad remove address {text!r}")
        return keys

    def _replan_patched(
        self,
        patch: Configuration,
        state: StateDocument,
        remove: Tuple[str, ...],
    ) -> IncrementalPlanResult:
        if patch.locals or patch.variables or patch.outputs or patch.module_calls:
            raise IncrementalPatchError(
                "patch touches locals/variables/outputs/modules"
            )
        remove_keys = self._parse_remove_keys(remove)
        dirty: List[Tuple[Tuple[str, str, str], ResourceDecl]] = []
        for key, decl in patch.resources.items():
            fp = _decl_fingerprint(decl)
            if self._fingerprints.get(key) != fp:
                dirty.append((key, decl))
        for key in remove_keys:
            if key not in self.config.resources:
                raise IncrementalPatchError(f"remove of undeclared {key}")
        if not dirty and not remove_keys:
            plan = self.planner.plan(
                self.graph, state, data_values=self._data_values, limit_to=set()
            )
            return IncrementalPlanResult(
                plan=plan, scope=set(), dirty=[], mode="incremental", wall_s=0.0
            )

        graph = self.graph
        ctx = graph.root_context
        seeds: Set[str] = set()

        # 1. removals: nodes out, decls out; their state entries seed
        # DELETE planning and their dependents re-diff
        for mode, rtype, name in remove_keys:
            old_ids = graph.decl_instances.pop(((), mode, rtype, name), [])
            for nid in old_ids:
                seeds |= graph.dag.successors(nid)
                graph.dag.remove_node(nid)
                graph.nodes.pop(nid, None)
                seeds.add(nid)
            del self.config.resources[(mode, rtype, name)]
            self._fingerprints.pop((mode, rtype, name), None)

        # 2. dirty decls: drop old instances (keeping downstream edge
        # targets), re-expand, rewire
        downstream: Dict[Tuple[str, str, str], Set[str]] = {}
        for key, decl in dirty:
            old_ids = graph.decl_instances.get(((), key[0], key[1], key[2]), [])
            succs: Set[str] = set()
            old_set = set(old_ids)
            for nid in old_ids:
                succs |= graph.dag.successors(nid) - old_set
                seeds.add(nid)
            downstream[key] = succs
            for nid in old_ids:
                graph.dag.remove_node(nid)
                graph.nodes.pop(nid, None)
        for key, decl in dirty:
            self.config.resources[key] = decl
            new_ids: List[str] = []
            for ikey in self._expand_keys(decl):
                address = ResourceAddress(
                    type=decl.type,
                    name=decl.name,
                    module_path=(),
                    mode=decl.mode,
                    instance_key=ikey,
                )
                node = ResourceNode(
                    address=address, decl=decl, context=ctx, instance_key=ikey
                )
                nid = node.id
                graph.nodes[nid] = node
                graph.dag.add_node(nid)
                new_ids.append(nid)
                seeds.add(nid)
            graph.decl_instances[((), key[0], key[1], key[2])] = new_ids
            self._fingerprints[key] = _decl_fingerprint(decl)

        # 3. edges: dependents of the decl keep depending on every new
        # instance; the new expressions decide the incoming edges
        for key, decl in dirty:
            new_ids = graph.decl_instances[((), key[0], key[1], key[2])]
            for succ in sorted(downstream[key]):
                if succ not in graph.dag:
                    continue  # dependent was itself replaced this pass
                for nid in new_ids:
                    graph.dag.add_edge(nid, succ)
            dep_addrs: Set[str] = set()
            for ref in sorted(decl.references()):
                dep_addrs |= self._deps_of_reference(ref)
            for dep in sorted(dep_addrs):
                for nid in new_ids:
                    if dep != nid:
                        graph.dag.add_edge(dep, nid)
        try:
            graph.dag.validate_acyclic()
        except Exception as exc:
            raise GraphBuildError(str(exc))

        # 4. stale evaluation caches: the root context memoizes the
        # managed-name maps and lazily-evaluated locals
        ctx._managed_names_by_type = None
        ctx._managed_maps.clear()
        ctx._locals._cache.clear()

        # 5. impact scope + deleted addresses still in state
        scope = ImpactAnalyzer(graph).impact_scope(seeds)
        for entry in state.resources():
            addr_text = str(entry.address)
            if addr_text in seeds and addr_text not in graph.nodes:
                scope.add(addr_text)
        PERF.count("shard.dirty_nodes_replanned", len(scope))

        data_values = self._refresh_data_values(state, scope)
        plan = self.planner.plan(
            self.graph, state, data_values=data_values, limit_to=scope
        )
        return IncrementalPlanResult(
            plan=plan,
            scope=scope,
            dirty=[k for k, _ in dirty] + self._parse_remove_keys(remove),
            mode="incremental",
            wall_s=0.0,
        )

    def _replan_rebuilt(
        self,
        patch: Configuration,
        state: StateDocument,
        remove: Tuple[str, ...],
    ) -> IncrementalPlanResult:
        """Fallback: merge the patch into the resident config and do
        the full parse-free rebuild (still cheaper than re-parsing the
        estate, but O(estate) to expand and diff)."""
        self.rebuilds += 1
        # the resident graph is about to be replaced wholesale; anything
        # journaled from the old graph (compiled-artifact cache) is
        # stale the moment this rebuild lands
        for hook in self.on_rebuild:
            hook(self)
        dirty: List[Tuple[str, str, str]] = []
        for key, decl in patch.resources.items():
            if self._fingerprints.get(key) != _decl_fingerprint(decl):
                dirty.append(key)
            self.config.resources[key] = decl
        for key in self._parse_remove_keys(remove):
            self.config.resources.pop(key, None)
            self._fingerprints.pop(key, None)
            dirty.append(key)
        self.config.locals.update(patch.locals)
        self.config.variables.update(patch.variables)
        self.config.outputs.update(patch.outputs)
        self.config.module_calls.update(patch.module_calls)
        self.graph = build_graph(self.config, variables=self.variables)
        self._fingerprints = {
            (k[0], k[1], k[2]): _decl_fingerprint(d)
            for k, d in self.config.resources.items()
        }
        self._data_values = read_data_sources(self.gateway, self.graph, state)
        plan = self.planner.plan(
            self.graph, state, data_values=self._data_values
        )
        return IncrementalPlanResult(
            plan=plan, scope=None, dirty=dirty, mode="rebuild", wall_s=0.0
        )

    # -- patch-path helpers ------------------------------------------------

    def _expand_keys(self, decl: ResourceDecl) -> List[Any]:
        """Root-module mirror of ``GraphBuilder._expand_keys``."""
        from ..lang.evaluator import Evaluator

        ctx = self.graph.root_context
        evaluator = Evaluator(ctx.scope())
        if decl.count is not None:
            value = evaluator.evaluate(decl.count)
            if isinstance(value, Unknown):
                raise IncrementalPatchError(f"{decl.address}: count unknown")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise GraphBuildError(f"{decl.address}: 'count' must be a number")
            count = int(value)
            if count < 0:
                raise GraphBuildError(f"{decl.address}: 'count' must be >= 0")
            return list(range(count))
        if decl.for_each is not None:
            value = evaluator.evaluate(decl.for_each)
            if isinstance(value, Unknown):
                raise IncrementalPatchError(f"{decl.address}: for_each unknown")
            if isinstance(value, dict):
                return sorted(value.keys())
            if isinstance(value, list):
                keys: List[Any] = []
                for item in value:
                    if not isinstance(item, str) or item in keys:
                        raise IncrementalPatchError(
                            f"{decl.address}: for_each needs unique strings"
                        )
                    keys.append(item)
                return sorted(keys)
            raise GraphBuildError(f"{decl.address}: 'for_each' must be map or set")
        return [None]

    def _deps_of_reference(self, ref: Any) -> Set[str]:
        """Root-module mirror of ``GraphBuilder._deps_of_reference``;
        anything it cannot trace locally forces a rebuild."""
        from ..lang.references import extract_references

        if ref.kind in ("resource", "data"):
            mode = MANAGED if ref.kind == "resource" else DATA
            ids = self.graph.decl_instances.get(((), mode, ref.type, ref.name))
            if ids is None:
                raise IncrementalPatchError(f"reference to undeclared {ref}")
            return set(ids)
        if ref.kind == "local":
            attr = self.config.locals.get(ref.name)
            if attr is None:
                raise IncrementalPatchError(
                    f"reference to undeclared local.{ref.name}"
                )
            deps: Set[str] = set()
            for sub in sorted(extract_references(attr.expr)):
                deps |= self._deps_of_reference(sub)
            return deps
        if ref.kind == "var":
            return set()  # root module: variables carry no graph edges
        raise IncrementalPatchError(f"cannot trace {ref.kind} reference")

    def _refresh_data_values(
        self, state: StateDocument, scope: Set[str]
    ) -> Dict[str, Dict[str, Any]]:
        """Re-read only the data sources inside the impact scope; the
        rest keep their values from the previous pass."""
        stale = [
            nid
            for nid in self.graph.data_ids()
            if nid in scope or nid not in self._data_values
        ]
        if stale:
            fresh = read_data_sources(self.gateway, self.graph, state)
            for nid in stale:
                if nid in fresh:
                    self._data_values[nid] = fresh[nid]
        # drop values for data sources that left the graph
        live = set(self.graph.data_ids())
        self._data_values = {
            k: v for k, v in self._data_values.items() if k in live
        }
        return self._data_values
