"""State refresh and incremental update planning (3.3).

Baseline behaviour ("treat deltas like a deployment from scratch"):
refresh *every* resource in state through the rate-limited cloud API,
then re-plan the whole graph. Cloudless behaviour: diff the two config
versions, compute the impact scope on the dependency graph, refresh and
re-plan only that subgraph.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Set

from ..cloud.clock import EventQueue
from ..cloud.gateway import CloudGateway
from ..graph.builder import ResourceGraph, build_graph
from ..graph.impact import ConfigDelta, ImpactAnalyzer, diff_configurations
from ..graph.plan import Plan, Planner
from ..lang.config import Configuration
from ..lang.module_loader import ModuleLoader
from ..lang.values import values_equal
from ..state.document import StateDocument


@dataclasses.dataclass
class RefreshResult:
    """Outcome of a state refresh pass."""

    refreshed: List[str]
    drifted: List[str]
    missing: List[str]
    api_calls: int
    duration_s: float


def refresh_state(
    gateway: CloudGateway,
    state: StateDocument,
    addresses: Optional[Set[str]] = None,
    concurrency: int = 10,
) -> RefreshResult:
    """Re-read resources from the cloud, updating ``state`` in place.

    ``addresses=None`` refreshes everything (the baseline); a set
    restricts the pass to the impact scope (the cloudless optimization).
    """
    clock = gateway.clock
    started = clock.now
    calls_before = gateway.total_api_calls()
    entries = [
        e
        for e in state.resources()
        if addresses is None or str(e.address) in addresses
    ]
    refreshed: List[str] = []
    drifted: List[str] = []
    missing: List[str] = []

    events = EventQueue(clock)
    queue = list(entries)
    inflight: Dict[int, Any] = {}
    token = 0
    while queue or inflight:
        while queue and len(inflight) < concurrency:
            entry = queue.pop(0)
            pending = gateway.submit(
                "read", entry.address.type, resource_id=entry.resource_id
            )
            inflight[token] = (entry, pending)
            events.schedule(pending.t_complete, token)
            token += 1
        popped = events.pop()
        if popped is None:
            break
        _, tok = popped
        entry, pending = inflight.pop(tok)
        snapshot = pending.resolve()
        addr_text = str(entry.address)
        refreshed.append(addr_text)
        if snapshot is None:
            missing.append(addr_text)
            state.remove(entry.address)
            continue
        if not values_equal(entry.attrs, snapshot):
            drifted.append(addr_text)
            state.set(
                entry.replace(attrs=dict(snapshot), updated_at=clock.now)
            )
    return RefreshResult(
        refreshed=refreshed,
        drifted=drifted,
        missing=missing,
        api_calls=gateway.total_api_calls() - calls_before,
        duration_s=clock.now - started,
    )


@dataclasses.dataclass
class UpdatePlanResult:
    """A planned update, with the bookkeeping the E2 benchmark reports."""

    plan: Plan
    graph: ResourceGraph
    delta: Optional[ConfigDelta]
    scope: Optional[Set[str]]
    refresh: RefreshResult
    plan_duration_s: float

    @property
    def turnaround_s(self) -> float:
        return self.refresh.duration_s + self.plan_duration_s

    @property
    def scope_size(self) -> int:
        return len(self.scope) if self.scope is not None else len(self.graph)


class UpdatePipeline:
    """Plans configuration updates, full-refresh or impact-scoped."""

    def __init__(
        self,
        gateway: CloudGateway,
        incremental: bool = True,
        refresh_concurrency: int = 10,
    ):
        self.gateway = gateway
        self.incremental = incremental
        self.refresh_concurrency = refresh_concurrency
        self.planner = Planner(
            spec_lookup=gateway.try_spec,
            region_lookup=gateway.region_for,
            provider_lookup=gateway.provider_of,
        )

    def plan_update(
        self,
        old_config: Configuration,
        new_config: Configuration,
        state: StateDocument,
        variables: Optional[Dict[str, Any]] = None,
        loader: Optional[ModuleLoader] = None,
    ) -> UpdatePlanResult:
        graph = build_graph(new_config, variables=variables, loader=loader)
        data_values = read_data_sources(self.gateway, graph, state)
        plan_started = self.gateway.clock.now

        if not self.incremental:
            refresh = refresh_state(
                self.gateway, state, None, self.refresh_concurrency
            )
            plan_started = self.gateway.clock.now
            plan = self.planner.plan(graph, state, data_values=data_values)
            return UpdatePlanResult(
                plan=plan,
                graph=graph,
                delta=None,
                scope=None,
                refresh=refresh,
                plan_duration_s=self.gateway.clock.now - plan_started,
            )

        delta = diff_configurations(old_config, new_config)
        seeds = ImpactAnalyzer(graph).seeds_from_delta(delta, old_config)
        # declarations removed/renamed: their instances live only in state
        for mode, rtype, name in delta.changed_resources:
            for entry in state.instances_of(rtype, name, (), mode):
                seeds.add(str(entry.address))
        scope = ImpactAnalyzer(graph).impact_scope(seeds)
        refresh = refresh_state(
            self.gateway, state, scope, self.refresh_concurrency
        )
        plan_started = self.gateway.clock.now
        plan = self.planner.plan(
            graph, state, data_values=data_values, limit_to=scope
        )
        return UpdatePlanResult(
            plan=plan,
            graph=graph,
            delta=delta,
            scope=scope,
            refresh=refresh,
            plan_duration_s=self.gateway.clock.now - plan_started,
        )


def read_data_sources(
    gateway: CloudGateway,
    graph: ResourceGraph,
    state: StateDocument,
) -> Dict[str, Dict[str, Any]]:
    """Evaluate and read every data source in the graph (plan phase).

    Reads run in dependency order because one data source's query may
    reference another's result.
    """
    from ..graph.plan import ValueResolver
    from ..lang.context import DeferredResolver

    resolver = ValueResolver(graph, state)
    slot = graph.binding_resolver
    if isinstance(slot, DeferredResolver):
        previous = slot.target
        slot.target = resolver
    else:
        previous = None

    values: Dict[str, Dict[str, Any]] = {}
    try:
        for nid in graph.dag.topological_order():
            node = graph.nodes.get(nid)
            if node is None or node.address.mode != "data":
                continue
            attrs = node.evaluate_attrs()
            region = ""
            location = attrs.get("location") or attrs.get("region")
            if isinstance(location, str):
                region = location
            result = gateway.read_data(node.address.type, attrs, region)
            values[nid] = result
            resolver.set_override(nid, result)
    finally:
        if isinstance(slot, DeferredResolver):
            slot.target = previous
    return values
