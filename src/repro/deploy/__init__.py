"""Deployment executors and incremental update pipeline (paper 3.3)."""

from .executor import (
    ApplyResult,
    BestEffortExecutor,
    CriticalPathExecutor,
    OperationRecord,
    PlanExecutor,
    Quarantine,
    RetryPolicy,
    SequentialExecutor,
)
from .recovery import CrashRecovery, RecoveryAction, RecoveryReport
from .wal import (
    IntentJournal,
    IntentRecord,
    SimulatedCrash,
    WALCorruptError,
)
from .incremental import (
    IncrementalPatchError,
    IncrementalPlanResult,
    IncrementalSession,
    RefreshResult,
    UpdatePipeline,
    UpdatePlanResult,
    read_data_sources,
    refresh_state,
)
from .sharded import (
    CompletionLedger,
    FencingError,
    ShardedApplyResult,
    ShardedExecutor,
)

__all__ = [
    "ApplyResult",
    "BestEffortExecutor",
    "CompletionLedger",
    "CrashRecovery",
    "CriticalPathExecutor",
    "FencingError",
    "IncrementalPatchError",
    "IncrementalPlanResult",
    "IncrementalSession",
    "IntentJournal",
    "IntentRecord",
    "OperationRecord",
    "PlanExecutor",
    "Quarantine",
    "RecoveryAction",
    "RecoveryReport",
    "RefreshResult",
    "RetryPolicy",
    "SequentialExecutor",
    "ShardedApplyResult",
    "ShardedExecutor",
    "SimulatedCrash",
    "UpdatePipeline",
    "UpdatePlanResult",
    "WALCorruptError",
    "read_data_sources",
    "refresh_state",
]
