"""Deployment executors and incremental update pipeline (paper 3.3)."""

from .executor import (
    ApplyResult,
    BestEffortExecutor,
    CriticalPathExecutor,
    OperationRecord,
    PlanExecutor,
    RetryPolicy,
    SequentialExecutor,
)
from .incremental import (
    RefreshResult,
    UpdatePipeline,
    UpdatePlanResult,
    read_data_sources,
    refresh_state,
)

__all__ = [
    "ApplyResult",
    "BestEffortExecutor",
    "CriticalPathExecutor",
    "OperationRecord",
    "PlanExecutor",
    "RefreshResult",
    "RetryPolicy",
    "SequentialExecutor",
    "UpdatePipeline",
    "UpdatePlanResult",
    "read_data_sources",
    "refresh_state",
]
