"""Deployment executors and incremental update pipeline (paper 3.3)."""

from .executor import (
    ApplyResult,
    BestEffortExecutor,
    CriticalPathExecutor,
    OperationRecord,
    PlanExecutor,
    Quarantine,
    RetryPolicy,
    SequentialExecutor,
)
from .recovery import CrashRecovery, RecoveryAction, RecoveryReport
from .wal import (
    IntentJournal,
    IntentRecord,
    SimulatedCrash,
    WALCorruptError,
)
from .incremental import (
    RefreshResult,
    UpdatePipeline,
    UpdatePlanResult,
    read_data_sources,
    refresh_state,
)

__all__ = [
    "ApplyResult",
    "BestEffortExecutor",
    "CrashRecovery",
    "CriticalPathExecutor",
    "IntentJournal",
    "IntentRecord",
    "OperationRecord",
    "PlanExecutor",
    "Quarantine",
    "RecoveryAction",
    "RecoveryReport",
    "RefreshResult",
    "RetryPolicy",
    "SequentialExecutor",
    "SimulatedCrash",
    "UpdatePipeline",
    "UpdatePlanResult",
    "WALCorruptError",
    "read_data_sources",
    "refresh_state",
]
