"""Write-ahead intent journal for crash-safe applies.

The paper's §2.2 failure story: an interrupted ``apply`` leaves
resources that "neither the cloud nor the state file" fully describe.
The :class:`IntentJournal` closes that gap the way databases do --
before the executor dispatches any mutating cloud call it durably logs
an *intent* (change id, address, operation, idempotency token), and
logs a *commit* marker only after the result has landed in the state
document. A process that dies between those two writes leaves an open
intent; :mod:`repro.deploy.recovery` replays the journal on restart and
classifies every open intent against the live control plane.

Format: JSONL, one record per line, fsync-able, alongside the
``JournalStateStore`` delta journal from PR 3:

* ``{"rec": "run", "run_id": ..., "wal_version": 1}`` -- one per apply
  run; ``begin_run`` truncates the file first, so the journal only ever
  describes the latest run.
* ``{"rec": "intent", "iid": n, "cid": ..., "address": ..., "op": ...,
  "rtype": ..., "token": ..., "resource_id": ...}`` -- written *before*
  the operation is submitted. ``token`` is the idempotency token creates
  carry to the cloud; ``resource_id`` is the target of deletes/updates.
* ``{"rec": "commit", "iid": n, "resource_id": ...}`` -- written after
  the state commit for intent ``n``.
* ``{"rec": "abort", "iid": n, "error": ...}`` -- the run observed the
  operation fail terminally; the intent will not be retried by this run.

Replay is idempotent and tolerates a torn tail: a half-written final
line (the crash happened mid-append) is dropped and physically
truncated away, exactly like the state store's delta journal. Garbage
*before* the last line is real corruption and raises
:class:`WALCorruptError`.

Durability is configurable (``sync=``): ``"fsync"`` forces every record
to disk (media-crash safe), ``"flush"`` (default) pushes to the OS --
sufficient for the process-crash failure model this PR targets -- and
``"none"`` leaves buffering to the runtime (benchmark floor).
"""

from __future__ import annotations

import dataclasses
import json
import os
import uuid
from typing import Any, Dict, IO, List, Optional

WAL_VERSION = 1

SYNC_MODES = ("fsync", "flush", "none")

INTENT_OPEN = "open"
INTENT_COMMITTED = "committed"
INTENT_ABORTED = "aborted"


class SimulatedCrash(BaseException):
    """Raised by a crash hook to kill an apply at an event boundary.

    Derives from ``BaseException`` so no retry/cleanup layer inside the
    executor can swallow it -- a crashed process does not run handlers.
    """


class WALCorruptError(RuntimeError):
    """The intent journal has garbage before its final record."""


@dataclasses.dataclass
class IntentRecord:
    """One logged intent plus its observed outcome markers."""

    iid: int
    cid: str
    address: str
    op: str
    rtype: str
    token: str = ""
    resource_id: str = ""
    status: str = INTENT_OPEN  # open | committed | aborted
    committed_id: str = ""  # resource id recorded at commit time
    error: str = ""

    @property
    def open(self) -> bool:
        return self.status == INTENT_OPEN


class IntentJournal:
    """Append-only write-ahead log of apply intents."""

    def __init__(self, path: str, sync: str = "flush"):
        if sync not in SYNC_MODES:
            raise ValueError(f"sync must be one of {SYNC_MODES}, got {sync!r}")
        self.path = path
        self.sync = sync
        self.run_id: Optional[str] = None
        self._next_iid = 0
        self._records: Dict[int, IntentRecord] = {}
        self._handle: Optional[IO[str]] = None

    # -- writing -----------------------------------------------------------

    def _open(self, mode: str) -> IO[str]:
        if self._handle is not None:
            self._handle.close()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # a large buffer keeps non-durable marker appends out of the OS
        # until the next intent's flush barrier sweeps them along
        self._handle = open(
            self.path, mode, encoding="utf-8", buffering=1 << 20
        )
        return self._handle

    def _append(self, record: Dict[str, Any], durable: bool = True) -> None:
        handle = self._handle
        if handle is None:
            handle = self._open("a")
        handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        if self.sync == "none" or not durable:
            return
        handle.flush()
        if self.sync == "fsync":
            os.fsync(handle.fileno())

    def begin_run(self, run_id: Optional[str] = None) -> str:
        """Start a fresh apply run: truncate the journal, write the
        run header, and return the run id (the token namespace)."""
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self._next_iid = 0
        self._records = {}
        self._open("w")
        self._append({"rec": "run", "run_id": self.run_id, "wal_version": WAL_VERSION})
        return self.run_id

    def log_intent(
        self,
        cid: str,
        op: str,
        rtype: str,
        address: str = "",
        token: str = "",
        resource_id: str = "",
    ) -> int:
        if self.run_id is None:
            raise RuntimeError("no active run; call begin_run() first")
        iid = self._next_iid
        self._next_iid += 1
        record = IntentRecord(
            iid=iid,
            cid=cid,
            address=address or cid,
            op=op,
            rtype=rtype,
            token=token,
            resource_id=resource_id,
        )
        self._records[iid] = record
        # empty/derivable fields are omitted on disk; resume() fills the
        # same defaults back in
        line: Dict[str, Any] = {
            "rec": "intent",
            "iid": iid,
            "cid": cid,
            "op": op,
            "rtype": rtype,
        }
        if record.address != cid:
            line["address"] = record.address
        if token:
            line["token"] = token
        if resource_id:
            line["resource_id"] = resource_id
        self._append(line)
        return iid

    def log_commit(self, iid: int, resource_id: str = "") -> None:
        record = self._records.get(iid)
        if record is not None:
            record.status = INTENT_COMMITTED
            record.committed_id = resource_id
        # markers ride the buffer (durable=False): recovery probes the
        # cloud for every intent anyway, so a lost marker only changes
        # the classification label, never the repair -- but a lost
        # *intent* would orphan a resource, hence the barrier above
        self._append(
            {"rec": "commit", "iid": iid, "resource_id": resource_id},
            durable=False,
        )

    def log_abort(self, iid: int, error: str = "") -> None:
        record = self._records.get(iid)
        if record is not None:
            record.status = INTENT_ABORTED
            record.error = error
        self._append({"rec": "abort", "iid": iid, "error": error}, durable=False)

    def mark_clean(self) -> None:
        """The run completed and its state is durable: empty the journal
        (an empty journal means "nothing to recover")."""
        self.run_id = None
        self._next_iid = 0
        self._records = {}
        self._open("w")
        handle = self._handle
        assert handle is not None
        handle.flush()
        if self.sync == "fsync":
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- replay ------------------------------------------------------------

    @classmethod
    def resume(cls, path: str, sync: str = "flush") -> "IntentJournal":
        """Load an existing journal for recovery + continuation.

        Keeps the previous run id, so tokens minted by the resumed apply
        land in the same namespace the crashed run used -- a re-created
        change re-sends the *same* token and the cloud deduplicates it.
        Tolerates a torn final line (truncated away); raises
        :class:`WALCorruptError` on mid-file garbage.
        """
        journal = cls(path, sync=sync)
        if not os.path.exists(path):
            return journal
        with open(path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        parsed: List[Dict[str, Any]] = []
        valid_end = 0
        offset = 0
        for index, chunk in enumerate(lines):
            line_end = offset + len(chunk) + 1  # +1 for the newline
            stripped = chunk.strip()
            if stripped:
                try:
                    parsed.append(json.loads(stripped.decode("utf-8")))
                except (ValueError, UnicodeDecodeError):
                    tail = all(not c.strip() for c in lines[index + 1 :])
                    if not tail:
                        raise WALCorruptError(
                            f"{path}: unparseable record at line {index + 1} "
                            f"with valid records after it"
                        )
                    # torn final append: drop it and truncate it away so
                    # continued appends produce a well-formed journal
                    with open(path, "r+b") as trunc:
                        trunc.truncate(valid_end)
                    break
            valid_end = min(line_end, len(raw))
            offset = line_end
        for item in parsed:
            kind = item.get("rec")
            if kind == "run":
                journal.run_id = item.get("run_id")
                journal._next_iid = 0
                journal._records = {}
            elif kind == "intent":
                iid = int(item.get("iid", journal._next_iid))
                journal._records[iid] = IntentRecord(
                    iid=iid,
                    cid=item.get("cid", ""),
                    address=item.get("address", item.get("cid", "")),
                    op=item.get("op", ""),
                    rtype=item.get("rtype", ""),
                    token=item.get("token", ""),
                    resource_id=item.get("resource_id", ""),
                )
                journal._next_iid = max(journal._next_iid, iid + 1)
            elif kind == "commit":
                record = journal._records.get(int(item.get("iid", -1)))
                if record is not None:
                    record.status = INTENT_COMMITTED
                    record.committed_id = item.get("resource_id", "")
            elif kind == "abort":
                record = journal._records.get(int(item.get("iid", -1)))
                if record is not None:
                    record.status = INTENT_ABORTED
                    record.error = item.get("error", "")
        return journal

    # -- introspection -----------------------------------------------------

    def records(self) -> List[IntentRecord]:
        return [self._records[iid] for iid in sorted(self._records)]

    def open_intents(self) -> List[IntentRecord]:
        return [r for r in self.records() if r.open]

    def committed_intents(self) -> List[IntentRecord]:
        return [r for r in self.records() if r.status == INTENT_COMMITTED]
