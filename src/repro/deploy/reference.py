"""Frozen pre-optimization executor (the scheduling-equivalence oracle).

This module preserves, verbatim, the original list-based discrete-event
apply loop that :mod:`repro.deploy.executor` shipped with before the
scale optimization pass:

* ``ready`` is a plain list -- ``pick_next`` scans it (O(n)) and
  ``ready.remove`` compacts it (O(n)), so dispatch is O(n^2) overall;
* failure skips walk ``dag.descendants`` (a full BFS) per failed node;
* the rate-aware critical-path pick recomputes ``plane_for`` +
  ``available_at`` per candidate per dispatch.

It exists so that tests and ``benchmarks/bench_p1_scale.py`` can prove
two things forever: (1) the optimized executors make *identical
scheduling decisions* (same succeeded order, same operation log, same
sim-time makespan), and (2) how much wall-clock the optimization buys.

Do not "fix" or speed this code up -- its slowness is the baseline.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..cloud.base import CloudAPIError
from ..cloud.clock import EventQueue
from ..graph.plan import Plan
from .executor import (
    ApplyResult,
    BestEffortExecutor,
    CriticalPathExecutor,
    OperationRecord,
    PlanExecutor,
    SequentialExecutor,
    _Running,
    _STEPS,
    _UnresolvedValueError,
)


class ReferenceApplyMixin:
    """Overrides ``apply`` with the original pre-optimization loop.

    Scheduling order comes from ``self.pick_next(ready)`` exactly as it
    did pre-optimization; the operation submission/commit helpers are
    inherited from the live executor classes (they are not part of the
    hot path under test).
    """

    def apply(self, plan: Plan) -> ApplyResult:
        """Execute the plan; mutates ``plan.state`` as the new state."""
        clock = self.gateway.clock
        started = clock.now
        calls_before = self.gateway.total_api_calls()
        result = ApplyResult(started_at=started, finished_at=started)
        state = plan.state

        dag = plan.execution_dag()
        self.prepare(plan, dag)

        indeg: Dict[str, int] = {n: dag.in_degree(n) for n in dag.nodes}
        ready: List[str] = sorted([n for n, d in indeg.items() if d == 0])
        running: Dict[str, _Running] = {}
        done: Set[str] = set()
        dead: Set[str] = set()  # failed or skipped
        events = EventQueue(clock)

        def finish_change(cid: str, ok: bool, error: str = "") -> None:
            running.pop(cid, None)
            if ok:
                done.add(cid)
                result.succeeded.append(cid)
                for succ in sorted(dag.successors(cid)):
                    indeg[succ] -= 1
                    if indeg[succ] == 0 and succ not in dead:
                        ready.append(succ)
            else:
                dead.add(cid)
                result.failed[cid] = error
                for desc in dag.descendants(cid):
                    if desc not in dead and desc not in done:
                        dead.add(desc)
                        result.skipped.append(desc)

        def start(cid: str) -> None:
            change = plan.changes[cid]
            steps = list(_STEPS[change.action])
            rc = _Running(change=change, steps=steps)
            if not steps:  # READ: value already resolved at plan time
                result.operations.append(
                    OperationRecord(cid, "read", clock.now, clock.now, True)
                )
                done.add(cid)
                result.succeeded.append(cid)
                for succ in sorted(dag.successors(cid)):
                    indeg[succ] -= 1
                    if indeg[succ] == 0 and succ not in dead:
                        ready.append(succ)
                return
            running[cid] = rc
            submit_step(cid, rc)

        def submit_step(cid: str, rc: _Running) -> None:
            rc.attempts += 1
            try:
                pending = self._submit_operation(plan, rc, state)
            except CloudAPIError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, rc.steps[rc.step_idx], clock.now, clock.now,
                        False, exc.code, rc.attempts,
                    )
                )
                finish_change(cid, False, str(exc))
                return
            except _UnresolvedValueError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, rc.steps[rc.step_idx], clock.now, clock.now,
                        False, "UnresolvedValue", rc.attempts,
                    )
                )
                finish_change(cid, False, str(exc))
                return
            rc.pending = pending
            events.schedule(pending.t_complete, ("complete", cid))

        def on_complete(cid: str) -> None:
            rc = running.get(cid)
            if rc is None or rc.pending is None:
                return
            op_name = rc.steps[rc.step_idx]
            try:
                response = rc.pending.resolve()
            except CloudAPIError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, op_name, rc.pending.t_submit, clock.now,
                        False, exc.code, rc.attempts,
                    )
                )
                if exc.transient and rc.attempts < self.retry.max_attempts:
                    delay = self.retry.backoff(rc.attempts)
                    events.schedule(clock.now + delay, ("retry", cid))
                else:
                    finish_change(cid, False, str(exc))
                return
            result.operations.append(
                OperationRecord(
                    cid, op_name, rc.pending.t_submit, clock.now, True,
                    "", rc.attempts,
                )
            )
            self._commit_step(plan, rc, state, op_name, response, clock.now)
            rc.step_idx += 1
            rc.attempts = 0
            if rc.step_idx < len(rc.steps):
                submit_step(cid, rc)
            else:
                finish_change(cid, True)

        # drive the event loop
        while True:
            while ready and len(running) < self.concurrency:
                ready_sorted = ready  # subclasses reorder through pick_next
                cid = self.pick_next(ready_sorted)
                ready.remove(cid)
                if cid in dead:
                    continue
                start(cid)
            if not running:
                if not ready:
                    break
                continue
            popped = events.pop()
            if popped is None:
                break
            _, (kind, cid) = popped
            if kind == "complete":
                on_complete(cid)
            elif kind == "retry":
                rc = running.get(cid)
                if rc is not None:
                    submit_step(cid, rc)

        result.finished_at = clock.now
        result.state = state
        result.api_calls = self.gateway.total_api_calls() - calls_before
        state.bump()
        return result


class ReferenceSequentialExecutor(ReferenceApplyMixin, SequentialExecutor):
    name = "sequential-reference"


class ReferenceBestEffortExecutor(ReferenceApplyMixin, BestEffortExecutor):
    name = "best-effort-reference"


class ReferenceCriticalPathExecutor(ReferenceApplyMixin, CriticalPathExecutor):
    name = "critical-path-reference"


#: optimized executor class -> its frozen pre-optimization twin
REFERENCE_FOR = {
    SequentialExecutor: ReferenceSequentialExecutor,
    BestEffortExecutor: ReferenceBestEffortExecutor,
    CriticalPathExecutor: ReferenceCriticalPathExecutor,
    PlanExecutor: ReferenceBestEffortExecutor,
}
