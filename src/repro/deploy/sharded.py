"""Sharded plan execution: per-shard executors over a partitioned DAG.

The estate's execution DAG is cut into shards (:mod:`repro.graph.partition`)
and one logical executor runs per shard. Two modes share that structure:

**Interleaved** (default): every shard executor advances on the shared
simulated clock, arbitrated so that the *global* dispatch order is
provably identical to the corresponding single-executor strategy --
identical sim makespan, byte-identical final state. The wall-clock win
comes from shard-compiled *dispatch programs*: per-change precomputed
steps, successors, commit dependencies, and a selective attribute
evaluator that reuses the planner's concrete values instead of
re-walking every expression at dispatch time (sound because the
language is pure and a value concrete at plan time can only change if
an upstream change mutates state -- exactly the cases the compiler
detects and routes to full re-evaluation).

**Pool** (``workers > 1``): shards are grouped by provider (a simulated
control plane mints ids and computed attributes from sequential
per-plane streams, so a worker must own whole planes) and plane groups
run in forked worker processes, wave by wave over the shard-level
dependency graph. Workers inherit the plan via fork copy-on-write and
return picklable deltas -- committed state entries, resolver overrides,
and plane runtime (records, id counter, RNG stream) -- which the parent
merges through the copy-on-write :class:`StateDocument`, so merging
stays O(changed). Pool mode reproduces single-executor results when
plane groups are independent and concurrency is not binding; with
cross-group edges the coarse wave barriers can only delay operations,
never reorder them within a plane.

Cross-shard dependency edges are satisfied through a
:class:`CompletionLedger` guarded by fencing tokens: each shard
executor holds the ledger's current token for its shard, publications
with a stale token are rejected, and a downstream shard releases a
change only once every cross-shard predecessor is published. A shard
whose (provider, region) partition goes dark parks alone -- its
completions stop, other shards keep draining, exactly the blast-radius
containment the quarantine layer (PR 5) establishes per-change.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import os
import pickle
import selectors
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from ..cloud.base import CloudAPIError, PendingOperation
from ..cloud.clock import EventQueue
from ..cloud.gateway import CloudGateway
from ..cloud.resilience import (
    GATE_OPEN,
    GATE_WAIT,
    HealthMonitor,
    RetryPolicy,
    is_outage_error,
)
from ..graph.critical_path import analyze
from ..graph.dag import Dag
from ..graph.partition import PlanPartition, change_partition, partition_plan
from ..graph.plan import Action, Plan
from ..lang.ast_nodes import (
    AttrAccess,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ObjectExpr,
    ScopeRef,
    SplatExpr,
    TemplateExpr,
)
from ..lang.context import DeferredResolver
from ..lang.diagnostics import CLCEvalError
from ..lang.evaluator import access_attr
from ..lang.functions import call_function
from ..lang.values import UNKNOWN, Unknown, is_unknown, to_string, type_name
from ..perf import PERF
from ..state.document import ResourceState, StateDocument
from .executor import (
    _STEPS,
    _RevStr,
    ApplyResult,
    OperationRecord,
    Quarantine,
    _UnresolvedValueError,
)
from .wal import IntentJournal


class FencingError(RuntimeError):
    """A shard published a completion with a stale fencing token."""


class CompletionLedger:
    """Cross-shard completion ledger with fencing tokens.

    Each shard executor must hold the ledger's *current* token for its
    shard to publish completions; :meth:`grant` invalidates every
    earlier token for that shard. A zombie executor resumed after its
    shard was re-granted (crash recovery, quarantine lift) therefore
    cannot corrupt the barrier bookkeeping -- its publications raise
    :class:`FencingError` and are not recorded.
    """

    def __init__(self) -> None:
        self._tokens: Dict[str, int] = {}
        self._published: Set[str] = set()
        self._per_shard: Dict[str, int] = {}
        self.rejected = 0

    def grant(self, shard_id: str) -> int:
        """Issue a new fencing token for ``shard_id``, invalidating all
        previously granted tokens for it."""
        token = self._tokens.get(shard_id, 0) + 1
        self._tokens[shard_id] = token
        return token

    def current_token(self, shard_id: str) -> int:
        return self._tokens.get(shard_id, 0)

    def publish(self, shard_id: str, token: int, change_id: str) -> None:
        """Record ``change_id`` complete, on behalf of ``shard_id``."""
        if token != self._tokens.get(shard_id, 0):
            self.rejected += 1
            raise FencingError(
                f"stale token {token} for shard {shard_id} "
                f"(current {self._tokens.get(shard_id, 0)})"
            )
        if change_id not in self._published:
            self._published.add(change_id)
            self._per_shard[shard_id] = self._per_shard.get(shard_id, 0) + 1

    def completed(self, change_id: str) -> bool:
        return change_id in self._published

    def published_by(self, shard_id: str) -> int:
        return self._per_shard.get(shard_id, 0)

    def __len__(self) -> int:
        return len(self._published)


@dataclasses.dataclass
class ShardSummary:
    """Per-shard outcome bookkeeping carried on the apply result."""

    shard_id: str
    changes: int = 0
    succeeded: int = 0
    failed: int = 0
    quarantined: int = 0
    barrier_releases: int = 0


@dataclasses.dataclass
class ShardedApplyResult(ApplyResult):
    mode: str = "interleaved"
    waves: int = 1
    barrier_waits: int = 0
    #: pool mode only: True when units were dispatched on the ready
    #: frontier (overlapped) instead of barrier-separated waves
    overlapped: bool = False
    shard_summaries: Dict[str, ShardSummary] = dataclasses.field(
        default_factory=dict
    )

    @property
    def shard_count(self) -> int:
        return len(self.shard_summaries)


class _Prog:
    """One change's compiled dispatch program."""

    __slots__ = (
        "change",
        "steps",
        "succs",
        "deps",
        "part",
        "shard",
        "cross_preds",
        "full_eval",
        "eval_names",
        "eval_progs",
        "plane",
        "rtype",
        "provider",
        "region",
    )


# -- expression compilation ---------------------------------------------------
#
# Dispatch-time evaluation of an unknown attribute is a walk of the
# same small expression tree every time: resolve a reference, access an
# attr, maybe wrap in a list or a function call. Compiling each such
# expression once into nested closures removes the per-dispatch tree
# walk, Scope/Evaluator construction, and root-identifier resolution --
# semantics are preserved by reusing the evaluator's own helpers
# (``access_attr``, ``call_function``) and by bailing out to the real
# Evaluator for any node shape not explicitly handled.


class _Bail(Exception):
    """Expression shape the compiler does not handle; use the Evaluator."""


#: root identifiers with reserved resolution (never managed types)
_RESERVED_ROOTS = frozenset(("var", "local", "data", "module", "path"))


def _compile_expr(expr: Any, ctx: Any, bindings: Dict[str, Any]):
    """Compile ``expr`` to ``(is_const, value, closure)``.

    ``is_const`` marks values that cannot change between dispatches
    (literals, instance bindings, variables); they are folded eagerly.
    Raises :class:`_Bail` for shapes left to the Evaluator.
    """
    kind = type(expr)

    if kind is Literal:
        return (True, expr.value, None)

    if kind is ScopeRef:
        name = expr.name
        if name in bindings:
            return (True, bindings[name], None)
        if name == "var":
            return (True, ctx.variables, None)
        raise _Bail()  # local/data/module/path/bare-resource roots

    if kind is AttrAccess:
        # resource reference root: TYPE.NAME -> resolver, bypassing
        # the scope chain (bindings can only bind count/each, checked
        # above via the ScopeRef branch being tried first)
        obj = expr.obj
        if (
            type(obj) is ScopeRef
            and obj.name not in _RESERVED_ROOTS
            and obj.name not in bindings
            and ("managed", obj.name, expr.name) in ctx.config.resources
        ):
            resolver = ctx.resolver
            if isinstance(resolver, DeferredResolver) and resolver.target:
                # the planner has already pointed the indirection slot
                # at the live resolver; it stays put for the whole apply
                resolver = resolver.target
            resolve = resolver.resolve
            mp = ctx.module_path
            rtype, rname, span = obj.name, expr.name, obj.span

            def ref_closure(
                resolve=resolve, mp=mp, rtype=rtype, rname=rname, span=span
            ):
                return resolve(mp, "managed", rtype, rname, span)

            return (False, None, ref_closure)
        is_const, value, closure = _compile_expr(obj, ctx, bindings)
        name, span = expr.name, expr.span
        if is_const:
            # static base (bindings/var): fold the access now; the
            # result cannot change between dispatches
            return (True, access_attr(value, name, span), None)

        def attr_closure(closure=closure, name=name, span=span):
            return access_attr(closure(), name, span)

        return (False, None, attr_closure)

    if kind is IndexAccess:
        obj_c = _compile_expr(expr.obj, ctx, bindings)
        idx_c = _compile_expr(expr.index, ctx, bindings)
        span = expr.span
        if obj_c[0] and idx_c[0]:
            raise _Bail()  # constant indexing is rare; keep exact errors
        obj_f = _as_thunk(obj_c)
        idx_f = _as_thunk(idx_c)

        def index_closure(obj_f=obj_f, idx_f=idx_f, span=span):
            return _index_value(obj_f(), idx_f(), span)

        return (False, None, index_closure)

    if kind is SplatExpr:
        obj_c = _compile_expr(expr.obj, ctx, bindings)
        obj_f = _as_thunk(obj_c)
        attrs, span = tuple(expr.attrs), expr.span

        def splat_closure(obj_f=obj_f, attrs=attrs, span=span):
            obj = obj_f()
            if isinstance(obj, Unknown):
                return obj
            if obj is None:
                return []
            items = obj if isinstance(obj, list) else [obj]
            out = []
            for item in items:
                value = item
                for name in attrs:
                    value = access_attr(value, name, span)
                out.append(value)
            return out

        return (False, None, splat_closure)

    if kind is TemplateExpr:
        parts = [_compile_expr(p, ctx, bindings) for p in expr.parts]
        if all(c[0] for c in parts):
            values = [c[1] for c in parts]
            if not any(is_unknown(v) for v in values):
                return (True, "".join(to_string(v) for v in values), None)
            raise _Bail()
        thunks = [_as_thunk(c) for c in parts]

        def template_closure(thunks=thunks):
            values = [f() for f in thunks]
            if any(is_unknown(v) for v in values):
                origins = [
                    v.origin for v in values if isinstance(v, Unknown) and v.origin
                ]
                return Unknown(origins[0]) if origins else UNKNOWN
            return "".join(to_string(v) for v in values)

        return (False, None, template_closure)

    if kind is ListExpr:
        items = [_as_thunk(_compile_expr(i, ctx, bindings)) for i in expr.items]

        def list_closure(items=items):
            return [f() for f in items]

        return (False, None, list_closure)

    if kind is ObjectExpr:
        entries = [
            (
                _as_thunk(_compile_expr(k, ctx, bindings)),
                _as_thunk(_compile_expr(v, ctx, bindings)),
            )
            for k, v in expr.entries
        ]
        spans = [k.span for k, _ in expr.entries]

        def object_closure(entries=entries, spans=spans):
            out: Dict[str, Any] = {}
            for (key_f, value_f), span in zip(entries, spans):
                key = key_f()
                if isinstance(key, Unknown):
                    return UNKNOWN
                if not isinstance(key, str):
                    raise CLCEvalError(
                        f"object key must be string, got {type_name(key)}", span
                    )
                out[key] = value_f()
            return out

        return (False, None, object_closure)

    if kind is FunctionCall:
        if expr.expand_final:
            raise _Bail()
        arg_fs = [_as_thunk(_compile_expr(a, ctx, bindings)) for a in expr.args]
        fname, span = expr.name, expr.span

        def call_closure(arg_fs=arg_fs, fname=fname, span=span):
            from ..lang.diagnostics import CLCEvalError

            args = [f() for f in arg_fs]
            try:
                return call_function(fname, args)
            except CLCEvalError as exc:
                if exc.span is None:
                    raise CLCEvalError(exc.message, span)
                raise

        return (False, None, call_closure)

    raise _Bail()  # operators, conditionals, for-exprs: Evaluator


def _as_thunk(compiled) -> Callable[[], Any]:
    is_const, value, closure = compiled
    if is_const:
        return lambda value=value: value
    return closure


def _index_value(obj: Any, index: Any, span: Any) -> Any:
    """Mirror of ``Evaluator._eval_IndexAccess`` post-evaluation."""
    from collections.abc import Mapping

    from ..lang.diagnostics import CLCEvalError
    from ..lang.values import Unknown, type_name

    if isinstance(obj, Unknown):
        return obj
    if isinstance(index, Unknown):
        return index
    if isinstance(obj, list):
        if not isinstance(index, (int, float)) or isinstance(index, bool):
            raise CLCEvalError(
                f"list index must be a number, got {type_name(index)}", span
            )
        i = int(index)
        if not 0 <= i < len(obj):
            raise CLCEvalError(
                f"list index {i} out of range (length {len(obj)})", span
            )
        return obj[i]
    if isinstance(obj, Mapping):
        if not isinstance(index, str):
            raise CLCEvalError(
                f"map key must be a string, got {type_name(index)}", span
            )
        if index not in obj:
            raise CLCEvalError(f"map has no key {index!r}", span)
        return obj[index]
    raise CLCEvalError(f"cannot index a {type_name(obj)}", span)


#: predecessor actions that can change a value that was concrete at plan
#: time (an UPDATE/REPLACE rewrites state attrs the dependent may have
#: read; CREATE cannot -- anything read from a CREATE was Unknown)
_MUTATING_PRED = (Action.UPDATE, Action.REPLACE)
_EVAL_ACTIONS = (Action.CREATE, Action.UPDATE, Action.REPLACE)


def _compile_programs(
    plan: Plan,
    dag: Dag,
    partition: PlanPartition,
    gateway: CloudGateway,
    state: StateDocument,
) -> Dict[str, _Prog]:
    """Shard-compile the plan: precompute everything the dispatch loop
    would otherwise recompute per operation."""
    changes = plan.changes
    graph_dag = plan.graph.dag
    nodes = plan.graph.nodes
    shard_of = partition.shard_of
    progs: Dict[str, _Prog] = {}
    part_of = partition.part_of
    for cid in dag.nodes:
        change = changes[cid]
        p = _Prog()
        p.change = change
        p.steps = _STEPS[change.action]
        p.succs = sorted(dag.successors(cid))
        p.shard = shard_of[cid]
        p.part = part_of.get(cid) or change_partition(change, state, gateway)
        p.rtype = change.rtype
        p.region = change.region
        try:
            p.plane = gateway.plane_for(p.rtype)
        except CloudAPIError:
            p.plane = None
        p.provider = change.provider or p.part[0]
        home = p.shard
        p.cross_preds = tuple(
            pred for pred in dag.predecessors(cid) if shard_of[pred] != home
        )
        if cid in nodes:
            p.deps = sorted(
                pred
                for pred in graph_dag.predecessors(cid)
                if pred in nodes and nodes[pred].address.mode == "managed"
            )
        else:
            p.deps = []
        p.full_eval = False
        p.eval_names = ()
        p.eval_progs = None
        if change.action in _EVAL_ACTIONS and change.node is not None:
            if any(
                (pc := changes.get(pred)) is not None
                and pc.action in _MUTATING_PRED
                for pred in graph_dag.predecessors(cid)
            ):
                p.full_eval = True
            else:
                p.eval_names = tuple(
                    name
                    for name, value in change.desired.items()
                    if is_unknown(value)
                )
                if p.eval_names:
                    node = change.node
                    ctx = node.context
                    bindings = node.instance_bindings()
                    body_attrs = node.decl.body.attributes
                    try:
                        p.eval_progs = tuple(
                            _as_thunk(
                                _compile_expr(
                                    body_attrs[name].expr, ctx, bindings
                                )
                            )
                            for name in p.eval_names
                        )
                    except _Bail:
                        p.eval_progs = None
        progs[cid] = p
    return progs


# -- equivalence-preserving shard arbiters -----------------------------------
#
# Each arbiter keeps one ready structure per shard and pops the element
# the corresponding single-executor queue would pop: the global order is
# the merge of per-shard orders under the strategy's exact comparison
# key, so argmin over shard tops == argmin over the whole ready set.


class _ShardMinId:
    """Sequential strategy: global min change id over shard-heap tops."""

    def __init__(self, shard_of: Dict[str, str]):
        self._shard_of = shard_of
        self._heaps: Dict[str, List[str]] = {}
        self._size = 0

    def push(self, cid: str) -> None:
        heapq.heappush(self._heaps.setdefault(self._shard_of[cid], []), cid)
        self._size += 1

    def pop(self) -> str:
        best_sid = min(
            (sid for sid, h in self._heaps.items() if h),
            key=lambda sid: self._heaps[sid][0],
        )
        heap = self._heaps[best_sid]
        cid = heapq.heappop(heap)
        if not heap:
            del self._heaps[best_sid]
        self._size -= 1
        return cid

    def __len__(self) -> int:
        return self._size


class _ShardFifo:
    """Best-effort strategy: global arrival order via a shared sequence
    stamp; pop = min stamp over shard-queue fronts."""

    def __init__(self, shard_of: Dict[str, str]):
        self._shard_of = shard_of
        self._queues: Dict[str, Deque[Tuple[int, str]]] = {}
        self._seq = 0
        self._size = 0

    def push(self, cid: str) -> None:
        self._queues.setdefault(self._shard_of[cid], deque()).append(
            (self._seq, cid)
        )
        self._seq += 1
        self._size += 1

    def pop(self) -> str:
        best_sid = min(
            (sid for sid, q in self._queues.items() if q),
            key=lambda sid: self._queues[sid][0][0],
        )
        queue = self._queues[best_sid]
        cid = queue.popleft()[1]
        if not queue:
            del self._queues[best_sid]
        self._size -= 1
        return cid

    def __len__(self) -> int:
        return self._size


class _ShardPriority:
    """Critical-path (non-rate-aware): min ``(-pri, _RevStr(cid))`` over
    shard-heap tops -- highest priority, ties to max cid, globally."""

    def __init__(self, shard_of: Dict[str, str], priority: Dict[str, float]):
        self._shard_of = shard_of
        self._priority = priority
        self._heaps: Dict[str, List[Tuple[float, _RevStr, str]]] = {}
        self._size = 0

    def push(self, cid: str) -> None:
        pri = self._priority.get(cid, 0.0)
        heapq.heappush(
            self._heaps.setdefault(self._shard_of[cid], []),
            (-pri, _RevStr(cid), cid),
        )
        self._size += 1

    def pop(self) -> str:
        best_sid = min(
            (sid for sid, h in self._heaps.items() if h),
            key=lambda sid: self._heaps[sid][0][:2],
        )
        heap = self._heaps[best_sid]
        cid = heapq.heappop(heap)[2]
        if not heap:
            del self._heaps[best_sid]
        self._size -= 1
        return cid

    def __len__(self) -> int:
        return self._size


class _ShardRateAware:
    """Rate-aware critical path over per-(shard, limiter) heaps.

    Identical pop order to the single executor's grouped queue: the
    priority band is computed over *all* group tops, and the winner is
    the min of ``(est, -pri, cid)`` over in-band tops. Splitting a
    limiter's group by shard refines the partition without changing
    either aggregate (max of maxes, min of mins).
    """

    def __init__(
        self,
        shard_of: Dict[str, str],
        priority: Dict[str, float],
        progs: Dict[str, _Prog],
        gateway: CloudGateway,
    ):
        self._shard_of = shard_of
        self._priority = priority
        self._progs = progs
        self._gateway = gateway
        #: (shard, limiter-id) -> (limiter, heap of (-pri, cid))
        self._groups: Dict[Tuple[str, Any], Tuple[Any, List[Tuple[float, str]]]] = {}
        self._size = 0

    def push(self, cid: str) -> None:
        plane = self._progs[cid].plane
        limiter = plane.limiter if plane is not None else None
        key = (self._shard_of[cid], id(limiter) if limiter is not None else None)
        group = self._groups.get(key)
        if group is None:
            group = (limiter, [])
            self._groups[key] = group
        heapq.heappush(group[1], (-self._priority.get(cid, 0.0), cid))
        self._size += 1

    def pop(self) -> str:
        now = self._gateway.clock.now
        band = 0.8 * max(-heap[0][0] for _, heap in self._groups.values())
        best_key: Any = None
        best: Optional[Tuple[float, float, str]] = None
        est_cache: Dict[Any, float] = {}
        for key, (limiter, heap) in self._groups.items():
            neg_pri, cid = heap[0]
            if -neg_pri < band:
                continue
            lid = id(limiter) if limiter is not None else None
            est = est_cache.get(lid)
            if est is None:
                est = (
                    limiter.available_at("write", now)
                    if limiter is not None
                    else now
                )
                est_cache[lid] = est
            cand = (est, neg_pri, cid)
            if best is None or cand < best:
                best = cand
                best_key = key
        limiter, heap = self._groups[best_key]
        cid = heapq.heappop(heap)[1]
        if not heap:
            del self._groups[best_key]
        self._size -= 1
        return cid

    def __len__(self) -> int:
        return self._size


class ShardedExecutor:
    """Partitioned apply: parallel shard executors over one plan.

    ``strategy`` selects the scheduling discipline to reproduce
    (``"critical-path"`` (default), ``"best-effort"``,
    ``"sequential"``); the interleaved dispatch order -- and therefore
    the sim makespan and final state -- is identical to the
    corresponding single executor. ``workers > 1`` switches to pool
    mode (forked process per plane group, wave-scheduled); pool mode
    does not support WAL journaling, health gating, or crash hooks and
    falls back to interleaved execution when any is requested.
    """

    name = "sharded"

    def __init__(
        self,
        gateway: CloudGateway,
        concurrency: int = 10,
        retry: Optional[RetryPolicy] = None,
        health: Optional[HealthMonitor] = None,
        strategy: str = "critical-path",
        rate_aware: bool = True,
        split_components: bool = False,
        max_shards: Optional[int] = None,
        workers: int = 1,
        overlap: bool = True,
    ):
        if strategy not in ("critical-path", "best-effort", "sequential"):
            raise ValueError(f"unknown sharded strategy {strategy!r}")
        self.gateway = gateway
        self.concurrency = 1 if strategy == "sequential" else max(1, concurrency)
        self.retry = retry or RetryPolicy()
        self.health = health
        self.strategy = strategy
        self.rate_aware = rate_aware
        self.split_components = split_components
        self.max_shards = max_shards
        self.workers = max(1, workers)
        #: pool mode: dispatch provider units the moment their own
        #: cross-group predecessors have merged (ready frontier).
        #: ``False`` restores barrier-separated waves -- kept for the
        #: overlapped-vs-barrier benchmark gate.
        self.overlap = overlap
        self.ledger = CompletionLedger()
        self.partition: Optional[PlanPartition] = None

    # -- entry ---------------------------------------------------------------

    def apply(
        self,
        plan: Plan,
        wal: Optional[IntentJournal] = None,
        crash_hook: Optional[Callable[[int], None]] = None,
    ) -> ShardedApplyResult:
        dag = plan.execution_dag()
        partition = partition_plan(
            plan,
            self.gateway,
            dag,
            split_components=self.split_components,
            max_shards=self.max_shards,
        )
        self.partition = partition
        plan.resolver.enable_decl_cache()
        progs = _compile_programs(plan, dag, partition, self.gateway, plan.state)
        priority: Dict[str, float] = {}
        if self.strategy == "critical-path":
            analysis = analyze(plan, self.gateway.mean_latency, execution_dag=dag)
            priority = analysis.priorities
        if (
            self.workers > 1
            and wal is None
            and self.health is None
            and crash_hook is None
            and len(partition.plane_groups()) > 1
        ):
            return self._apply_pool(plan, dag, partition, progs, priority)
        return self._apply_interleaved(
            plan, dag, partition, progs, priority, wal, crash_hook
        )

    def _make_arbiter(
        self,
        partition: PlanPartition,
        progs: Dict[str, _Prog],
        priority: Dict[str, float],
        shard_of: Dict[str, str],
    ) -> Any:
        if self.strategy == "sequential":
            return _ShardMinId(shard_of)
        if self.strategy == "best-effort":
            return _ShardFifo(shard_of)
        if self.rate_aware:
            return _ShardRateAware(shard_of, priority, progs, self.gateway)
        return _ShardPriority(shard_of, priority)

    # -- interleaved mode ----------------------------------------------------

    def _apply_interleaved(
        self,
        plan: Plan,
        dag: Dag,
        partition: PlanPartition,
        progs: Dict[str, _Prog],
        priority: Dict[str, float],
        wal: Optional[IntentJournal],
        crash_hook: Optional[Callable[[int], None]],
        only: Optional[Set[str]] = None,
        pre_done: Optional[Set[str]] = None,
        pre_dead: Optional[Set[str]] = None,
        result: Optional[ShardedApplyResult] = None,
    ) -> ShardedApplyResult:
        """The shared-clock sharded loop.

        ``only``/``pre_done``/``pre_dead`` support pool workers running
        a subset of the DAG with earlier waves' outcomes applied.
        """
        gateway = self.gateway
        clock = gateway.clock
        state = plan.state
        started = clock.now
        calls_before = gateway.total_api_calls()
        if result is None:
            result = ShardedApplyResult(started_at=started, finished_at=started)
        ledger = self.ledger
        changes = plan.changes
        health = self.health
        retry = self.retry
        PERF.count("shard.applies")

        members: Set[str] = set(progs) if only is None else set(only)
        shard_of = {cid: progs[cid].shard for cid in members}
        tokens: Dict[str, int] = {}
        summaries = result.shard_summaries
        for sid in sorted({shard_of[cid] for cid in members}):
            tokens[sid] = ledger.grant(sid)
            if sid not in summaries:
                summaries[sid] = ShardSummary(sid)
        for cid in members:
            summaries[shard_of[cid]].changes += 1

        pre_done = pre_done or set()
        pre_dead = pre_dead or set()

        # per-change split indegree: intra-shard edges release directly,
        # cross-shard edges release through the ledger
        intra: Dict[str, int] = {}
        cross: Dict[str, int] = {}
        for cid in members:
            p = progs[cid]
            n_intra = 0
            n_cross = 0
            for pred in dag.predecessors(cid):
                if pred in pre_done or pred not in members:
                    continue
                if progs[pred].shard == p.shard:
                    n_intra += 1
                else:
                    n_cross += 1
            intra[cid] = n_intra
            cross[cid] = n_cross

        arbiter = self._make_arbiter(partition, progs, priority, shard_of)
        running: Dict[str, Any] = {}
        done: Set[str] = set(pre_done)
        dead: Set[str] = set()
        events = EventQueue(clock)
        paused: Dict[Tuple[str, str], List[str]] = {}
        resolver = plan.resolver
        barrier_waits = 0

        # kill downstream closure of changes already dead in earlier waves
        for cid in sorted(members):
            if any(
                pred in pre_dead
                for pred in dag.predecessors(cid)
                if pred not in members
            ):
                if cid not in dead:
                    dead.add(cid)
                    result.skipped.append(cid)
                    stack = [cid]
                    while stack:
                        cur = stack.pop()
                        for succ in progs[cur].succs:
                            if succ in members and succ not in dead:
                                dead.add(succ)
                                result.skipped.append(succ)
                                stack.append(succ)

        for cid in sorted(c for c in members if not intra[c] and not cross[c]):
            if cid not in dead:
                arbiter.push(cid)

        # -- inner helpers (mirror executor.PlanExecutor.apply) -------------

        def release_successors(cid: str) -> None:
            nonlocal barrier_waits
            p = progs[cid]
            if any(
                s in members and progs[s].shard != p.shard for s in p.succs
            ):
                ledger.publish(p.shard, tokens[p.shard], cid)
            for succ in p.succs:
                if succ not in members:
                    continue
                if progs[succ].shard == p.shard:
                    intra[succ] -= 1
                else:
                    # cross-shard edge: the downstream shard re-checks
                    # the ledger before trusting the release
                    if not ledger.completed(cid):
                        raise FencingError(
                            f"release of {succ} before {cid} was published"
                        )
                    cross[succ] -= 1
                    barrier_waits += 1
                    summaries[progs[succ].shard].barrier_releases += 1
                if not intra[succ] and not cross[succ] and succ not in dead:
                    arbiter.push(succ)

        def finish_change(cid: str, ok: bool, error: str = "") -> None:
            rc = running.pop(cid, None)
            if (
                wal is not None
                and not ok
                and rc is not None
                and rc.open_iid is not None
            ):
                wal.log_abort(rc.open_iid, error=error)
                rc.open_iid = None
            if ok:
                done.add(cid)
                result.succeeded.append(cid)
                summaries[shard_of[cid]].succeeded += 1
                release_successors(cid)
                return
            dead.add(cid)
            result.failed[cid] = error
            summaries[shard_of[cid]].failed += 1
            stack = [cid]
            while stack:
                cur = stack.pop()
                for succ in progs[cur].succs:
                    if succ not in members or succ in dead:
                        continue
                    dead.add(succ)
                    result.skipped.append(succ)
                    stack.append(succ)

        def quarantine_change(cid: str, reason: str, part: Tuple[str, str]) -> None:
            rc = running.pop(cid, None)
            if wal is not None and rc is not None and rc.open_iid is not None:
                wal.log_abort(rc.open_iid, error=f"quarantined: {reason}")
                rc.open_iid = None
            if cid in dead or cid in done:
                return
            dead.add(cid)
            result.quarantined[cid] = Quarantine(
                cid, part[0], part[1], reason, clock.now
            )
            summaries[shard_of[cid]].quarantined += 1
            PERF.count("executor.quarantined")
            PERF.count("shard.parked_changes")
            stack = [cid]
            while stack:
                cur = stack.pop()
                for succ in progs[cur].succs:
                    if succ not in members or succ in dead:
                        continue
                    dead.add(succ)
                    result.quarantined[succ] = Quarantine(
                        succ,
                        part[0],
                        part[1],
                        f"depends on quarantined {cur}",
                        clock.now,
                    )
                    summaries[shard_of[succ]].quarantined += 1
                    stack.append(succ)

        def quarantine_paused(part: Tuple[str, str], reason: str) -> None:
            for held in paused.pop(part, []):
                if held not in dead and held not in done:
                    quarantine_change(held, reason, part)

        def drain_paused(part: Tuple[str, str]) -> None:
            for held in paused.pop(part, []):
                if held in dead or held in done:
                    continue
                held_rc = running.get(held)
                if held_rc is not None:
                    submit_step(held, held_rc)

        def materialize(p: _Prog) -> Dict[str, Any]:
            """Dispatch-time attribute values via the compiled program."""
            change = p.change
            if p.full_eval:
                attrs = change.node.evaluate_attrs()
                unknowns = sorted(
                    name for name, value in attrs.items() if is_unknown(value)
                )
                if unknowns:
                    raise _UnresolvedValueError(
                        f"{change.id}: attributes still unknown at apply "
                        f"time: {', '.join(unknowns)}"
                    )
                return attrs
            if not p.eval_names:
                return change.desired
            attrs = dict(change.desired)
            unknowns: List[str] = []
            if p.eval_progs is not None:
                for name, prog in zip(p.eval_names, p.eval_progs):
                    value = prog()
                    if is_unknown(value):
                        unknowns.append(name)
                    attrs[name] = value
            else:
                from ..lang.evaluator import Evaluator

                node = change.node
                evaluator = Evaluator(
                    node.context.scope(node.instance_bindings())
                )
                body_attrs = node.decl.body.attributes
                for name in p.eval_names:
                    value = evaluator.evaluate(body_attrs[name].expr)
                    if is_unknown(value):
                        unknowns.append(name)
                    attrs[name] = value
            if unknowns:
                raise _UnresolvedValueError(
                    f"{change.id}: attributes still unknown at apply time: "
                    f"{', '.join(sorted(unknowns))}"
                )
            return attrs

        def submit_operation(p: _Prog, rc: Any, token: str) -> PendingOperation:
            change = p.change
            op = rc.steps[rc.step_idx]
            if op == "delete":
                prior = change.prior if change.prior else state.get(change.address)
                if prior is None:
                    raise _UnresolvedValueError(
                        f"{change.id}: nothing in state to delete"
                    )
                return gateway.submit(
                    "delete", p.rtype, resource_id=prior.resource_id
                )
            attrs = materialize(p)
            region = p.region or gateway.region_for(p.rtype, attrs)
            if op == "create":
                payload = {k: v for k, v in attrs.items() if v is not None}
                return gateway.submit(
                    "create",
                    p.rtype,
                    attrs=payload,
                    region=region,
                    idempotency_token=token,
                )
            changed_names = [d.name for d in change.diffs]
            prior = change.prior if change.prior else state.get(change.address)
            if prior is None:
                raise _UnresolvedValueError(
                    f"{change.id}: nothing in state to update"
                )
            payload = {
                name: attrs[name]
                for name in changed_names
                if name in attrs and attrs[name] is not None
            }
            return gateway.submit(
                "update", p.rtype, resource_id=prior.resource_id, attrs=payload
            )

        def commit_step(p: _Prog, op: str, response: Any, now: float) -> None:
            change = p.change
            if op == "delete":
                state.remove(change.address)
                resolver.drop_override(change.id)
                return
            provider = p.provider or self.gateway.provider_of(p.rtype)
            region = change.region or gateway.region_for(p.rtype, response)
            if op == "create":
                state.set(
                    ResourceState(
                        address=change.address,
                        resource_id=response["id"],
                        provider=provider,
                        attrs=dict(response),
                        region=region,
                        created_at=now,
                        updated_at=now,
                        dependencies=p.deps,
                    )
                )
            else:
                entry = state.get(change.address) or change.prior
                if entry is not None:
                    state.set(
                        entry.replace(
                            attrs=dict(response),
                            updated_at=now,
                            dependencies=p.deps or list(entry.dependencies),
                        )
                    )
            resolver.set_override(change.id, dict(response))

        def start(cid: str) -> None:
            p = progs[cid]
            if not p.steps:  # READ: resolved at plan time
                result.operations.append(
                    OperationRecord(cid, "read", clock.now, clock.now, True)
                )
                done.add(cid)
                result.succeeded.append(cid)
                summaries[shard_of[cid]].succeeded += 1
                release_successors(cid)
                return
            rc = _ShardRunning(p.change, p.steps)
            running[cid] = rc
            submit_step(cid, rc)

        def submit_step(cid: str, rc: Any) -> None:
            p = progs[cid]
            if health is not None:
                part = p.part
                if part[0]:
                    verdict = health.gate(part[0], part[1], clock.now)
                    if verdict == GATE_OPEN:
                        PERF.count("executor.fast_fails")
                        quarantine_change(
                            cid,
                            f"partition {part[0]}/{part[1] or '*'} "
                            f"unreachable (circuit open)",
                            part,
                        )
                        return
                    if verdict == GATE_WAIT:
                        paused.setdefault(part, []).append(cid)
                        return
            rc.attempts += 1
            token = ""
            if wal is not None:
                op_name = rc.steps[rc.step_idx]
                if op_name == "create":
                    token = f"{wal.run_id}/{cid}/{rc.step_idx}"
                if rc.attempts == 1:
                    prior_id = ""
                    if op_name in ("delete", "update"):
                        prior = (
                            rc.change.prior
                            if rc.change.prior
                            else state.get(rc.change.address)
                        )
                        if prior is not None:
                            prior_id = prior.resource_id
                    rc.open_iid = wal.log_intent(
                        cid,
                        op_name,
                        p.rtype,
                        address=str(rc.change.address),
                        token=token,
                        resource_id=prior_id,
                    )
            try:
                pending = submit_operation(p, rc, token)
            except CloudAPIError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, rc.steps[rc.step_idx], clock.now, clock.now,
                        False, exc.code, rc.attempts,
                    )
                )
                finish_change(cid, False, str(exc))
                return
            except _UnresolvedValueError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, rc.steps[rc.step_idx], clock.now, clock.now,
                        False, "UnresolvedValue", rc.attempts,
                    )
                )
                finish_change(cid, False, str(exc))
                return
            rc.pending = pending
            events.schedule(pending.t_complete, ("complete", cid))

        def on_complete(cid: str) -> None:
            rc = running.get(cid)
            if rc is None or rc.pending is None:
                return
            p = progs[cid]
            op_name = rc.steps[rc.step_idx]
            try:
                response = rc.pending.resolve()
            except CloudAPIError as exc:
                result.operations.append(
                    OperationRecord(
                        cid, op_name, rc.pending.t_submit, clock.now,
                        False, exc.code, rc.attempts,
                    )
                )
                if health is not None:
                    part = p.part
                    outage = is_outage_error(exc)
                    if part[0]:
                        health.record(
                            part[0],
                            part[1],
                            ok=False,
                            now=clock.now,
                            latency_s=clock.now - rc.pending.t_submit,
                            code=exc.code,
                            outage=outage,
                        )
                    if outage and part[0]:
                        if health.blocked(part[0], part[1], clock.now):
                            reason = (
                                f"partition {part[0]}/{part[1] or '*'} "
                                f"unreachable: {exc.code}"
                            )
                            quarantine_change(cid, reason, part)
                            quarantine_paused(part, reason)
                            return
                        if not (
                            exc.transient and rc.attempts < retry.max_attempts
                        ):
                            quarantine_change(
                                cid,
                                f"retries exhausted against "
                                f"{part[0]}/{part[1] or '*'}: {exc.code}",
                                part,
                            )
                            return
                if exc.transient and rc.attempts < retry.max_attempts:
                    delay = retry.backoff(rc.attempts)
                    PERF.count("resilience.retries")
                    PERF.observe("resilience.backoff_sim_s", delay)
                    events.schedule(clock.now + delay, ("retry", cid))
                else:
                    if exc.transient:
                        PERF.count("resilience.gave_up")
                    finish_change(cid, False, str(exc))
                return
            result.operations.append(
                OperationRecord(
                    cid, op_name, rc.pending.t_submit, clock.now, True,
                    "", rc.attempts,
                )
            )
            if health is not None:
                part = p.part
                if part[0]:
                    health.record(
                        part[0],
                        part[1],
                        ok=True,
                        now=clock.now,
                        latency_s=clock.now - rc.pending.t_submit,
                    )
                    if paused:
                        drain_paused(part)
            commit_step(p, op_name, response, clock.now)
            if wal is not None and rc.open_iid is not None:
                committed_id = (
                    response.get("id", "") if isinstance(response, dict) else ""
                )
                wal.log_commit(rc.open_iid, resource_id=committed_id)
                rc.open_iid = None
            rc.step_idx += 1
            rc.attempts = 0
            if rc.step_idx < len(rc.steps):
                submit_step(cid, rc)
            else:
                finish_change(cid, True)

        # -- drive the event loop -------------------------------------------

        concurrency = self.concurrency
        event_index = 0
        dispatches = 0
        while True:
            while len(arbiter) and len(running) < concurrency:
                cid = arbiter.pop()
                if cid in dead:
                    continue
                dispatches += 1
                start(cid)
            if not running:
                if not len(arbiter):
                    break
                continue
            popped = events.pop()
            if popped is None:
                break
            if crash_hook is not None:
                crash_hook(event_index)
                event_index += 1
            _, (kind, cid) = popped
            if kind == "complete":
                on_complete(cid)
            elif kind == "retry":
                rc = running.get(cid)
                if rc is not None:
                    submit_step(cid, rc)

        for part in sorted(paused):
            quarantine_paused(
                part,
                f"partition {part[0]}/{part[1] or '*'} probe did not "
                f"resolve before the run ended",
            )

        t_merge = time.perf_counter()
        PERF.count("shard.dispatches", dispatches)
        if barrier_waits:
            PERF.count("shard.barrier_waits", barrier_waits)
        result.finished_at = clock.now
        result.state = state
        result.api_calls = gateway.total_api_calls() - calls_before
        result.barrier_waits = barrier_waits
        if only is None:
            state.bump()
            PERF.observe(
                "shard.merge_ms", (time.perf_counter() - t_merge) * 1000.0
            )
        return result

    # -- pool mode -----------------------------------------------------------

    def _apply_pool(
        self,
        plan: Plan,
        dag: Dag,
        partition: PlanPartition,
        progs: Dict[str, _Prog],
        priority: Dict[str, float],
    ) -> ShardedApplyResult:
        """Forked plane-group workers, overlapped or barrier-waved."""
        if self.overlap:
            return self._apply_pool_overlapped(
                plan, dag, partition, progs, priority
            )
        return self._apply_pool_barrier(plan, dag, partition, progs, priority)

    def _merge_outcome(
        self,
        result: ShardedApplyResult,
        outcome: Dict[str, Any],
        plan: Plan,
        done: Set[str],
        dead: Set[str],
    ) -> float:
        """Fold one worker's outcome into the parent; returns its
        sim-time finish."""
        state = plan.state
        t_merge = time.perf_counter()
        result.succeeded.extend(outcome["succeeded"])
        result.failed.update(outcome["failed"])
        result.skipped.extend(outcome["skipped"])
        result.operations.extend(outcome["operations"])
        done.update(outcome["succeeded"])
        dead.update(outcome["failed"])
        dead.update(outcome["skipped"])
        for sid, summary in outcome["summaries"].items():
            mine = result.shard_summaries[sid]
            mine.changes += summary.changes
            mine.succeeded += summary.succeeded
            mine.failed += summary.failed
            mine.quarantined += summary.quarantined
            mine.barrier_releases += summary.barrier_releases
        result.barrier_waits += outcome["barrier_waits"]
        # merge shard-local state deltas through the COW document
        for entry in outcome["entries"]:
            state.set(entry)
        for address in outcome["removed"]:
            state.remove(address)
        for cid, attrs in outcome["overrides"].items():
            plan.resolver.set_override(cid, attrs)
        for cid in outcome["dropped"]:
            plan.resolver.drop_override(cid)
        # the worker owned these planes outright: adopt their final
        # runtime (touched records, counters, RNG stream, log suffix)
        for provider, delta in outcome["planes"].items():
            _import_plane_delta(self.gateway.planes[provider], delta)
        for sid in outcome["tokens"]:
            self.ledger.grant(sid)
            for cid in outcome["published"].get(sid, ()):
                self.ledger.publish(sid, self.ledger.current_token(sid), cid)
        PERF.observe(
            "shard.merge_ms", (time.perf_counter() - t_merge) * 1000.0
        )
        return outcome["finished_at"]

    def _apply_pool_barrier(
        self,
        plan: Plan,
        dag: Dag,
        partition: PlanPartition,
        progs: Dict[str, _Prog],
        priority: Dict[str, float],
    ) -> ShardedApplyResult:
        """Historical pool mode: barrier-separated waves."""
        gateway = self.gateway
        clock = gateway.clock
        started = clock.now
        calls_before_total = gateway.total_api_calls()
        result = ShardedApplyResult(
            started_at=started, finished_at=started, mode="pool"
        )
        waves = partition.pool_waves()
        result.waves = len(waves)
        done: Set[str] = set()
        dead: Set[str] = set()
        for sid in partition.shard_ids():
            result.shard_summaries[sid] = ShardSummary(sid)

        for wave in waves:
            # one worker per plane group in this wave
            jobs: List[Tuple[List[str], Set[str]]] = []
            for group in wave:
                members = {
                    cid
                    for sid in group
                    for cid in partition.shards[sid].change_ids
                }
                if members:
                    jobs.append((group, members))
            if not jobs:
                continue
            outcomes = _run_forked(
                self, plan, dag, partition, progs, priority, jobs, done, dead
            )
            wave_end = clock.now
            for outcome in outcomes:
                wave_end = max(
                    wave_end,
                    self._merge_outcome(result, outcome, plan, done, dead),
                )
            clock.advance_to(wave_end)

        result.finished_at = clock.now
        result.state = plan.state
        result.api_calls = gateway.total_api_calls() - calls_before_total
        plan.state.bump()
        return result

    def _apply_pool_overlapped(
        self,
        plan: Plan,
        dag: Dag,
        partition: PlanPartition,
        progs: Dict[str, _Prog],
        priority: Dict[str, float],
    ) -> ShardedApplyResult:
        """Ready-frontier pool: fork each provider unit the moment its
        own cross-group predecessors have merged.

        The barrier scheduler holds every wave-N+1 worker until the
        *slowest* wave-N worker finishes, even when its actual
        predecessors landed long before. Here the condensed provider
        units (:meth:`PlanPartition.pool_units`) are dispatched
        individually: a unit forks as soon as its predecessor units
        are merged, its child clock starts at the latest predecessor
        finish (sim-time dependencies hold), and outcomes are
        collected as workers finish rather than in submission order.
        At most ``workers`` children are in flight.
        """
        gateway = self.gateway
        clock = gateway.clock
        started = clock.now
        calls_before_total = gateway.total_api_calls()
        result = ShardedApplyResult(
            started_at=started, finished_at=started, mode="pool",
            overlapped=True,
        )
        units, unit_deps = partition.pool_units()
        groups = partition.plane_groups()
        done: Set[str] = set()
        dead: Set[str] = set()
        for sid in partition.shard_ids():
            result.shard_summaries[sid] = ShardSummary(sid)

        jobs: List[Tuple[List[str], Set[str]]] = []
        for unit in units:
            group = [sid for p in unit for sid in groups.get(p, [])]
            members = {
                cid
                for sid in group
                for cid in partition.shards[sid].change_ids
            }
            jobs.append((group, members))
        result.waves = sum(1 for _, members in jobs if members)

        n = len(units)
        merged: Set[int] = set()
        unit_end: Dict[int, float] = {}
        launched: Set[int] = set()
        for i in range(n):
            if not jobs[i][1]:  # nothing to do: merged at birth
                merged.add(i)
                launched.add(i)
                unit_end[i] = started
        can_fork = hasattr(os, "fork")
        sel = selectors.DefaultSelector() if can_fork else None
        inflight: Dict[int, Tuple[int, int]] = {}  # unit -> (pid, fd)
        buffers: Dict[int, bytearray] = {}
        sim_end = started

        def start_time(i: int) -> float:
            return max([started] + [unit_end[d] for d in unit_deps[i]])

        def finalize(i: int, outcome: Dict[str, Any]) -> None:
            end = self._merge_outcome(result, outcome, plan, done, dead)
            unit_end[i] = end
            merged.add(i)

        def launch(i: int) -> None:
            launched.add(i)
            group, members = jobs[i]
            start_at = start_time(i)
            if not can_fork:  # pragma: no cover - non-posix fallback
                clock.advance_to(start_at)
                outcome = _pool_job(
                    self, plan, dag, partition, progs, priority,
                    group, members, done, dead,
                )
                finalize(i, outcome)
                return
            pid, read_fd = _fork_job(
                self, plan, dag, partition, progs, priority,
                group, members, done, dead, start_at,
            )
            inflight[i] = (pid, read_fd)
            buffers[i] = bytearray()
            assert sel is not None
            sel.register(read_fd, selectors.EVENT_READ, data=i)

        while len(merged) < n:
            frontier = sorted(
                i
                for i in range(n)
                if i not in launched and unit_deps[i] <= merged
            )
            for i in frontier:
                if len(inflight) >= self.workers:
                    break
                launch(i)
            if not inflight:
                if len(merged) < n and not any(
                    i not in launched and unit_deps[i] <= merged
                    for i in range(n)
                ):  # pragma: no cover - pool_units condenses cycles
                    raise RuntimeError("pool schedule stalled (cycle?)")
                continue
            assert sel is not None
            for key, _mask in sel.select():
                i = key.data
                fd = key.fileobj
                chunk = os.read(fd, 1 << 20)
                if chunk:
                    buffers[i] += chunk
                    continue
                # EOF: worker finished; reap and merge
                sel.unregister(fd)
                os.close(fd)
                pid, _ = inflight.pop(i)
                _, status = os.waitpid(pid, 0)
                payload = bytes(buffers.pop(i))
                if not payload:
                    raise RuntimeError(
                        f"pool worker {pid} died (status {status})"
                    )
                finalize(i, pickle.loads(payload))

        if sel is not None:
            sel.close()
        # independent units merge in wall-clock completion order, which
        # is nondeterministic run to run; canonicalize the merged
        # artifacts so a pool apply is byte-stable regardless of which
        # worker's pipe hit EOF first
        result.operations.sort(
            key=lambda op: (op.t_submit, op.t_complete, op.change_id, op.attempt)
        )
        result.succeeded.sort()
        result.skipped.sort()
        for end in unit_end.values():
            sim_end = max(sim_end, end)
        clock.advance_to(sim_end)
        result.finished_at = clock.now
        result.state = plan.state
        result.api_calls = gateway.total_api_calls() - calls_before_total
        plan.state.bump()
        return result


@dataclasses.dataclass
class _ShardRunning:
    change: Any
    steps: List[str]
    step_idx: int = 0
    attempts: int = 0
    pending: Optional[PendingOperation] = None
    open_iid: Optional[int] = None


def _export_plane_delta(
    plane: Any, base_cursor: int, base_tokens: int
) -> Dict[str, Any]:
    """Ship only what this worker *changed* on its plane.

    The historical export copied the full record map and activity log
    -- O(estate) pickled per wave even when one shard touched ten
    resources. The activity log already names every resource a run
    created, updated, or deleted, so the delta is derived from the log
    suffix past the fork-time cursor: touched records (or their
    absence, for deletes), the log suffix itself, the id/generation
    counters, and the token-index tail. Everything here is O(changed).
    """
    events = plane.log.events_since(base_cursor)
    touched: Dict[str, None] = {}
    gen_keys = set()
    for event in events:
        if event.resource_id:
            touched[event.resource_id] = None
        if event.operation == "create":
            gen_keys.add(
                (event.resource_type, event.region, event.resource_name)
            )
    records: Dict[str, Any] = {}
    removed_ids: List[str] = []
    for rid in touched:
        record = plane.records.get(rid)
        if record is not None:
            records[rid] = record
        else:
            removed_ids.append(rid)
    return {
        "records": records,
        "removed_ids": removed_ids,
        "next_id": plane._next_id,
        "id_gens": {
            key: plane._id_gens[key]
            for key in gen_keys
            if key in plane._id_gens
        },
        "rng_state": plane.rng.getstate(),
        "api_calls": dict(plane.api_calls),
        "tokens": dict(
            itertools.islice(plane._tokens.items(), base_tokens, None)
        ),
        "log_suffix": events,
    }


def _import_plane_delta(plane: Any, delta: Dict[str, Any]) -> None:
    """Upsert a worker's plane delta (idempotent, O(changed))."""
    for rid, record in delta["records"].items():
        plane.records[rid] = record
    for rid in delta["removed_ids"]:
        if rid in plane.records:
            del plane.records[rid]
    plane._next_id = max(plane._next_id, delta["next_id"])
    for key, gen in delta["id_gens"].items():
        if gen > plane._id_gens.get(key, 0):
            plane._id_gens[key] = gen
    plane.rng.setstate(delta["rng_state"])
    plane.api_calls = dict(delta["api_calls"])
    plane._tokens.update(delta["tokens"])
    plane.log.extend_from(delta["log_suffix"])


def _fork_job(
    executor: ShardedExecutor,
    plan: Plan,
    dag: Dag,
    partition: PlanPartition,
    progs: Dict[str, _Prog],
    priority: Dict[str, float],
    group: List[str],
    members: Set[str],
    done: Set[str],
    dead: Set[str],
    start_at: Optional[float] = None,
) -> Tuple[int, int]:
    """Fork one plane-group worker; returns ``(pid, read_fd)``.

    The child inherits the full plan/gateway via fork copy-on-write,
    optionally advances its (private) clock to ``start_at`` -- the
    latest predecessor finish under overlapped scheduling -- and
    streams a pickled outcome back over the pipe.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        os.close(read_fd)
        code = 1
        try:
            if start_at is not None:
                executor.gateway.clock.advance_to(start_at)
            outcome = _pool_job(
                executor, plan, dag, partition, progs, priority,
                group, members, done, dead,
            )
            payload = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
            with os.fdopen(write_fd, "wb") as out:
                out.write(payload)
            code = 0
        finally:
            os._exit(code)
    os.close(write_fd)
    return pid, read_fd


def _run_forked(
    executor: ShardedExecutor,
    plan: Plan,
    dag: Dag,
    partition: PlanPartition,
    progs: Dict[str, _Prog],
    priority: Dict[str, float],
    jobs: List[Tuple[List[str], Set[str]]],
    done: Set[str],
    dead: Set[str],
) -> List[Dict[str, Any]]:
    """Run one wave's plane-group jobs in forked children.

    Children inherit the full plan/gateway via fork copy-on-write and
    stream a pickled outcome back over a pipe. Falls back to in-process
    sequential execution where ``fork`` is unavailable.
    """
    if not hasattr(os, "fork"):  # pragma: no cover - non-posix fallback
        return [
            _pool_job(executor, plan, dag, partition, progs, priority,
                      group, members, done, dead)
            for group, members in jobs
        ]
    procs: List[Tuple[int, int]] = []
    for group, members in jobs:
        procs.append(
            _fork_job(
                executor, plan, dag, partition, progs, priority,
                group, members, done, dead,
            )
        )
    outcomes: List[Dict[str, Any]] = []
    errors: List[str] = []
    for pid, read_fd in procs:
        with os.fdopen(read_fd, "rb") as src:
            payload = src.read()
        _, status = os.waitpid(pid, 0)
        if not payload:
            errors.append(f"worker {pid} died (status {status})")
            continue
        outcomes.append(pickle.loads(payload))
    if errors:
        raise RuntimeError("; ".join(errors))
    return outcomes


def _pool_job(
    executor: ShardedExecutor,
    plan: Plan,
    dag: Dag,
    partition: PlanPartition,
    progs: Dict[str, _Prog],
    priority: Dict[str, float],
    group: List[str],
    members: Set[str],
    done: Set[str],
    dead: Set[str],
) -> Dict[str, Any]:
    """One plane-group worker: run the interleaved loop over a subset
    and export a picklable outcome."""
    gateway = executor.gateway
    state = plan.state
    providers = sorted(
        {partition.shards[sid].provider for sid in group if partition.shards[sid].provider}
    )
    # fork-time baselines: the delta export ships only what this run
    # appended past these marks (tokens is insertion-ordered and only
    # ever grows, so a length is a cursor)
    plane_base = {
        provider: (
            gateway.planes[provider].log.next_cursor,
            len(gateway.planes[provider]._tokens),
        )
        for provider in providers
    }
    sub = ShardedApplyResult(
        started_at=gateway.clock.now, finished_at=gateway.clock.now, mode="pool"
    )
    executor._apply_interleaved(
        plan, dag, partition, progs, priority,
        wal=None, crash_hook=None,
        only=members, pre_done=done, pre_dead=dead, result=sub,
    )
    committed: List[ResourceState] = []
    removed: List[Any] = []
    dropped: List[str] = []
    for cid in sub.succeeded:
        p = progs.get(cid)
        if p is None:
            continue
        if p.change.action == Action.DELETE:
            removed.append(p.change.address)
            dropped.append(cid)
            continue
        entry = state.get(p.change.address)
        if entry is not None:
            committed.append(entry)
    published: Dict[str, List[str]] = {}
    for cid in sub.succeeded:
        p = progs.get(cid)
        if p is None:
            continue
        if any(s in progs and progs[s].shard != p.shard for s in p.succs):
            published.setdefault(p.shard, []).append(cid)
    return {
        "finished_at": sub.finished_at,
        "succeeded": sub.succeeded,
        "failed": sub.failed,
        "skipped": sub.skipped,
        "operations": sub.operations,
        "summaries": sub.shard_summaries,
        "barrier_waits": sub.barrier_waits,
        "entries": committed,
        "removed": removed,
        "overrides": {
            cid: plan.resolver.overrides[cid]
            for cid in sub.succeeded
            if cid in plan.resolver.overrides
        },
        "dropped": dropped,
        "planes": {
            provider: _export_plane_delta(
                gateway.planes[provider], *plane_base[provider]
            )
            for provider in providers
        },
        "tokens": {sid: partition.shards[sid].provider for sid in group},
        "published": published,
    }
