"""Porting non-IaC estates to IaC programs (paper 3.1)."""

from .emitter import (
    EmittedBlock,
    RawExpr,
    emit_block,
    emit_config,
    module_block,
    render_value,
    resource_block,
    variable_block,
)
from .importer import (
    NaiveExporter,
    PortedProject,
    StructuredImporter,
    enumerate_estate,
)
from .metrics import (
    FidelityResult,
    QualityMetrics,
    measure_quality,
    verify_fidelity,
)

__all__ = [
    "EmittedBlock",
    "FidelityResult",
    "NaiveExporter",
    "PortedProject",
    "QualityMetrics",
    "RawExpr",
    "StructuredImporter",
    "emit_block",
    "emit_config",
    "enumerate_estate",
    "measure_quality",
    "module_block",
    "render_value",
    "resource_block",
    "variable_block",
    "verify_fidelity",
]
