"""Code-quality metrics for ported IaC programs (3.1).

The paper asks: "how should we formally define and quantify these code
metrics?" -- where the objective is ease of understanding and
maintenance rather than just correctness. This module operationalizes a
metric suite over CLC sources:

* size (non-blank LoC, block count),
* compaction (resources represented per block),
* repetition (duplicate normalized attribute lines),
* hard-coded cloud ids (opaque strings a human cannot maintain),
* a composite maintainability score in [0, 100].

Plus a *fidelity* check: the ported program, planned against its own
generated state, must be a no-op.
"""

from __future__ import annotations

import dataclasses
import re
from collections import Counter
from typing import Dict, List, Optional

from ..lang.config import Configuration
from .importer import PortedProject

_ID_LITERAL_RE = re.compile(r'"(?:[a-z]+-)[0-9a-f]{6,}"')


@dataclasses.dataclass
class QualityMetrics:
    """Metric bundle for one ported project."""

    loc: int
    blocks: int
    resources_represented: int
    repetition: float  # 0..1, fraction of duplicated attribute lines
    hardcoded_ids: int
    reference_count: int
    module_count: int
    variable_count: int

    @property
    def compaction(self) -> float:
        """Resources per resource block (>1 means count/for_each/modules)."""
        if self.blocks == 0:
            return 0.0
        return self.resources_represented / self.blocks

    @property
    def maintainability(self) -> float:
        """Composite score in [0, 100]; higher is easier to maintain.

        Penalizes repetition and hard-coded ids, rewards compaction and
        reference wiring; weights chosen so a fully naive export of a
        repetitive estate lands well below a structured import.
        """
        score = 100.0
        score -= 45.0 * min(1.0, self.repetition)
        if self.resources_represented:
            score -= 35.0 * min(1.0, self.hardcoded_ids / self.resources_represented)
        score += 10.0 * min(1.0, max(0.0, self.compaction - 1.0))
        score += 5.0 * min(1.0, self.module_count / 3.0)
        return max(0.0, min(100.0, score))


def measure_quality(project: PortedProject) -> QualityMetrics:
    """Compute the metric suite over a ported project's sources."""
    texts = list(project.sources.values())
    for files in project.module_sources.values():
        texts.extend(files.values())
    all_text = "\n".join(texts)
    lines = [line for text in texts for line in text.splitlines()]
    nonblank = [line for line in lines if line.strip()]

    block_count = 0
    module_count = 0
    variable_count = 0
    for line in nonblank:
        stripped = line.strip()
        if re.match(r'^(resource|data)\s+"', stripped):
            block_count += 1
        elif stripped.startswith("module "):
            module_count += 1
        elif stripped.startswith("variable "):
            variable_count += 1

    attr_lines = [
        re.sub(r"\s+", " ", line.strip())
        for line in nonblank
        if "=" in line and not line.strip().startswith(("#", "//"))
    ]
    counts = Counter(attr_lines)
    duplicated = sum(c - 1 for c in counts.values() if c > 1)
    repetition = duplicated / len(attr_lines) if attr_lines else 0.0

    hardcoded = len(_ID_LITERAL_RE.findall(all_text))
    references = len(re.findall(r"=\s*\[?[a-z][a-z0-9_]*\.[a-z0-9_]+\.id", all_text))

    return QualityMetrics(
        loc=len(nonblank),
        blocks=block_count + module_count,
        resources_represented=len(project.state),
        repetition=repetition,
        hardcoded_ids=hardcoded,
        reference_count=references,
        module_count=module_count,
        variable_count=variable_count,
    )


@dataclasses.dataclass
class FidelityResult:
    """Round-trip verification of a ported project."""

    parses: bool
    plan_is_noop: bool
    planned_changes: Dict[str, int]
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.parses and self.plan_is_noop


def verify_fidelity(project: PortedProject) -> FidelityResult:
    """Parse the project and plan it against its own state.

    A faithful import produces an empty plan: the configuration
    describes exactly the estate the state says exists.
    """
    from ..graph.builder import build_graph
    from ..graph.plan import Planner
    from ..types.schema import SchemaRegistry

    try:
        config = Configuration.parse(project.sources)
        if config.diagnostics.has_errors():
            return FidelityResult(
                parses=False,
                plan_is_noop=False,
                planned_changes={},
                error=str(config.diagnostics.errors[0]),
            )
        graph = build_graph(config, loader=project.loader())
        registry = SchemaRegistry.default()
        planner = Planner(spec_lookup=registry.spec_for)
        plan = planner.plan(graph, project.state)
    except Exception as exc:
        return FidelityResult(
            parses=False, plan_is_noop=False, planned_changes={}, error=str(exc)
        )
    summary = plan.summary()
    return FidelityResult(
        parses=True,
        plan_is_noop=plan.is_empty,
        planned_changes=summary,
    )
