"""Porting existing cloud estates to IaC (3.1).

Two importers model the paper's contrast:

* :class:`NaiveExporter` -- Aztfy/Terraformer-style: one block per
  resource, every attribute dumped verbatim, references left as
  hard-coded cloud ids. Correct but unmaintainable.
* :class:`StructuredImporter` -- the cloudless program optimizer:
  resolves ids into references, prunes attributes the cloud filled with
  defaults, compacts repeated resources into ``count``/``for_each``,
  and extracts repeated infrastructure stacks into modules.

Both return a :class:`PortedProject`: config sources plus a matching
state document, so the import is immediately adoptable (a follow-up
plan is a no-op).
"""

from __future__ import annotations

import dataclasses
import re
from collections import defaultdict
from typing import Any, Dict, List, Optional, Set, Tuple

from ..addressing import ResourceAddress
from ..cloud.base import ResourceRecord
from ..cloud.gateway import CloudGateway
from ..cloud.resilience import ResilientGateway, RetryPolicy
from ..state.document import ResourceState, StateDocument
from ..types.schema import SchemaRegistry
from .emitter import (
    EmittedBlock,
    RawExpr,
    emit_config,
    module_block,
    resource_block,
    variable_block,
)

_NAME_INDEX_RE = re.compile(r"^(?P<prefix>.*?)[-_](?P<index>\d+)$")


def enumerate_estate(
    gateway: CloudGateway, retry: Optional[RetryPolicy] = None
) -> List[ResourceRecord]:
    """Enumerate the live estate through the paginated list API.

    Unlike ``gateway.all_records()`` -- an in-memory shortcut that costs
    no API calls and cannot fail -- this walks every provider's list
    endpoint page by page through the resilience layer, so an import
    run on a flaky control plane retries the faulted page (same token)
    and still sees the whole estate. Records are rebuilt from the list
    snapshots; ``created_at``/``updated_at`` are not part of the list
    response and read as the scan time.
    """
    resilient = ResilientGateway.wrap(gateway, retry=retry)
    records: List[ResourceRecord] = []
    for provider, plane in sorted(resilient.planes.items()):
        token: Any = 0
        while token is not None:
            page = resilient.execute_on(plane, "list", attrs={"page_token": token})
            regions = page.get("regions") or [""] * len(page["items"])
            for item, rtype, region in zip(page["items"], page["types"], regions):
                attrs = {k: v for k, v in item.items() if k != "id"}
                records.append(
                    ResourceRecord(
                        id=item["id"],
                        type=rtype,
                        region=region,
                        attrs=attrs,
                        created_at=resilient.clock.now,
                        updated_at=resilient.clock.now,
                    )
                )
            token = page["next_token"]
    return sorted(records, key=lambda r: r.id)


@dataclasses.dataclass
class PortedProject:
    """An imported estate: sources + adoptable state."""

    sources: Dict[str, str]
    module_sources: Dict[str, Dict[str, str]]  # module source -> files
    state: StateDocument

    @property
    def main_source(self) -> str:
        return self.sources.get("main.clc", "")

    def loader(self):
        from ..lang.module_loader import DictModuleLoader

        return DictModuleLoader(dict(self.module_sources))

    def total_loc(self) -> int:
        texts = list(self.sources.values())
        for files in self.module_sources.values():
            texts.extend(files.values())
        return sum(
            sum(1 for line in text.splitlines() if line.strip())
            for text in texts
        )


def _sanitize(name: str) -> str:
    out = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not out or out[0].isdigit():
        out = "r_" + out
    return out


class _RecordView:
    """One cloud record with pruned attrs and resolved reference info."""

    def __init__(self, record: ResourceRecord, registry: SchemaRegistry):
        self.record = record
        self.registry = registry
        spec = registry.spec_for(record.type)
        self.spec = spec
        self.pruned: Dict[str, Any] = {}
        self.ref_attrs: Dict[str, List[str]] = {}  # attr -> target ids
        for key, value in sorted(record.attrs.items()):
            if value is None:
                continue
            aspec = spec.attr(key) if spec else None
            if aspec is not None and aspec.computed:
                continue
            if aspec is not None and aspec.default is not None and value == aspec.default:
                continue  # the cloud filled this in; drop it (3.1)
            if aspec is not None and aspec.ref_target:
                targets = value if isinstance(value, list) else [value]
                self.ref_attrs[key] = [str(t) for t in targets]
            self.pruned[key] = value

    @property
    def id(self) -> str:
        return self.record.id

    @property
    def type(self) -> str:
        return self.record.type


class NaiveExporter:
    """Baseline: dump every resource as its own fully-literal block."""

    def __init__(self, registry: Optional[SchemaRegistry] = None):
        self.registry = registry or SchemaRegistry.default()

    def export(self, gateway: CloudGateway) -> PortedProject:
        records = sorted(gateway.all_records(), key=lambda r: r.id)
        blocks: List[EmittedBlock] = []
        state = StateDocument()
        used: Set[str] = set()
        for i, record in enumerate(records):
            spec = self.registry.spec_for(record.type)
            name = f"{record.type}_{i}"
            attrs = []
            for key, value in sorted(record.attrs.items()):
                aspec = spec.attr(key) if spec else None
                if aspec is not None and aspec.computed:
                    continue
                if value is None:
                    continue
                attrs.append((key, value))
            blocks.append(resource_block(record.type, name, attrs))
            address = ResourceAddress(type=record.type, name=name)
            state.set(
                ResourceState(
                    address=address,
                    resource_id=record.id,
                    provider=self.registry.provider_of(record.type),
                    attrs=record.snapshot(),
                    region=record.region,
                )
            )
        return PortedProject(
            sources={"main.clc": emit_config(blocks) if blocks else ""},
            module_sources={},
            state=state,
        )


class StructuredImporter:
    """The cloudless porting optimizer."""

    def __init__(
        self,
        registry: Optional[SchemaRegistry] = None,
        enable_grouping: bool = True,
        enable_modules: bool = True,
        min_group: int = 2,
        min_module_size: int = 3,
    ):
        self.registry = registry or SchemaRegistry.default()
        self.enable_grouping = enable_grouping
        self.enable_modules = enable_modules
        self.min_group = min_group
        self.min_module_size = min_module_size

    # -- entry point -----------------------------------------------------------

    def import_estate(
        self,
        gateway: CloudGateway,
        only_ids: Optional[Set[str]] = None,
        via_api: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> PortedProject:
        """Port the live estate (optionally restricted to ``only_ids``).

        The restriction powers 3.5's program *regeneration*: after
        drift is adopted, the managed estate's live cloud values are
        re-emitted as a fresh program + state pair.

        With ``via_api=True`` the estate is enumerated through the
        paginated list API behind the resilience layer (retrying
        transient faults page by page) instead of the zero-cost
        in-memory ``all_records()`` shortcut.
        """
        if via_api:
            records = enumerate_estate(gateway, retry=retry)
        else:
            records = sorted(gateway.all_records(), key=lambda r: r.id)
        if only_ids is not None:
            records = [r for r in records if r.id in only_ids]
        views = [_RecordView(r, self.registry) for r in records]
        by_id = {v.id: v for v in views}

        names = self._assign_names(views)
        module_plan: Dict[str, Tuple[str, str]] = {}  # record id -> (call, src)
        module_sources: Dict[str, Dict[str, str]] = {}
        blocks: List[EmittedBlock] = []
        state = StateDocument()

        remaining = list(views)
        if self.enable_modules:
            extracted, remaining, module_sources, module_state = (
                self._extract_modules(views, by_id, names)
            )
            blocks.extend(extracted)
            for entry in module_state:
                state.set(entry)

        groups: List[Tuple[str, List[_RecordView]]] = (
            self._detect_groups(remaining, by_id, names)
            if self.enable_grouping
            else [("single", [v]) for v in remaining]
        )
        # decide final expression text for every remaining record id
        expr_of: Dict[str, str] = {}
        group_names: Dict[int, str] = {}
        membership: Dict[str, Tuple[int, int]] = {}  # id -> (group idx, pos)
        for gi, (kind, group) in enumerate(groups):
            if kind == "single":
                view = group[0]
                expr_of[view.id] = f"{view.type}.{names[view.id]}"
                continue
            gname = self._group_name(group, names)
            group_names[gi] = gname
            for pos, view in enumerate(group):
                membership[view.id] = (gi, pos)
                if kind == "count":
                    expr_of[view.id] = f"{view.type}.{gname}[{pos}]"
                else:
                    key = view.record.name
                    expr_of[view.id] = f'{view.type}.{gname}["{key}"]'

        for gi, (kind, group) in enumerate(groups):
            if kind == "single":
                view = group[0]
                blocks.append(
                    self._single_block(view, names[view.id], expr_of, membership)
                )
                self._record_state(state, view, ResourceAddress(
                    type=view.type, name=names[view.id]
                ))
            elif kind == "count":
                gname = group_names[gi]
                blocks.append(
                    self._group_block(group, gname, expr_of, membership)
                )
                for pos, view in enumerate(group):
                    self._record_state(
                        state,
                        view,
                        ResourceAddress(
                            type=view.type, name=gname, instance_key=pos
                        ),
                    )
            else:  # for_each keyed by name
                gname = group_names[gi]
                blocks.append(
                    self._for_each_block(group, gname, expr_of, membership)
                )
                for view in group:
                    self._record_state(
                        state,
                        view,
                        ResourceAddress(
                            type=view.type,
                            name=gname,
                            instance_key=view.record.name,
                        ),
                    )

        blocks.sort(key=lambda b: (b.kind != "module", b.labels))
        return PortedProject(
            sources={"main.clc": emit_config(blocks) if blocks else ""},
            module_sources=module_sources,
            state=state,
        )

    # -- naming ----------------------------------------------------------------

    def _assign_names(self, views: List[_RecordView]) -> Dict[str, str]:
        names: Dict[str, str] = {}
        used: Set[Tuple[str, str]] = set()
        for view in views:
            base = _sanitize(str(view.record.attrs.get("name", view.id)))
            candidate = base
            n = 2
            while (view.type, candidate) in used:
                candidate = f"{base}_{n}"
                n += 1
            used.add((view.type, candidate))
            names[view.id] = candidate
        return names

    # -- attribute rendering -------------------------------------------------------

    def _render_attrs(
        self,
        view: _RecordView,
        expr_of: Dict[str, str],
        membership: Dict[str, Tuple[int, int]],
        override: Optional[Dict[str, Any]] = None,
    ) -> List[Tuple[str, Any]]:
        out: List[Tuple[str, Any]] = []
        for key in sorted(view.pruned):
            if override and key in override:
                out.append((key, override[key]))
                continue
            value = view.pruned[key]
            if key in view.ref_attrs:
                exprs = [
                    RawExpr(f"{expr_of.get(t, repr(t))}.id")
                    if t in expr_of
                    else t
                    for t in view.ref_attrs[key]
                ]
                out.append((key, exprs if isinstance(value, list) else exprs[0]))
            else:
                out.append((key, value))
        return out

    def _single_block(
        self,
        view: _RecordView,
        name: str,
        expr_of: Dict[str, str],
        membership: Dict[str, Tuple[int, int]],
    ) -> EmittedBlock:
        return resource_block(
            view.type, name, self._render_attrs(view, expr_of, membership)
        )

    # -- count/for_each compaction -----------------------------------------------

    def _detect_groups(
        self,
        views: List[_RecordView],
        by_id: Dict[str, "_RecordView"],
        names: Dict[str, str],
    ) -> List[Tuple[str, List[_RecordView]]]:
        """Group records into count/for_each blocks, to a fixpoint.

        A bucket of same-shaped records becomes a **count** block when
        names follow ``prefix-<0..n-1>`` and every varying attribute is
        a plain scalar (``element([...], count.index)`` / detected
        ``cidrsubnet`` ladder) or a reference whose member-i target is
        member i of an already-grouped count bucket -- hence the
        fixpoint loop: subnets group first, then the NICs pointing at
        them, then the VMs.

        Buckets that cannot count-group but share a shape with distinct
        names, constant references, and scalar-only variation become a
        **for_each** block keyed by name. Everything else stays single.
        """
        buckets: Dict[Tuple, List[_RecordView]] = defaultdict(list)
        for view in views:
            buckets[(view.type, tuple(sorted(view.pruned)))].append(view)

        candidates: Dict[Tuple, List[_RecordView]] = {}
        leftovers: List[List[_RecordView]] = []  # for_each candidates
        singles: List[_RecordView] = []
        bucket_of: Dict[str, Tuple] = {}
        for signature, members in buckets.items():
            ordered = self._ordered_by_name_index(members)
            if len(members) < self.min_group:
                singles.extend(members)
                continue
            if ordered is None:
                leftovers.append(members)
                continue
            candidates[signature] = ordered
            for view in ordered:
                bucket_of[view.id] = signature

        decided: Dict[Tuple, List[_RecordView]] = {}
        membership: Dict[str, Tuple[Tuple, int]] = {}
        pending = dict(candidates)
        while pending:
            progress = False
            for signature in sorted(pending, key=str):
                verdict = self._try_group(
                    pending[signature], by_id, bucket_of, membership, pending
                )
                if verdict == "defer":
                    continue
                ordered = pending.pop(signature)
                progress = True
                if verdict == "ok":
                    decided[signature] = ordered
                    for pos, view in enumerate(ordered):
                        membership[view.id] = (signature, pos)
                else:
                    leftovers.append(ordered)
                break
            if not progress:
                for signature in sorted(pending, key=str):
                    leftovers.append(pending[signature])
                break

        groups: List[Tuple[str, List[_RecordView]]] = []
        for members in leftovers:
            if self._for_each_eligible(members):
                groups.append(
                    ("for_each", sorted(members, key=lambda v: v.record.name))
                )
            else:
                singles.extend(members)
        groups.extend(("single", [v]) for v in singles)
        groups.extend(("count", decided[s]) for s in sorted(decided, key=str))
        groups.sort(key=lambda g: g[1][0].id)
        return groups

    def _for_each_eligible(self, members: List[_RecordView]) -> bool:
        """Same shape, distinct string names, constant refs, scalar
        variation only -- expressible as for_each keyed by name."""
        if len(members) < self.min_group:
            return False
        head = members[0]
        names_seen = set()
        for view in members:
            name = view.record.attrs.get("name")
            if not isinstance(name, str) or name in names_seen:
                return False
            names_seen.add(name)
        for key in sorted(head.pruned):
            if key == "name":
                continue
            values = [v.pruned.get(key) for v in members]
            if all(values[0] == v for v in values):
                continue
            if key in head.ref_attrs:
                return False  # varying refs cannot key-align by name
            if not all(isinstance(v, (str, int, float, bool)) for v in values):
                return False
        return True

    def _ordered_by_name_index(
        self, members: List[_RecordView]
    ) -> Optional[List[_RecordView]]:
        """Members sorted by name index, if names are prefix-0..n-1."""
        indexed: List[Tuple[int, _RecordView]] = []
        prefixes = set()
        for view in members:
            name = str(view.record.attrs.get("name", ""))
            match = _NAME_INDEX_RE.match(name)
            if not match:
                return None
            indexed.append((int(match.group("index")), view))
            prefixes.add(match.group("prefix"))
        indexed.sort()
        if len(prefixes) != 1:
            return None
        if [i for i, _ in indexed] != list(range(len(indexed))):
            return None
        return [v for _, v in indexed]

    def _try_group(
        self,
        ordered: List[_RecordView],
        by_id: Dict[str, "_RecordView"],
        bucket_of: Dict[str, Tuple],
        membership: Dict[str, Tuple[Tuple, int]],
        pending: Dict[Tuple, List[_RecordView]],
    ) -> str:
        """'ok' | 'fail' | 'defer' (a target bucket is still undecided)."""
        head = ordered[0]
        for key in sorted(head.pruned):
            if key == "name":
                continue
            values = [v.pruned.get(key) for v in ordered]
            if all(values[0] == v for v in values):
                continue
            if key not in head.ref_attrs:
                if all(isinstance(v, (str, int, float, bool)) for v in values):
                    continue  # element([...], count.index)
                return "fail"
            verdict = self._check_aligned_refs(
                ordered, key, by_id, bucket_of, membership, pending
            )
            if verdict != "ok":
                return verdict
        return "ok"

    def _check_aligned_refs(
        self,
        ordered: List[_RecordView],
        key: str,
        by_id: Dict[str, "_RecordView"],
        bucket_of: Dict[str, Tuple],
        membership: Dict[str, Tuple[Tuple, int]],
        pending: Dict[Tuple, List[_RecordView]],
    ) -> str:
        target_bucket: Optional[Tuple] = None
        for i, view in enumerate(ordered):
            targets = view.ref_attrs.get(key, [])
            if len(targets) != 1:
                return "fail"
            target_id = targets[0]
            if target_id in membership:
                bucket, pos = membership[target_id]
                if pos != i:
                    return "fail"
                if target_bucket is None:
                    target_bucket = bucket
                elif target_bucket != bucket:
                    return "fail"
                continue
            if bucket_of.get(target_id) in pending:
                return "defer"
            return "fail"
        return "ok"

    def _group_name(
        self, group: List[_RecordView], names: Dict[str, str]
    ) -> str:
        name = str(group[0].record.attrs.get("name", group[0].id))
        match = _NAME_INDEX_RE.match(name)
        if match:
            return _sanitize(match.group("prefix"))
        # for_each groups: longest common name prefix, else the type
        import os

        common = os.path.commonprefix(
            [str(v.record.attrs.get("name", "")) for v in group]
        ).strip("-_")
        if len(common) >= 3:
            return _sanitize(common)
        return _sanitize(group[0].type.split("_", 1)[-1])

    def _group_block(
        self,
        group: List[_RecordView],
        gname: str,
        expr_of: Dict[str, str],
        membership: Dict[str, Tuple[int, int]],
    ) -> EmittedBlock:
        head = group[0]
        name = str(head.record.attrs.get("name", ""))
        match = _NAME_INDEX_RE.match(name)
        assert match is not None
        prefix = match.group("prefix")
        sep = name[len(prefix)] if len(name) > len(prefix) else "-"
        override: Dict[str, Any] = {
            "name": RawExpr(f'"{prefix}{sep}${{count.index}}"')
        }
        for key in sorted(head.pruned):
            if key == "name":
                continue
            values = [v.pruned.get(key) for v in group]
            if all(values[0] == v for v in values):
                continue
            if key in head.ref_attrs:
                # index-aligned reference: rewrite through count.index
                target_id = head.ref_attrs[key][0]
                target_expr = expr_of.get(target_id, "")
                base = re.sub(r"\[\d+\]$", "", target_expr)
                ref = RawExpr(f"{base}[count.index].id")
                override[key] = (
                    [ref] if isinstance(head.pruned[key], list) else ref
                )
                continue
            override[key] = self._varying_scalar_expr(values)
        attrs = self._render_attrs(head, expr_of, membership, override)
        return resource_block(
            head.type, gname, attrs, count=len(group)
        )

    def _varying_scalar_expr(self, values: List[Any]) -> RawExpr:
        """Render an index-varying scalar: cidrsubnet if the values form
        a contiguous subnet ladder, element([...]) otherwise."""
        pattern = self._cidr_ladder(values)
        if pattern is not None:
            base, newbits = pattern
            return RawExpr(f'cidrsubnet("{base}", {newbits}, count.index)')
        from .emitter import render_value

        rendered = ", ".join(render_value(v) for v in values)
        return RawExpr(f"element([{rendered}], count.index)")

    def _cidr_ladder(self, values: List[Any]) -> Optional[Tuple[str, int]]:
        """Detect values == cidrsubnet(base, nb, i) for i = 0..n-1."""
        import ipaddress

        try:
            nets = [ipaddress.ip_network(str(v), strict=True) for v in values]
        except ValueError:
            return None
        prefixlen = nets[0].prefixlen
        if any(n.prefixlen != prefixlen for n in nets):
            return None
        step = 2 ** (nets[0].max_prefixlen - prefixlen)
        first = int(nets[0].network_address)
        for i, net in enumerate(nets):
            if int(net.network_address) != first + i * step:
                return None
        min_bits = max(1, (len(values) - 1).bit_length())
        for newbits in (8, min_bits):
            base_prefix = prefixlen - newbits
            if base_prefix < 0:
                continue
            base = ipaddress.ip_network((first, base_prefix), strict=False)
            if int(base.network_address) == first and 2**newbits >= len(values):
                return str(base), newbits
        return None

    def _for_each_block(
        self,
        group: List[_RecordView],
        gname: str,
        expr_of: Dict[str, str],
        membership: Dict[str, Tuple[int, int]],
    ) -> EmittedBlock:
        head = group[0]
        varying = [
            key
            for key in sorted(head.pruned)
            if key != "name"
            and any(v.pruned.get(key) != head.pruned.get(key) for v in group)
        ]
        override: Dict[str, Any] = {"name": RawExpr("each.key")}
        if varying:
            for_each_value: Any = {
                v.record.name: {key: v.pruned.get(key) for key in varying}
                for v in group
            }
            for key in varying:
                override[key] = RawExpr(f"each.value.{key}")
        else:
            for_each_value = [v.record.name for v in group]
        attrs = self._render_attrs(head, expr_of, membership, override)
        return resource_block(
            head.type, gname, attrs, for_each=for_each_value
        )

    # -- module extraction -----------------------------------------------------------

    def _extract_modules(
        self,
        views: List[_RecordView],
        by_id: Dict[str, "_RecordView"],
        names: Dict[str, str],
    ):
        components = self._components(views, by_id)
        signatures: Dict[Tuple, List[List[_RecordView]]] = defaultdict(list)
        for component in components:
            signature = self._component_signature(component, by_id)
            if signature is not None:
                signatures[signature].append(component)
        module_blocks: List[EmittedBlock] = []
        module_sources: Dict[str, Dict[str, str]] = {}
        module_state: List[ResourceState] = []
        consumed: Set[str] = set()
        module_index = 0
        for signature, comps in sorted(signatures.items(), key=lambda kv: str(kv[0])):
            if len(comps) < 2 or len(comps[0]) < self.min_module_size:
                continue
            module_index += 1
            mname = f"stack_{module_index}"
            source = f"./modules/{mname}"
            blocks, calls, entries = self._emit_module(
                mname, source, comps, by_id
            )
            module_sources[source] = {"main.clc": blocks}
            module_blocks.extend(calls)
            module_state.extend(entries)
            for component in comps:
                consumed |= {v.id for v in component}
        remaining = [v for v in views if v.id not in consumed]
        return module_blocks, remaining, module_sources, module_state

    def _components(
        self, views: List[_RecordView], by_id: Dict[str, "_RecordView"]
    ) -> List[List[_RecordView]]:
        parent: Dict[str, str] = {v.id: v.id for v in views}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for view in views:
            for targets in view.ref_attrs.values():
                for target in targets:
                    if target in parent:
                        union(view.id, target)
        comps: Dict[str, List[_RecordView]] = defaultdict(list)
        for view in views:
            comps[find(view.id)].append(view)
        return [
            sorted(c, key=lambda v: (v.type, v.id))
            for c in sorted(comps.values(), key=lambda c: c[0].id)
        ]

    def _component_signature(
        self, component: List[_RecordView], by_id: Dict[str, "_RecordView"]
    ) -> Optional[Tuple]:
        """Canonical shape; None if types repeat (mapping ambiguous)."""
        types = [v.type for v in component]
        if len(set(types)) != len(types):
            return None
        type_of = {v.id: v.type for v in component}
        shape = []
        for view in component:
            edges = []
            for attr, targets in sorted(view.ref_attrs.items()):
                for target in targets:
                    if target in type_of:
                        edges.append((attr, type_of[target]))
                    else:
                        edges.append((attr, "<external>"))
            shape.append((view.type, tuple(sorted(view.pruned)), tuple(sorted(edges))))
        return tuple(sorted(shape))

    def _emit_module(
        self,
        mname: str,
        source: str,
        comps: List[List[_RecordView]],
        by_id: Dict[str, "_RecordView"],
    ):
        """Render the module definition, its calls, and state entries."""
        template = comps[0]
        local_name = {v.type: _sanitize(v.type.split("_", 1)[-1]) for v in template}
        by_type = [
            {v.type: v for v in comp} for comp in comps
        ]
        # which (type, attr) vary across component instances?
        variables: List[Tuple[str, str]] = []  # (type, attr)
        for view in template:
            for key in sorted(view.pruned):
                if key in view.ref_attrs:
                    internal = all(
                        t in {x.id for x in template}
                        for t in view.ref_attrs[key]
                    )
                    if internal:
                        continue
                    variables.append((view.type, key))
                    continue
                values = [
                    by_type[i][view.type].pruned.get(key)
                    for i in range(len(comps))
                ]
                if any(values[0] != v for v in values):
                    variables.append((view.type, key))
        var_name = {
            (rtype, attr): f"{local_name[rtype]}_{attr}" for rtype, attr in variables
        }

        # module body
        body_blocks: List[EmittedBlock] = []
        for rtype, attr in variables:
            body_blocks.append(variable_block(var_name[(rtype, attr)]))
        template_ids = {v.id for v in template}
        for view in template:
            attrs: List[Tuple[str, Any]] = []
            for key in sorted(view.pruned):
                if (view.type, key) in var_name:
                    attrs.append((key, RawExpr(f"var.{var_name[(view.type, key)]}")))
                elif key in view.ref_attrs:
                    exprs = []
                    for target in view.ref_attrs[key]:
                        tview = by_id[target]
                        exprs.append(
                            RawExpr(
                                f"{tview.type}.{local_name[tview.type]}.id"
                            )
                        )
                    attrs.append(
                        (key, exprs if isinstance(view.pruned[key], list) else exprs[0])
                    )
                else:
                    attrs.append((key, view.pruned[key]))
            body_blocks.append(
                resource_block(view.type, local_name[view.type], attrs)
            )
        module_text = emit_config(body_blocks)

        # calls + state
        calls: List[EmittedBlock] = []
        entries: List[ResourceState] = []
        for i, comp in enumerate(comps):
            call_name = f"{mname}_{i}"
            args: List[Tuple[str, Any]] = []
            for rtype, attr in variables:
                view = by_type[i][rtype]
                value = view.pruned.get(attr)
                if attr in view.ref_attrs:
                    # external reference: pass the raw id (cannot resolve
                    # outside knowledge here); kept literal
                    args.append((var_name[(rtype, attr)], value))
                else:
                    args.append((var_name[(rtype, attr)], value))
            calls.append(module_block(call_name, source, args))
            for view in comp:
                entries.append(
                    ResourceState(
                        address=ResourceAddress(
                            type=view.type,
                            name=local_name[view.type],
                            module_path=(call_name,),
                        ),
                        resource_id=view.id,
                        provider=self.registry.provider_of(view.type),
                        attrs=view.record.snapshot(),
                        region=view.record.region,
                    )
                )
        return module_text, calls, entries

    # -- state helper -----------------------------------------------------------------

    def _record_state(
        self, state: StateDocument, view: _RecordView, address: ResourceAddress
    ) -> None:
        state.set(
            ResourceState(
                address=address,
                resource_id=view.id,
                provider=self.registry.provider_of(view.type),
                attrs=view.record.snapshot(),
                region=view.record.region,
            )
        )
