"""CLC source emission.

Renders configuration blocks back to CLC text -- the output side of the
porting pipeline (3.1) and of drift-driven config regeneration (3.5).
Values are plain Python data; :class:`RawExpr` wraps expression text
(references, function calls) that must be emitted verbatim.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple, Union


@dataclasses.dataclass(frozen=True)
class RawExpr:
    """Verbatim CLC expression text (not a quoted string)."""

    text: str

    def __str__(self) -> str:
        return self.text


Value = Union[None, bool, int, float, str, list, dict, RawExpr]


def render_value(value: Value, indent: int = 0) -> str:
    """Render one attribute value as CLC expression text."""
    pad = "  " * indent
    if isinstance(value, RawExpr):
        return value.text
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value, ensure_ascii=False)
    if isinstance(value, list):
        if not value:
            return "[]"
        inner = ", ".join(render_value(v, indent) for v in value)
        if len(inner) <= 70:
            return f"[{inner}]"
        lines = ",\n".join(
            f"{pad}  {render_value(v, indent + 1)}" for v in value
        )
        return f"[\n{lines}\n{pad}]"
    if isinstance(value, dict):
        if not value:
            return "{}"
        lines = "\n".join(
            f"{pad}  {_render_key(k)} = {render_value(v, indent + 1)}"
            for k, v in value.items()
        )
        return f"{{\n{lines}\n{pad}}}"
    raise TypeError(f"cannot render {type(value).__name__} as CLC")


def _render_key(key: str) -> str:
    if key.isidentifier():
        return key
    return json.dumps(key, ensure_ascii=False)


@dataclasses.dataclass
class EmittedBlock:
    """One top-level block ready for rendering."""

    kind: str  # resource | data | variable | output | module | locals
    labels: List[str]
    attrs: "OrderedAttrs"
    comment: str = ""


OrderedAttrs = List[Tuple[str, Value]]


def emit_block(block: EmittedBlock) -> str:
    """Render one block with aligned attribute assignment."""
    labels = " ".join(json.dumps(l) for l in block.labels)
    header = f"{block.kind} {labels}".rstrip() + " {"
    lines: List[str] = []
    if block.comment:
        lines.append(f"# {block.comment}")
    lines.append(header)
    attrs = [(k, v) for k, v in block.attrs if v is not None or True]
    width = max((len(k) for k, _ in attrs), default=0)
    for key, value in attrs:
        rendered = render_value(value, indent=1)
        lines.append(f"  {key:<{width}} = {rendered}")
    lines.append("}")
    return "\n".join(lines)


def emit_config(blocks: List[EmittedBlock]) -> str:
    """Render a whole file."""
    return "\n\n".join(emit_block(b) for b in blocks) + "\n"


def resource_block(
    rtype: str,
    name: str,
    attrs: OrderedAttrs,
    count: Optional[Value] = None,
    for_each: Optional[Value] = None,
    comment: str = "",
) -> EmittedBlock:
    """Build a resource block, meta-arguments first."""
    ordered: OrderedAttrs = []
    if count is not None:
        ordered.append(("count", count))
    if for_each is not None:
        ordered.append(("for_each", for_each))
    ordered.extend(attrs)
    return EmittedBlock(
        kind="resource", labels=[rtype, name], attrs=ordered, comment=comment
    )


def variable_block(name: str, default: Value = None, vtype: str = "") -> EmittedBlock:
    attrs: OrderedAttrs = []
    if vtype:
        attrs.append(("type", RawExpr(vtype)))
    if default is not None:
        attrs.append(("default", default))
    return EmittedBlock(kind="variable", labels=[name], attrs=attrs)


def module_block(name: str, source: str, args: OrderedAttrs) -> EmittedBlock:
    attrs: OrderedAttrs = [("source", source)]
    attrs.extend(args)
    return EmittedBlock(kind="module", labels=[name], attrs=attrs)
