"""Drift detection and reconciliation (paper 3.5)."""

from .detector import (
    DetectionRun,
    DriftFinding,
    FullScanDetector,
    LogWatchDetector,
)
from .reconcile import (
    ADOPT,
    ENFORCE,
    NOTIFY,
    ReconcileInterrupted,
    ReconcileReport,
    Reconciler,
)

__all__ = [
    "ADOPT",
    "DetectionRun",
    "DriftFinding",
    "ENFORCE",
    "FullScanDetector",
    "LogWatchDetector",
    "NOTIFY",
    "ReconcileInterrupted",
    "ReconcileReport",
    "Reconciler",
]
