"""Drift detection and reconciliation (paper 3.5)."""

from .detector import (
    DetectionRun,
    DriftFinding,
    FullScanDetector,
    LogWatchDetector,
)
from .reconcile import (
    ADOPT,
    ENFORCE,
    NOTIFY,
    ReconcileInterrupted,
    ReconcileReport,
    Reconciler,
)
from .watcher import (
    DEFER_DARK,
    DriftWatcher,
    ReconcileDecision,
    WatchCursorStore,
    WatchCycle,
    classify_defect,
)

__all__ = [
    "ADOPT",
    "DEFER_DARK",
    "DetectionRun",
    "DriftFinding",
    "DriftWatcher",
    "ENFORCE",
    "FullScanDetector",
    "LogWatchDetector",
    "NOTIFY",
    "ReconcileDecision",
    "ReconcileInterrupted",
    "ReconcileReport",
    "Reconciler",
    "WatchCursorStore",
    "WatchCycle",
    "classify_defect",
]
