"""Drift reconciliation (3.5).

Once drift is detected the framework "should either regenerate the
IaC-level program to reflect the latest deployment, or notify
corresponding parties". The :class:`Reconciler` supports both, per
drift kind:

* ``enforce`` -- push the cloud back to the golden state;
* ``adopt``   -- accept the cloud's version into state (and flag the
  configuration for regeneration);
* ``notify``  -- surface the finding to humans, touch nothing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..cloud.base import CloudAPIError
from ..cloud.gateway import CloudGateway
from ..cloud.resilience import ResilientGateway, RetryPolicy
from ..state.document import ResourceState, StateDocument
from .detector import DriftFinding

ENFORCE = "enforce"
ADOPT = "adopt"
NOTIFY = "notify"


class ReconcileInterrupted(CloudAPIError):
    """A multi-step repair was cut mid-sequence.

    State has been checkpointed after the last successful cloud call,
    so re-running detection + reconciliation resumes cleanly (the
    half-replaced resource surfaces as a ``deleted`` finding).
    """

    def __init__(self, message: str, cause: CloudAPIError):
        super().__init__(
            "ReconcileInterrupted",
            message,
            http_status=cause.http_status,
            resource_type=cause.resource_type,
            operation=cause.operation,
        )
        self.cause = cause


@dataclasses.dataclass
class ReconcileAction:
    finding: DriftFinding
    policy: str
    performed: str  # human-readable description of what happened
    ok: bool = True
    #: the repair was cut mid-sequence with state checkpointed -- a
    #: later detect+reconcile pass (or the watcher's retry queue)
    #: resumes it
    interrupted: bool = False


@dataclasses.dataclass
class ReconcileReport:
    actions: List[ReconcileAction]
    notifications: List[str]
    api_calls: int
    #: precise resumable work: repairs interrupted mid-sequence (state
    #: checkpointed; a fresh detect+reconcile pass picks them up)
    remainder: List[str] = dataclasses.field(default_factory=list)

    def count(self, policy: str) -> int:
        return sum(1 for a in self.actions if a.policy == policy)

    @property
    def ok(self) -> bool:
        return all(a.ok for a in self.actions)


class Reconciler:
    """Applies a per-kind reconciliation policy to drift findings.

    Every cloud call goes through the resilience layer: transient and
    throttled faults are retried with backoff, and the delete->create
    replacement path checkpoints state between steps so a terminal
    mid-sequence fault never leaves state pointing at a dead resource.
    """

    def __init__(
        self,
        gateway: CloudGateway,
        policy: Optional[Dict[str, str]] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.gateway = ResilientGateway.wrap(gateway, retry=retry)
        self.policy = {
            "modified": ENFORCE,
            "deleted": ENFORCE,
            "unmanaged": NOTIFY,
        }
        if policy:
            self.policy.update(policy)

    def reconcile(
        self, findings: List[DriftFinding], state: StateDocument
    ) -> ReconcileReport:
        calls_before = self.gateway.total_api_calls()
        actions: List[ReconcileAction] = []
        notifications: List[str] = []
        remainder: List[str] = []
        for finding in findings:
            policy = self.policy.get(finding.kind, NOTIFY)
            action = self.reconcile_one(finding, state, policy=policy)
            actions.append(action)
            if action.policy == NOTIFY:
                notifications.append(
                    f"drift[{finding.kind}] {finding.resource_type} "
                    f"{finding.resource_id}"
                    + (f" by {finding.actor}" if finding.actor else "")
                )
            elif action.interrupted:
                remainder.append(action.performed)
        return ReconcileReport(
            actions=actions,
            notifications=notifications,
            api_calls=self.gateway.total_api_calls() - calls_before,
            remainder=remainder,
        )

    def reconcile_one(
        self,
        finding: DriftFinding,
        state: StateDocument,
        policy: Optional[str] = None,
    ) -> ReconcileAction:
        """Repair a single finding -- the incremental entry point the
        event-driven watcher uses as findings arrive, one at a time.

        Never raises for cloud-side failures: interruptions and
        terminal faults come back as a not-``ok`` action (with
        ``interrupted`` set when state was checkpointed mid-repair and
        a later pass can resume)."""
        if policy is None:
            policy = self.policy.get(finding.kind, NOTIFY)
        if policy == NOTIFY:
            return ReconcileAction(finding, NOTIFY, "notified operators")
        try:
            return ReconcileAction(
                finding, policy, self._apply(finding, policy, state)
            )
        except ReconcileInterrupted as exc:
            return ReconcileAction(
                finding, policy, exc.message, ok=False, interrupted=True
            )
        except CloudAPIError as exc:
            return ReconcileAction(finding, policy, str(exc), ok=False)

    def _entry_for(
        self, finding: DriftFinding, state: StateDocument
    ) -> Optional[ResourceState]:
        """The state entry a finding refers to -- by address when the
        detector resolved one (robust across interrupted replacements,
        whose entries carry an empty resource id), else by id."""
        if finding.address is not None:
            entry = state.get(finding.address)
            if entry is not None:
                return entry
        return state.by_resource_id(finding.resource_id)

    def _apply(
        self, finding: DriftFinding, policy: str, state: StateDocument
    ) -> str:
        if finding.kind == "modified":
            entry = self._entry_for(finding, state)
            if entry is None:
                return "no state entry; nothing to do"
            if policy == ENFORCE:
                rtype = entry.address.type
                updatable, immutable = self._split_drift(entry, finding)
                if immutable:
                    # the drifted attribute cannot change in place; the
                    # only way back to golden state is replacement
                    old_id = entry.resource_id
                    self.gateway.execute(
                        "delete", rtype, resource_id=entry.resource_id
                    )
                    # checkpoint: the old resource is gone -- state must
                    # say so *before* the create is attempted, or a
                    # create fault strands a dead id in golden state
                    entry = entry.replace(resource_id="")
                    state.set(entry)
                    state.bump()
                    payload = self._settable_attrs(entry)
                    region = entry.region or self.gateway.default_region(rtype)
                    try:
                        response = self.gateway.execute(
                            "create", rtype, attrs=payload, region=region
                        )
                    except CloudAPIError as exc:
                        raise ReconcileInterrupted(
                            f"replacement of {entry.address} interrupted: "
                            f"deleted {old_id} but create failed "
                            f"({exc.code}); re-run reconcile to resume",
                            exc,
                        ) from exc
                    state.set(
                        entry.replace(
                            resource_id=response["id"], attrs=dict(response)
                        )
                    )
                    return (
                        "recreated resource (drift on immutable attrs: "
                        + ", ".join(immutable)
                        + ")"
                    )
                if not updatable:
                    return "drift already matches golden state"
                response = self.gateway.execute(
                    "update",
                    rtype,
                    resource_id=entry.resource_id,
                    attrs=updatable,
                )
                state.set(entry.replace(attrs=dict(response)))
                return "reset cloud attributes to golden state"
            # adopt: pull the cloud's version into state
            live = self.gateway.find_record(finding.resource_id)
            if live is not None:
                state.set(entry.replace(attrs=live.snapshot()))
            return "adopted cloud attributes into state"
        if finding.kind == "deleted":
            entry = self._entry_for(finding, state)
            if entry is None:
                return "no state entry; nothing to do"
            if policy == ENFORCE:
                payload = self._settable_attrs(entry)
                region = entry.region or self.gateway.default_region(
                    entry.address.type
                )
                response = self.gateway.execute(
                    "create", entry.address.type, attrs=payload, region=region
                )
                state.set(
                    ResourceState(
                        address=entry.address,
                        resource_id=response["id"],
                        provider=entry.provider,
                        attrs=dict(response),
                        region=region,
                    )
                )
                return "recreated deleted resource"
            state.remove(entry.address)
            return "removed deleted resource from state"
        if finding.kind == "unmanaged" and policy == ADOPT:
            if finding.address is not None:
                # the caller knows where this resource belongs (crash
                # recovery resolves the address from the WAL intent):
                # adopt it into state under that address
                live = self.gateway.find_record(finding.resource_id)
                if live is None:
                    return "resource vanished before adoption; nothing to do"
                provider = self.gateway.provider_of(live.type)
                state.set(
                    ResourceState(
                        address=finding.address,
                        resource_id=live.id,
                        provider=provider,
                        attrs=live.snapshot(),
                        region=live.region,
                        created_at=live.created_at,
                        updated_at=live.updated_at,
                    )
                )
                return f"adopted orphaned resource {live.id} into state"
            return "flagged for import into configuration"
        return "no action"

    def _split_drift(self, entry: ResourceState, finding: DriftFinding):
        """Golden values for the drifted attrs: (updatable, immutable)."""
        spec = self.gateway.try_spec(entry.address.type)
        live = self.gateway.find_record(entry.resource_id)
        changed = list(finding.changed_attrs)
        if not changed and live is not None:
            changed = sorted(
                key
                for key in set(entry.attrs) | set(live.attrs)
                if entry.attrs.get(key) != live.attrs.get(key)
            )
        updatable: Dict[str, object] = {}
        immutable: List[str] = []
        for attr in changed:
            golden = entry.attrs.get(attr)
            if live is not None and live.attrs.get(attr) == golden:
                continue  # already matches
            if spec is not None:
                aspec = spec.attr(attr)
                if aspec is None or aspec.computed:
                    continue
                if attr in spec.immutable_attrs or aspec.forces_replacement:
                    immutable.append(attr)
                    continue
                # golden None means the attr was never set: enforce
                # resets it (an out-of-band `ingress_rules` opened on a
                # firewall must close again, not survive as un-enforceable)
                updatable[attr] = golden
            elif golden is not None:
                updatable[attr] = golden
        return updatable, immutable

    def _settable_attrs(self, entry: ResourceState) -> Dict[str, object]:
        spec = self.gateway.try_spec(entry.address.type)
        out = {}
        for key, value in entry.attrs.items():
            if value is None:
                continue
            if spec is not None:
                aspec = spec.attr(key)
                if aspec is None or aspec.computed:
                    continue
            elif key == "id":
                continue
            out[key] = value
        return out
