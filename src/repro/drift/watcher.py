"""Event-driven continuous reconciliation (the paper's 3.5, done right).

:class:`DriftWatcher` replaces periodic :class:`FullScanDetector`
sweeps with cursor-based tailing of each provider plane's activity log
-- the push-based drift handling the paper advocates:

* **durable cursors** -- per-partition cursors are event *sequence
  numbers* checkpointed through :class:`JournalStateStore`, so a
  restarted watcher resumes where it stopped instead of replaying (or
  worse, re-repairing) the whole log;
* **bounded staleness** -- every partition carries an observation lag;
  a partition unobserved for longer than ``max_lag_s`` (outage, open
  breaker) is reported stale, and lags surface as ``drift.*`` perf
  counters;
* **event coalescing** -- N raw log events against one resource
  collapse into a single finding (the union of changed attributes, or
  the terminal delete), so reconcile cost tracks *drifted resources*,
  not event volume;
* **auto-reconcile** -- each finding is classified through a
  reconcile-decision taxonomy (``enforce`` / ``adopt`` / ``notify`` /
  ``defer-dark``, after the agent-policy split in arxiv 2510.20211) and
  driven through :class:`Reconciler` incrementally as events arrive.
  Findings behind a dark partition (status-page outage or open circuit
  breaker, PR 5's horizons) are deferred, not dropped, and re-admitted
  once the horizon passes. Every decision also carries a defect class
  from the IaC defect taxonomy of arxiv 2505.01568, so repair activity
  can be scored against the defect mix it addressed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from ..cloud.activitylog import ActivityEvent
from ..cloud.gateway import CloudGateway
from ..cloud.resilience import HealthMonitor, ResilientGateway, RetryPolicy
from ..lang.values import values_equal
from ..perf import PERF
from ..state.document import StateDocument
from ..state.store import JournalStateStore
from .detector import DetectionRun, DriftFinding, LogWatchDetector
from .reconcile import (
    ADOPT,
    ENFORCE,
    NOTIFY,
    ReconcileAction,
    ReconcileReport,
    Reconciler,
)

#: fourth reconcile decision, beyond the Reconciler's enforce/adopt/
#: notify: the finding's partition is dark -- repair is *deferred* to
#: the partition's recovery horizon, never attempted into an outage
DEFER_DARK = "defer-dark"

#: attribute-name hints that lift a modification from plain
#: configuration drift into the security bucket of the defect taxonomy
_SECURITY_HINTS = (
    "public",
    "policy",
    "role",
    "password",
    "secret",
    "key",
    "cidr",
    "ingress",
    "egress",
    "firewall",
    "acl",
    "encrypt",
)

_CAPACITY_ATTRS = ("size", "instance_count", "capacity", "sku", "tier", "count")


def classify_defect(finding: DriftFinding) -> str:
    """Bucket a finding per the IaC defect taxonomy (arxiv 2505.01568).

    Deletions are availability defects, out-of-band resources are
    provisioning defects, and modifications split into security /
    capacity / plain configuration drift by the attributes touched.
    """
    if finding.kind == "deleted":
        return "availability/missing-resource"
    if finding.kind == "unmanaged":
        return "provisioning/unmanaged-resource"
    attrs = [a.lower() for a in finding.changed_attrs]
    if any(hint in attr for attr in attrs for hint in _SECURITY_HINTS):
        return "security/misconfiguration"
    if any(attr in _CAPACITY_ATTRS for attr in attrs):
        return "capacity/misconfiguration"
    return "configuration/attribute-drift"


@dataclasses.dataclass
class ReconcileDecision:
    """One finding, classified: what the watcher decided and why."""

    finding: DriftFinding
    decision: str  # enforce | adopt | notify | defer-dark
    reason: str
    defect_class: str
    #: earliest time a deferred repair can possibly succeed (dark-
    #: partition recovery horizon); 0 for immediate decisions
    retry_at: float = 0.0
    #: filled in once the auto-reconcile stage ran the repair
    action: Optional[ReconcileAction] = None


@dataclasses.dataclass
class WatchCycle:
    """Everything one watcher cycle observed, decided, and repaired."""

    run: DetectionRun
    decisions: List[ReconcileDecision]
    report: Optional[ReconcileReport]
    deferred: List[ReconcileDecision]
    #: seconds since each partition was last successfully observed
    lag_s: Dict[str, float]
    #: partitions whose lag exceeds the staleness bound
    stale: List[str]
    #: failed/interrupted repairs carried into the next cycle's retry
    pending: int = 0

    @property
    def findings(self) -> List[DriftFinding]:
        return self.run.findings

    @property
    def degraded(self) -> bool:
        """Converging, but not fully caught up: dark partitions,
        stale observations, or repairs carried forward."""
        return bool(
            self.deferred or self.stale or self.run.unreachable or self.pending
        )

    @property
    def hard_failed(self) -> bool:
        """A repair failed terminally (not interrupted-and-resumable)."""
        if self.report is None:
            return False
        return any(
            not a.ok and not a.interrupted for a in self.report.actions
        )

    @property
    def ok(self) -> bool:
        return not self.hard_failed and not self.degraded

    def defect_counts(self) -> Dict[str, int]:
        """Repair activity scored against the defect taxonomy."""
        out: Dict[str, int] = {}
        for decision in self.decisions:
            out[decision.defect_class] = out.get(decision.defect_class, 0) + 1
        return out


class WatchCursorStore:
    """Durable per-partition cursors, journaled like golden state.

    Reuses :class:`JournalStateStore` (keyframe + JSONL delta journal,
    torn-tail truncation, ``.bak`` fallback): a cursor checkpoint is an
    O(changed) append, and every crash window replays to the same
    cursors -- the watcher resumes, it never replays the log.
    """

    def __init__(self, path: str, compact_threshold: int = 32):
        self._store = JournalStateStore(path, compact_threshold=compact_threshold)

    def load(self) -> Dict[str, int]:
        doc = self._store.read()
        raw = doc.outputs.get("cursors", {})
        return {str(name): int(cursor) for name, cursor in raw.items()}

    def save(self, cursors: Mapping[str, int]) -> None:
        snapshot = {name: int(c) for name, c in sorted(cursors.items())}
        doc = self._store.read()
        if doc.outputs.get("cursors") == snapshot:
            return  # nothing moved; no journal append
        doc.outputs["cursors"] = snapshot
        doc.bump()
        self._store.write(doc)


class DriftWatcher:
    """Continuous reconciliation: tail logs, decide, repair, repeat.

    One :meth:`cycle` = tail every plane's activity log past its
    cursor, account staleness, coalesce events into findings, classify
    each finding (enforce/adopt/notify/defer-dark), drive the
    :class:`Reconciler` over the actionable ones, and checkpoint the
    cursors. :meth:`run` strings cycles together on the simulated
    clock.
    """

    def __init__(
        self,
        gateway: CloudGateway,
        *,
        retry: Optional[RetryPolicy] = None,
        health: Optional[HealthMonitor] = None,
        policy: Optional[Dict[str, str]] = None,
        cursor_path: Optional[str] = None,
        max_lag_s: float = 900.0,
        auto_reconcile: bool = True,
        detector: Optional[LogWatchDetector] = None,
        reconciler: Optional[Reconciler] = None,
    ):
        self.gateway = ResilientGateway.wrap(gateway, retry=retry, health=health)
        self.health = self.gateway.health
        self.detector = detector or LogWatchDetector(self.gateway)
        self.reconciler = reconciler or Reconciler(self.gateway, policy=policy)
        self.max_lag_s = max_lag_s
        self.auto_reconcile = auto_reconcile
        self.cursor_store = (
            WatchCursorStore(cursor_path) if cursor_path else None
        )
        if self.cursor_store is not None:
            self.detector.restore_cursors(self.cursor_store.load())
        #: when each partition was last successfully observed
        self._last_seen: Dict[str, float] = {}
        self._started_at: Optional[float] = None
        #: repairs that failed or were interrupted -- refreshed against
        #: live state and retried next cycle
        self._pending: List[DriftFinding] = []
        #: repairs deferred to a dark partition's recovery horizon
        self._deferred: List[Tuple[DriftFinding, float]] = []

    # -- introspection -------------------------------------------------------

    @property
    def cursors(self) -> Dict[str, int]:
        return self.detector.cursors

    @property
    def pending(self) -> List[DriftFinding]:
        return list(self._pending)

    @property
    def deferred(self) -> List[Tuple[DriftFinding, float]]:
        return list(self._deferred)

    # -- the loop ------------------------------------------------------------

    def run(
        self, state: StateDocument, cycles: int = 1, interval_s: float = 60.0
    ) -> List[WatchCycle]:
        """``cycles`` watcher passes, ``interval_s`` of simulated time
        apart."""
        out = []
        for i in range(cycles):
            if i:
                self.gateway.clock.advance_by(interval_s)
            out.append(self.cycle(state))
        return out

    def cycle(self, state: StateDocument) -> WatchCycle:
        clock = self.gateway.clock
        started = clock.now
        if self._started_at is None:
            self._started_at = started
        calls_before = self.gateway.total_api_calls()
        by_provider, unreachable = self.detector.tail()
        detect_calls = self.gateway.total_api_calls() - calls_before
        now = clock.now

        lag_s, stale = self._account_staleness(by_provider, now)
        fresh = self._coalesce(by_provider, state, now)
        readmitted, still_dark = self._readmit_deferred(state, now)
        retries = self._refresh_pending(state, now)
        findings = self._merge(retries, readmitted, fresh)

        decisions: List[ReconcileDecision] = []
        actionable: List[ReconcileDecision] = []
        deferred: List[ReconcileDecision] = []
        for finding in findings:
            decision = self._decide(finding, now)
            decisions.append(decision)
            if decision.decision == DEFER_DARK:
                deferred.append(decision)
                self._deferred.append((finding, decision.retry_at))
            else:
                actionable.append(decision)
        # still-dark carryovers stay deferred without a fresh decision
        self._deferred.extend(still_dark)

        report = None
        if self.auto_reconcile and actionable:
            report = self._repair(actionable, state)

        if self.cursor_store is not None:
            self.cursor_store.save(self.detector.cursors)

        run = DetectionRun(
            findings=findings,
            api_calls=detect_calls,
            duration_s=clock.now - started,
            finished_at=clock.now,
            unreachable=unreachable,
        )
        raw = sum(len(events) for events in by_provider.values())
        external = sum(
            1
            for events in by_provider.values()
            for event in events
            if event.is_external
        )
        PERF.count("drift.cycles")
        PERF.count("drift.events", raw)
        PERF.count("drift.external_events", external)
        PERF.count("drift.findings", len(findings))
        PERF.count("drift.coalesced_events", max(0, external - len(fresh)))
        PERF.count("drift.deferrals", len(deferred))
        PERF.count("drift.retries", len(retries))
        if report is not None:
            PERF.count(
                "drift.repairs",
                sum(
                    1
                    for a in report.actions
                    if a.ok and a.policy in (ENFORCE, ADOPT)
                ),
            )
        return WatchCycle(
            run=run,
            decisions=decisions,
            report=report,
            deferred=deferred,
            lag_s=lag_s,
            stale=stale,
            pending=len(self._pending) + len(self._deferred),
        )

    # -- staleness ----------------------------------------------------------

    def _account_staleness(
        self, by_provider: Dict[str, List[ActivityEvent]], now: float
    ) -> Tuple[Dict[str, float], List[str]]:
        """Per-partition observation lag; partitions over the bound."""
        lag_s: Dict[str, float] = {}
        stale: List[str] = []
        for provider in sorted(self.gateway.planes):
            if provider in by_provider:
                self._last_seen[provider] = now
                lag = 0.0
            else:
                last = self._last_seen.get(provider, self._started_at or now)
                lag = max(0.0, now - last)
            lag_s[provider] = lag
            PERF.observe("drift.lag_s", lag)
            if lag > self.max_lag_s:
                stale.append(provider)
        return lag_s, stale

    # -- coalescing ----------------------------------------------------------

    def _coalesce(
        self,
        by_provider: Dict[str, List[ActivityEvent]],
        state: StateDocument,
        now: float,
    ) -> List[DriftFinding]:
        """Fold each resource's event burst into at most one finding."""
        findings: List[DriftFinding] = []
        for provider in sorted(by_provider):
            groups: Dict[str, List[ActivityEvent]] = {}
            order: List[str] = []
            for event in by_provider[provider]:
                if not event.is_external:
                    continue
                if event.resource_id not in groups:
                    groups[event.resource_id] = []
                    order.append(event.resource_id)
                groups[event.resource_id].append(event)
            for resource_id in order:
                finding = self._fold(
                    provider, resource_id, groups[resource_id], state, now
                )
                if finding is not None:
                    findings.append(finding)
        return findings

    def _fold(
        self,
        provider: str,
        resource_id: str,
        events: List[ActivityEvent],
        state: StateDocument,
        now: float,
    ) -> Optional[DriftFinding]:
        last = events[-1]
        entry = state.by_resource_id(resource_id)
        if last.operation == "delete":
            if entry is None:
                # never managed (or created-then-deleted out of band
                # within one window): nothing to converge
                return None
            return DriftFinding(
                kind="deleted",
                resource_id=resource_id,
                resource_type=last.resource_type,
                address=entry.address,
                detected_at=now,
                actor=last.actor,
                provider=provider,
                region=last.region or entry.region,
                event_count=len(events),
            )
        if entry is None:
            if any(event.operation == "create" for event in events):
                return DriftFinding(
                    kind="unmanaged",
                    resource_id=resource_id,
                    resource_type=last.resource_type,
                    detected_at=now,
                    actor=last.actor,
                    provider=provider,
                    region=last.region,
                    event_count=len(events),
                )
            return None  # external change to a resource we never managed
        changed = sorted({a for event in events for a in event.changed_attrs})
        return DriftFinding(
            kind="modified",
            resource_id=resource_id,
            resource_type=last.resource_type,
            address=entry.address,
            changed_attrs=changed,
            detected_at=now,
            actor=last.actor,
            provider=provider,
            region=last.region or entry.region,
            event_count=len(events),
        )

    # -- carryover (deferred + retry) ---------------------------------------

    def _readmit_deferred(
        self, state: StateDocument, now: float
    ) -> Tuple[List[DriftFinding], List[Tuple[DriftFinding, float]]]:
        """Deferred repairs whose recovery horizon has passed; the rest
        stay parked (the log events behind them were already consumed,
        so the deferred finding is their only carrier)."""
        readmitted: List[DriftFinding] = []
        still_dark: List[Tuple[DriftFinding, float]] = []
        for finding, retry_at in self._deferred:
            if now < retry_at:
                still_dark.append((finding, retry_at))
                continue
            refreshed = self._refresh(finding, state, now)
            if refreshed is not None:
                readmitted.append(refreshed)
        self._deferred = []
        return readmitted, still_dark

    def _refresh_pending(
        self, state: StateDocument, now: float
    ) -> List[DriftFinding]:
        """Failed/interrupted repairs, re-derived against live truth.

        An interrupted replacement leaves *no* external log event (the
        Reconciler's half-repair acted as ``iac``), so the retry queue
        -- not the log -- is what resumes it: the refreshed view of a
        checkpointed half-replacement is a ``deleted`` finding, which
        ENFORCE completes by recreating."""
        retries: List[DriftFinding] = []
        for finding in self._pending:
            refreshed = self._refresh(finding, state, now)
            if refreshed is not None:
                retries.append(refreshed)
        self._pending = []
        return retries

    def _refresh(
        self, finding: DriftFinding, state: StateDocument, now: float
    ) -> Optional[DriftFinding]:
        """A carried finding, re-derived: None once converged/moot."""
        if finding.kind == "unmanaged":
            live = self.gateway.find_record(finding.resource_id)
            return dataclasses.replace(finding, detected_at=now) if live else None
        entry = None
        if finding.address is not None:
            entry = state.get(finding.address)
        if entry is None:
            entry = state.by_resource_id(finding.resource_id)
        if entry is None:
            return None  # no longer managed; nothing to converge
        live = (
            self.gateway.find_record(entry.resource_id)
            if entry.resource_id
            else None
        )
        if live is None:
            return DriftFinding(
                kind="deleted",
                resource_id=entry.resource_id,
                resource_type=entry.address.type,
                address=entry.address,
                detected_at=now,
                actor=finding.actor,
                provider=finding.provider or entry.provider,
                region=entry.region,
            )
        changed = sorted(
            key
            for key in set(entry.attrs) | set(live.attrs)
            if not values_equal(entry.attrs.get(key), live.attrs.get(key))
        )
        if not changed:
            return None  # converged while we weren't looking
        return DriftFinding(
            kind="modified",
            resource_id=entry.resource_id,
            resource_type=entry.address.type,
            address=entry.address,
            changed_attrs=changed,
            detected_at=now,
            actor=finding.actor,
            provider=finding.provider or entry.provider,
            region=entry.region,
        )

    @staticmethod
    def _merge(*batches: List[DriftFinding]) -> List[DriftFinding]:
        """Union of finding batches, one finding per resource; later
        batches win (fresh log evidence beats a carried-over view)."""
        merged: Dict[str, DriftFinding] = {}
        for batch in batches:
            for finding in batch:
                key = (
                    str(finding.address)
                    if finding.address is not None
                    else finding.resource_id
                )
                merged[key] = finding
        return list(merged.values())

    # -- decisions -----------------------------------------------------------

    def _decide(self, finding: DriftFinding, now: float) -> ReconcileDecision:
        defect = classify_defect(finding)
        horizon = self._dark_horizon(finding.provider, finding.region, now)
        if horizon is not None:
            label = (
                f"{finding.provider}/{finding.region}"
                if finding.region
                else finding.provider
            )
            return ReconcileDecision(
                finding,
                DEFER_DARK,
                reason=f"partition {label} dark until t={horizon:.0f}",
                defect_class=defect,
                retry_at=horizon,
            )
        policy = self.reconciler.policy.get(finding.kind, NOTIFY)
        reasons = {
            ENFORCE: "golden state is authoritative; pushing cloud back",
            ADOPT: "cloud is authoritative here; pulling into state",
            NOTIFY: "out-of-band change; surfacing to operators",
        }
        return ReconcileDecision(
            finding,
            policy,
            reason=reasons.get(policy, "per-kind policy"),
            defect_class=defect,
        )

    def _dark_horizon(
        self, provider: str, region: str, now: float
    ) -> Optional[float]:
        """Latest recovery horizon hiding the finding's partition:
        provider status page (PR 5 outage windows) or open circuit
        breaker -- None if the partition is reachable."""
        if not provider:
            return None
        horizons: List[float] = []
        plane = self.gateway.planes.get(provider)
        if plane is not None:
            horizon = plane.outage_horizon(region or "", now)
            if horizon is not None:
                horizons.append(horizon)
        if self.health is not None:
            horizon = self.health.recovery_horizon(provider, region or "", now)
            if horizon is not None:
                horizons.append(horizon)
        return max(horizons) if horizons else None

    # -- repair --------------------------------------------------------------

    def _repair(
        self, actionable: List[ReconcileDecision], state: StateDocument
    ) -> ReconcileReport:
        calls_before = self.gateway.total_api_calls()
        actions: List[ReconcileAction] = []
        notifications: List[str] = []
        remainder: List[str] = []
        for decision in actionable:
            finding = decision.finding
            action = self.reconciler.reconcile_one(
                finding, state, policy=decision.decision
            )
            decision.action = action
            actions.append(action)
            if action.policy == NOTIFY:
                notifications.append(
                    f"drift[{finding.kind}] {finding.resource_type} "
                    f"{finding.resource_id}"
                    + (f" by {finding.actor}" if finding.actor else "")
                )
            if action.interrupted:
                remainder.append(action.performed)
            if not action.ok:
                self._pending.append(finding)
        return ReconcileReport(
            actions=actions,
            notifications=notifications,
            api_calls=self.gateway.total_api_calls() - calls_before,
            remainder=remainder,
        )
