"""Drift detection (3.5).

Two detectors, one interface:

* :class:`FullScanDetector` -- the driftctl-style baseline: enumerate
  every resource through the paginated, rate-limited cloud list API and
  compare against state. Thorough but slow and API-hungry, exactly the
  overhead the paper attributes to this approach.
* :class:`LogWatchDetector` -- the cloudless design: tail the cloud
  activity logs and flag management events whose actor is not the IaC
  framework. Near-instant detection at one read per poll.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..addressing import ResourceAddress
from ..cloud.activitylog import ActivityEvent
from ..cloud.base import CloudAPIError
from ..cloud.gateway import CloudGateway
from ..cloud.resilience import (
    HealthMonitor,
    ResilientGateway,
    RetryPolicy,
    is_outage_error,
)
from ..lang.values import values_equal
from ..state.document import StateDocument


@dataclasses.dataclass
class DriftFinding:
    """One detected divergence between state and cloud."""

    kind: str  # "modified" | "deleted" | "unmanaged"
    resource_id: str
    resource_type: str
    address: Optional[ResourceAddress] = None
    changed_attrs: List[str] = dataclasses.field(default_factory=list)
    detected_at: float = 0.0
    actor: str = ""
    #: owning partition, when the detector could resolve it -- the
    #: watcher's defer-to-dark-partition logic keys off these
    provider: str = ""
    region: str = ""
    #: how many raw log events this finding summarises (coalescing)
    event_count: int = 1

    @property
    def key(self) -> str:
        return f"{self.kind}:{self.resource_id}"


@dataclasses.dataclass
class DetectionRun:
    """Result of one detector pass."""

    findings: List[DriftFinding]
    api_calls: int
    duration_s: float
    finished_at: float
    #: partitions ("provider" or "provider/region") the pass could not
    #: observe -- outage or open breaker. State entries behind them are
    #: *not* reported as drift: absence of evidence during an outage is
    #: not evidence of deletion.
    unreachable: List[str] = dataclasses.field(default_factory=list)


class FullScanDetector:
    """Baseline: list every resource, page by page, and diff.

    Page reads go through the resilience layer: a transient fault mid-
    pagination retries that page (same token) instead of aborting the
    scan, so one flaky list call cannot hide a drifted estate.

    The scan is outage-aware: a provider whose list API is down (or
    whose breaker is open) is reported in ``DetectionRun.unreachable``
    instead of aborting the whole pass, partial pages from it are
    discarded, and state entries behind any unreachable partition are
    skipped rather than flagged as phantom "deleted" drift.
    """

    def __init__(
        self,
        gateway: CloudGateway,
        retry: Optional[RetryPolicy] = None,
        health: Optional[HealthMonitor] = None,
    ):
        self.gateway = ResilientGateway.wrap(gateway, retry=retry, health=health)
        self.health = self.gateway.health

    def _unreachable_partition(
        self, provider: str, region: str, now: float, dark_providers: Set[str]
    ) -> Optional[str]:
        """The partition label hiding (provider, region) from this scan,
        or None if the partition is observable."""
        if provider in dark_providers:
            return provider
        if self.health is not None and self.health.blocked(provider, "", now):
            return provider
        plane = self.gateway.planes.get(provider)
        if plane is not None and plane.outage_horizon(region, now) is not None:
            return f"{provider}/{region}" if region else provider
        if (
            region
            and self.health is not None
            and self.health.blocked(provider, region, now)
        ):
            return f"{provider}/{region}"
        return None

    def _provider_for(self, entry: Any) -> str:
        """The plane key owning a state entry.

        ``entry.provider`` is authoritative when it names a live plane
        (it was minted by the gateway at apply time). Otherwise resolve
        through the gateway's type->plane mapping -- deriving it from
        the type *prefix* misclassifies planes registered under a
        different key (e.g. synthetic planes), which would defeat the
        outage skip-logic below and fabricate phantom deletions.
        """
        if entry.provider and entry.provider in self.gateway.planes:
            return entry.provider
        resolved = self.gateway.try_provider_of(entry.address.type)
        if resolved is not None:
            return resolved
        return entry.address.type.split("_", 1)[0]

    def scan(self, state: StateDocument) -> DetectionRun:
        clock = self.gateway.clock
        started = clock.now
        calls_before = self.gateway.total_api_calls()
        live: Dict[str, Dict[str, Any]] = {}
        live_types: Dict[str, str] = {}
        live_providers: Dict[str, str] = {}
        dark_providers: Set[str] = set()
        unreachable: Set[str] = set()
        for provider, plane in sorted(self.gateway.planes.items()):
            token: Any = 0
            items: Dict[str, Dict[str, Any]] = {}
            types: Dict[str, str] = {}
            try:
                while token is not None:
                    page = self.gateway.execute_on(
                        plane, "list", attrs={"page_token": token}
                    )
                    for item, rtype in zip(page["items"], page["types"]):
                        items[item["id"]] = item
                        types[item["id"]] = rtype
                    token = page["next_token"]
            except CloudAPIError as exc:
                if not is_outage_error(exc):
                    raise
                # the provider's list plane is down: drop its partial
                # pages (a half-seen estate would fabricate deletions)
                # and mark it unreachable for the diff below
                dark_providers.add(provider)
                unreachable.add(provider)
                continue
            live.update(items)
            live_types.update(types)
            for item_id in items:
                live_providers[item_id] = provider
        findings: List[DriftFinding] = []
        managed_ids: Set[str] = set()
        for entry in state.resources():
            managed_ids.add(entry.resource_id)
            snapshot = live.get(entry.resource_id)
            if snapshot is None:
                provider = self._provider_for(entry)
                hidden = self._unreachable_partition(
                    provider, entry.region, clock.now, dark_providers
                )
                if hidden is not None:
                    # unreachable, not deleted: the record may well be
                    # alive behind the outage. No phantom drift.
                    unreachable.add(hidden)
                    continue
                findings.append(
                    DriftFinding(
                        kind="deleted",
                        resource_id=entry.resource_id,
                        resource_type=entry.address.type,
                        address=entry.address,
                        detected_at=clock.now,
                        provider=provider,
                        region=entry.region,
                    )
                )
                continue
            changed = sorted(
                key
                for key in set(entry.attrs) | set(snapshot)
                if not values_equal(entry.attrs.get(key), snapshot.get(key))
            )
            if changed:
                findings.append(
                    DriftFinding(
                        kind="modified",
                        resource_id=entry.resource_id,
                        resource_type=entry.address.type,
                        address=entry.address,
                        changed_attrs=changed,
                        detected_at=clock.now,
                        provider=self._provider_for(entry),
                        region=entry.region,
                    )
                )
        for resource_id, snapshot in sorted(live.items()):
            if resource_id not in managed_ids:
                findings.append(
                    DriftFinding(
                        kind="unmanaged",
                        resource_id=resource_id,
                        resource_type=live_types.get(resource_id, ""),
                        detected_at=clock.now,
                        provider=live_providers.get(resource_id, ""),
                    )
                )
        return DetectionRun(
            findings=findings,
            api_calls=self.gateway.total_api_calls() - calls_before,
            duration_s=clock.now - started,
            finished_at=clock.now,
            unreachable=sorted(unreachable),
        )


class LogWatchDetector:
    """Cloudless: consume activity-log events since the last poll.

    A provider whose log endpoint is dark is skipped *without advancing
    its cursor*: the missed events are delivered on the first poll after
    the outage lifts, so detection degrades to "late", never to "lost".

    Cursors are event *sequence numbers* (see
    :class:`~repro.cloud.activitylog.ActivityLog`), advanced to the
    last delivered event's ``sequence + 1`` -- never by list index --
    so they survive log compaction and can be checkpointed/restored
    across watcher restarts. Planes added to the gateway after
    construction simply start from cursor 0.
    """

    def __init__(
        self,
        gateway: CloudGateway,
        retry: Optional[RetryPolicy] = None,
        health: Optional[HealthMonitor] = None,
    ):
        self.gateway = ResilientGateway.wrap(gateway, retry=retry, health=health)
        self._cursors: Dict[str, int] = {
            name: 0 for name in gateway.planes
        }

    @property
    def cursors(self) -> Dict[str, int]:
        """Current per-provider cursors (a copy; safe to persist)."""
        return dict(self._cursors)

    def restore_cursors(self, cursors: Mapping[str, int]) -> None:
        """Adopt checkpointed cursors: a restarted watcher resumes
        instead of replaying the log from sequence 0."""
        for name, cursor in cursors.items():
            self._cursors[name] = max(int(cursor), self._cursors.get(name, 0))

    def tail(
        self, until: Optional[float] = None
    ) -> Tuple[Dict[str, List[ActivityEvent]], List[str]]:
        """Read each plane's log past its cursor and advance the cursors.

        Returns ``(events by provider, unreachable providers)``. One
        read-class API call per reachable plane; a dark plane's cursor
        is left untouched so its events replay once the outage lifts.
        """
        clock = self.gateway.clock
        until = clock.now if until is None else until
        by_provider: Dict[str, List[ActivityEvent]] = {}
        unreachable: List[str] = []
        for provider, plane in sorted(self.gateway.planes.items()):
            # reading the log is one read-class API call (retried on
            # transient faults like any other read)
            try:
                self.gateway.execute_on(plane, "log")
            except CloudAPIError as exc:
                if not is_outage_error(exc):
                    raise
                unreachable.append(provider)
                continue  # cursor untouched: events replay post-outage
            # late-added planes (absent at construction) start at 0
            cursor = self._cursors.get(provider, 0)
            events = plane.log.events_since(cursor, until=until)
            if events:
                self._cursors[provider] = events[-1].sequence + 1
            else:
                self._cursors.setdefault(provider, cursor)
            by_provider[provider] = events
        return by_provider, unreachable

    def poll(self, state: StateDocument) -> DetectionRun:
        """One poll: read new log events, map external ones to findings."""
        clock = self.gateway.clock
        started = clock.now
        calls_before = self.gateway.total_api_calls()
        findings: List[DriftFinding] = []
        by_provider, unreachable = self.tail()
        for events in by_provider.values():
            for event in events:
                finding = self._finding_from_event(event, state)
                if finding is not None:
                    findings.append(finding)
        return DetectionRun(
            findings=findings,
            api_calls=self.gateway.total_api_calls() - calls_before,
            duration_s=clock.now - started,
            finished_at=clock.now,
            unreachable=unreachable,
        )

    def _finding_from_event(
        self, event: ActivityEvent, state: StateDocument
    ) -> Optional[DriftFinding]:
        if not event.is_external:
            return None
        entry = state.by_resource_id(event.resource_id)
        if event.operation == "create":
            return DriftFinding(
                kind="unmanaged",
                resource_id=event.resource_id,
                resource_type=event.resource_type,
                detected_at=self.gateway.clock.now,
                actor=event.actor,
                provider=event.provider,
                region=event.region,
            )
        if entry is None:
            return None  # external change to a resource we never managed
        kind = "deleted" if event.operation == "delete" else "modified"
        return DriftFinding(
            kind=kind,
            resource_id=event.resource_id,
            resource_type=event.resource_type,
            address=entry.address,
            changed_attrs=sorted(event.changed_attrs),
            detected_at=self.gateway.clock.now,
            actor=event.actor,
            provider=event.provider,
            region=event.region,
        )
