"""State storage backends.

Three homes for the golden state:

* :class:`MemoryStateStore` -- in-process, O(1) reads/writes thanks to
  the copy-on-write document.
* :class:`FileStateStore` -- one JSON file, rewritten whole on every
  write (the Terraform shape).
* :class:`JournalStateStore` -- a keyframe file plus an append-only
  delta journal: each write persists only what changed since the last
  write, and the journal is compacted into a fresh keyframe once it
  grows past ``compact_threshold`` entries. Replay is idempotent
  (deltas carry absolute serials and full entry values), so a crash
  between compaction and journal truncation cannot corrupt the store.
"""

from __future__ import annotations

import json
import os
import tempfile
import uuid
from typing import List, Optional

from ..addressing import ResourceAddress
from ..perf import PERF
from .document import ResourceState, StateDocument
from .snapshots import _map_delta


class StateStore:
    """Abstract persistent home of the state document."""

    def read(self) -> StateDocument:
        raise NotImplementedError

    def write(self, doc: StateDocument) -> None:
        raise NotImplementedError


class MemoryStateStore(StateStore):
    """In-memory backend (default for simulations and tests)."""

    def __init__(self, doc: Optional[StateDocument] = None):
        self._doc = doc or StateDocument()

    def read(self) -> StateDocument:
        return self._doc.copy()

    def write(self, doc: StateDocument) -> None:
        if doc.serial < self._doc.serial:
            raise StaleStateError(
                f"serial {doc.serial} is older than stored {self._doc.serial}"
            )
        self._doc = doc.copy()


class FileStateStore(StateStore):
    """JSON-file backend with atomic replace."""

    def __init__(self, path: str):
        self.path = path

    def read(self) -> StateDocument:
        if not os.path.exists(self.path):
            return StateDocument()
        with open(self.path, "r", encoding="utf-8") as handle:
            return StateDocument.from_json(handle.read())

    def write(self, doc: StateDocument) -> None:
        current = self.read()
        if doc.serial < current.serial:
            raise StaleStateError(
                f"serial {doc.serial} is older than stored {current.serial}"
            )
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(doc.to_json())
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise


class JournalStateStore(StateStore):
    """Keyframe + append-only delta journal backend.

    Layout: ``path`` holds the last compacted keyframe (the same JSON
    document :class:`FileStateStore` writes); ``path + ".journal"``
    holds one JSON line per committed write, each an O(changed) delta
    against the previous write. ``read()`` replays the journal over the
    keyframe; ``write()`` appends a delta and compacts once the journal
    reaches ``compact_threshold`` lines.

    Crash tolerance: a torn *journal tail* (the process died mid-append)
    is dropped and truncated away; a torn *keyframe* (the process died
    mid-``os.replace``, or the file was corrupted at rest) falls back to
    the ``path + ".bak"`` copy compaction writes alongside it. Because
    deltas are idempotent (absolute serials, full entry values), every
    crash window -- before either keyframe write, between them, before
    the journal truncation -- replays to the same document.

    Ownership: two live engine instances appending to the same journal
    interleave deltas from different documents -- silent corruption.
    Passing ``owner`` claims an advisory marker (``path + ".owner"``)
    at construction; a second claimant gets a :class:`StoreOwnedError`
    naming the current owner instead. A marker whose recorded pid is
    dead is stale and reclaimed silently; ``steal=True`` takes over a
    live marker (legitimate only for a caller holding a newer session
    lease, e.g. a restarted service fencing out its zombie
    predecessor). ``owner=None`` skips the guard entirely, keeping
    single-owner callers untouched.
    """

    def __init__(
        self,
        path: str,
        compact_threshold: int = 64,
        owner: Optional[str] = None,
        steal: bool = False,
    ):
        self.path = path
        self.backup_path = path + ".bak"
        self.journal_path = path + ".journal"
        self.owner_path = path + ".owner"
        self.compact_threshold = max(1, compact_threshold)
        self._last: Optional[StateDocument] = None
        self._journal_len: Optional[int] = None
        self.owner = owner
        self._owner_token: Optional[str] = None
        if owner is not None:
            self._claim_owner(steal)

    # -- ownership ---------------------------------------------------------

    def _read_owner_marker(self) -> Optional[dict]:
        try:
            with open(self.owner_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except (PermissionError, OSError, OverflowError):
            return True  # exists but not ours (or unknowable): assume live
        return True

    def _claim_owner(self, steal: bool) -> None:
        marker = self._read_owner_marker()
        if marker is not None and not steal:
            pid = marker.get("pid")
            live = isinstance(pid, int) and self._pid_alive(pid)
            if live:
                raise StoreOwnedError(
                    f"journal store {self.path!r} is already open: owned "
                    f"by {marker.get('owner', '<unknown>')!r} (pid {pid}); "
                    f"a second live instance appending to the same journal "
                    f"would corrupt it. Release the other instance, or "
                    f"pass steal=True if it is a fenced-out zombie."
                )
        token = uuid.uuid4().hex
        directory = os.path.dirname(os.path.abspath(self.owner_path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {"owner": self.owner, "pid": os.getpid(), "token": token},
                    handle,
                )
            os.replace(tmp_path, self.owner_path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self._owner_token = token

    def release_owner(self) -> None:
        """Drop the advisory owner marker (if this instance holds it)."""
        if self._owner_token is None:
            return
        marker = self._read_owner_marker()
        if marker is not None and marker.get("token") == self._owner_token:
            try:
                os.unlink(self.owner_path)
            except OSError:
                pass
        self._owner_token = None

    def owns(self) -> bool:
        """Does this instance still hold the advisory marker?"""
        if self._owner_token is None:
            return False
        marker = self._read_owner_marker()
        return marker is not None and marker.get("token") == self._owner_token

    # -- reading -----------------------------------------------------------

    def _read_journal(self) -> List[dict]:
        if not os.path.exists(self.journal_path):
            return []
        with open(self.journal_path, "rb") as handle:
            raw = handle.read()
        entries: List[dict] = []
        lines = raw.split(b"\n")
        valid_end = 0
        offset = 0
        for index, chunk in enumerate(lines):
            line_end = offset + len(chunk) + 1
            stripped = chunk.strip()
            if stripped:
                try:
                    entries.append(json.loads(stripped.decode("utf-8")))
                except (ValueError, UnicodeDecodeError):
                    if any(c.strip() for c in lines[index + 1 :]):
                        raise
                    # torn final append: drop it and truncate it away so
                    # future appends produce a well-formed journal
                    with open(self.journal_path, "r+b") as trunc:
                        trunc.truncate(valid_end)
                    PERF.count("persist.torn_tail_recoveries")
                    break
            valid_end = min(line_end, len(raw))
            offset = line_end
        return entries

    def _read_keyframe(self) -> StateDocument:
        for candidate in (self.path, self.backup_path):
            if not os.path.exists(candidate):
                continue
            try:
                with open(candidate, "r", encoding="utf-8") as handle:
                    return StateDocument.from_json(handle.read())
            except (ValueError, KeyError):
                # torn/corrupt keyframe: fall through to the backup copy
                PERF.count("persist.keyframe_fallbacks")
                continue
        return StateDocument()

    def _load(self) -> StateDocument:
        doc = self._read_keyframe()
        journal = self._read_journal()
        for delta in journal:
            _apply_delta(doc, delta)
        self._journal_len = len(journal)
        return doc

    def read(self) -> StateDocument:
        if self._last is None:
            self._last = self._load()
        return self._last.copy()

    # -- writing -----------------------------------------------------------

    def write(self, doc: StateDocument) -> None:
        if self._last is None:
            self._last = self._load()
        if doc.serial < self._last.serial:
            raise StaleStateError(
                f"serial {doc.serial} is older than stored {self._last.serial}"
            )
        snapshot = doc.copy()
        delta_set, delta_removed = _map_delta(
            self._last.entries_map(), snapshot.entries_map()
        )
        delta = {
            "serial": snapshot.serial,
            "lineage": snapshot.lineage,
            "set": [delta_set[k].to_dict() for k in sorted(delta_set)],
            "removed": sorted(delta_removed),
        }
        if snapshot.outputs != self._last.outputs:
            delta["outputs"] = snapshot.outputs
        directory = os.path.dirname(os.path.abspath(self.journal_path))
        os.makedirs(directory, exist_ok=True)
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(delta, sort_keys=True) + "\n")
            handle.flush()
        self._last = snapshot
        if self._journal_len is None:
            self._journal_len = 0
        self._journal_len += 1
        PERF.count("persist.journal_appends")
        if self._journal_len >= self.compact_threshold:
            self.compact()

    def compact(self) -> None:
        """Fold the journal into a fresh keyframe file.

        The keyframe is written twice -- atomically to ``path`` and then
        to ``path + ".bak"`` -- *before* the journal is truncated. Any
        single torn file is survivable: a torn primary reads from the
        backup (same content), a torn backup never matters until the
        primary is also damaged, and a crash before the truncation just
        replays the now-stale journal idempotently.
        """
        if self._last is None:
            self._last = self._load()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        payload = self._last.to_json()
        for target in (self.path, self.backup_path):
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(tmp_path, target)
            except BaseException:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
                raise
        # safe even if we crash before this: replaying the stale journal
        # over the new keyframe is idempotent
        with open(self.journal_path, "w", encoding="utf-8"):
            pass
        self._journal_len = 0
        PERF.count("persist.compactions")


def _apply_delta(doc: StateDocument, delta: dict) -> None:
    """Replay one journal delta onto ``doc`` (idempotent)."""
    for item in delta.get("set", []):
        doc.set(ResourceState.from_dict(item))
    for key in delta.get("removed", []):
        doc.remove(ResourceAddress.parse(key))
    doc.serial = delta.get("serial", doc.serial)
    doc.lineage = delta.get("lineage", doc.lineage)
    if "outputs" in delta:
        doc.outputs = dict(delta["outputs"])


class StaleStateError(RuntimeError):
    """Write rejected because a newer state already exists."""


class StoreOwnedError(RuntimeError):
    """A second live instance tried to open an owned journal store."""
