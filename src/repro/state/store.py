"""State storage backends."""

from __future__ import annotations

import os
import tempfile
from typing import Optional

from .document import StateDocument


class StateStore:
    """Abstract persistent home of the state document."""

    def read(self) -> StateDocument:
        raise NotImplementedError

    def write(self, doc: StateDocument) -> None:
        raise NotImplementedError


class MemoryStateStore(StateStore):
    """In-memory backend (default for simulations and tests)."""

    def __init__(self, doc: Optional[StateDocument] = None):
        self._doc = doc or StateDocument()

    def read(self) -> StateDocument:
        return self._doc.copy()

    def write(self, doc: StateDocument) -> None:
        if doc.serial < self._doc.serial:
            raise StaleStateError(
                f"serial {doc.serial} is older than stored {self._doc.serial}"
            )
        self._doc = doc.copy()


class FileStateStore(StateStore):
    """JSON-file backend with atomic replace."""

    def __init__(self, path: str):
        self.path = path

    def read(self) -> StateDocument:
        if not os.path.exists(self.path):
            return StateDocument()
        with open(self.path, "r", encoding="utf-8") as handle:
            return StateDocument.from_json(handle.read())

    def write(self, doc: StateDocument) -> None:
        current = self.read()
        if doc.serial < current.serial:
            raise StaleStateError(
                f"serial {doc.serial} is older than stored {current.serial}"
            )
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(doc.to_json())
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise


class StaleStateError(RuntimeError):
    """Write rejected because a newer state already exists."""
