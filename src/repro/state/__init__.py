"""State management: golden-state document, stores, snapshots ("time
machine"), lock managers, and transactions (paper 3.4)."""

from .document import ImmutableEntryError, ResourceState, StateDocument
from .locks import (
    GLOBAL_KEY,
    GlobalLockManager,
    LockGrant,
    LockManager,
    ResourceLockManager,
)
from .snapshots import Snapshot, SnapshotDiff, SnapshotHistory
from .store import (
    FileStateStore,
    JournalStateStore,
    MemoryStateStore,
    StaleStateError,
    StateStore,
    StoreOwnedError,
)
from .transactions import (
    CommittedTransaction,
    SerializabilityChecker,
    StaleLeaseError,
    StateDatabase,
    StateTransaction,
    TransactionError,
)

__all__ = [
    "CommittedTransaction",
    "FileStateStore",
    "GLOBAL_KEY",
    "GlobalLockManager",
    "ImmutableEntryError",
    "JournalStateStore",
    "LockGrant",
    "LockManager",
    "MemoryStateStore",
    "ResourceLockManager",
    "ResourceState",
    "SerializabilityChecker",
    "Snapshot",
    "SnapshotDiff",
    "SnapshotHistory",
    "StaleLeaseError",
    "StaleStateError",
    "StateDatabase",
    "StateDocument",
    "StateStore",
    "StateTransaction",
    "StoreOwnedError",
    "TransactionError",
]
