"""Lock managers for concurrent infrastructure updates (3.4).

Two implementations of one interface:

* :class:`GlobalLockManager` -- today's practice: any update locks the
  entire state ("existing tools simply lock the entire cloud
  infrastructure for modifications at any scale").
* :class:`ResourceLockManager` -- the cloudless design: per-resource
  locks; mutual exclusion arises only when two teams touch the same
  resource. Lock sets are acquired atomically (all-or-nothing) so
  deadlock is impossible by construction.

Grants are **leases**: an acquisition may carry a TTL, after which the
grant silently expires unless the holder heartbeats (:meth:`renew`).
That removes the crashed-holder deadlock -- Terraform's ``force-unlock``
problem -- because a dead process simply stops renewing. Every grant
also carries a **monotonic fencing token**; a holder resuming after its
lease lapsed (a "zombie") presents a token older than the current
grant's and is rejected wherever :meth:`check_fence` guards the
mutation path (see ``update/coordinator.py``'s fenced gateway).

Acquiring without a TTL keeps the original semantics: the lease never
expires and fencing never rejects, so existing single-process callers
are untouched.

Lock managers are pure bookkeeping over simulated time; the update
coordinator (:mod:`repro.update.coordinator`) drives waiting/retry as
discrete events and records wait statistics.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import Dict, FrozenSet, List, Optional, Set

GLOBAL_KEY = "__entire_infrastructure__"


@dataclasses.dataclass
class LockGrant:
    """A currently-held lock set (a lease when ``expires_at`` is finite)."""

    holder: str
    keys: FrozenSet[str]
    acquired_at: float
    expires_at: float = math.inf
    fencing_token: int = 0

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class LockManager:
    """Interface both lock managers implement.

    ``try_acquire`` returns the grant (truthy) on success and ``None``
    on conflict -- every pre-lease caller only tested truthiness, so
    the richer return type is drop-in compatible.

    Managers are thread-safe: every public method runs under one
    re-entrant mutex, which the multi-tenant service tier relies on
    (sessions heartbeat from worker threads while commits validate
    fences). Expiry is observed *eagerly*: any method that looks at a
    lapsed grant drops it on the spot, so whether a zombie's grant is
    still visible no longer depends on which caller happened to sweep
    first.
    """

    def __init__(self) -> None:
        self._mutex = threading.RLock()

    def try_acquire(
        self,
        holder: str,
        keys: Set[str],
        now: float,
        ttl: Optional[float] = None,
    ) -> Optional[LockGrant]:
        """Atomically acquire every key (or nothing). None on conflict."""
        raise NotImplementedError

    def renew(
        self, holder: str, now: float, ttl: Optional[float] = None
    ) -> Optional[LockGrant]:
        """Heartbeat: extend ``holder``'s lease from ``now``.

        Returns the refreshed grant, or ``None`` if the holder no
        longer holds a live grant (never held one, or its lease already
        expired -- a renew after expiry must NOT resurrect the grant,
        someone else may hold the keys now). A lapsed grant is dropped
        here rather than left squatting on its keys until an unrelated
        acquisition sweeps it.
        """
        with self._mutex:
            grant = self._live_grant(holder, now)
            if grant is None:
                return None
            if ttl is not None:
                grant.expires_at = now + ttl
            return grant

    def check_fence(
        self, holder: str, fencing_token: int, now: float
    ) -> bool:
        """Is ``(holder, fencing_token)`` still the live grant?

        The fencing check real storage systems do on every write: a
        zombie presenting a token from a lapsed lease fails here even
        if it is still convinced it holds the lock. Observing a lapsed
        grant drops it.
        """
        with self._mutex:
            grant = self._live_grant(holder, now)
            return grant is not None and grant.fencing_token == fencing_token

    def commit_fence(
        self, holder: str, fencing_token: int, now: float
    ) -> bool:
        """Atomically validate ``(holder, fencing_token)`` and release.

        The commit-side counterpart of :meth:`check_fence`: validating
        the fence and surrendering the grant happen in one step under
        the manager's mutex, so a lease cannot lapse -- nor its keys be
        re-granted to another holder -- between the check and the
        caller's commit write. Returns ``False`` (and drops any lapsed
        grant the holder still had) when the fence is stale; the caller
        must abort.
        """
        with self._mutex:
            grant = self._live_grant(holder, now)
            if grant is None or grant.fencing_token != fencing_token:
                return False
            self._drop_holder(holder)
            return True

    def release(
        self, holder: str, fencing_token: Optional[int] = None
    ) -> None:
        """Release ``holder``'s grant.

        A no-op for an unknown or already-expired holder (recovery
        paths release unconditionally), and for a stale
        ``fencing_token`` (a zombie must not release the current
        holder's grant).
        """
        raise NotImplementedError

    def holders(self) -> List[str]:
        raise NotImplementedError

    def conflicts_with(
        self, keys: Set[str], now: Optional[float] = None
    ) -> Set[str]:
        """Which current holders block an acquisition of ``keys``."""
        raise NotImplementedError

    # -- shared lease plumbing (subclasses supply _grant_for/_drop_holder) --

    def _grant_for(self, holder: str) -> Optional[LockGrant]:
        raise NotImplementedError

    def _drop_holder(self, holder: str) -> None:
        """Forget ``holder``'s grant (no fencing/expiry checks)."""
        raise NotImplementedError

    def _live_grant(self, holder: str, now: float) -> Optional[LockGrant]:
        grant = self._grant_for(holder)
        if grant is None:
            return None
        if grant.expired(now):
            # eager expiry: drop the lapsed grant the moment any caller
            # observes it, so visibility does not depend on sweep order
            self._drop_holder(holder)
            return None
        return grant


class GlobalLockManager(LockManager):
    """One big lock: a second holder always waits (until the lease lapses)."""

    def __init__(self) -> None:
        super().__init__()
        self._grant: Optional[LockGrant] = None
        self._next_fence = 1

    def _grant_for(self, holder: str) -> Optional[LockGrant]:
        if self._grant is not None and self._grant.holder == holder:
            return self._grant
        return None

    def _drop_holder(self, holder: str) -> None:
        if self._grant is not None and self._grant.holder == holder:
            self._grant = None

    def _sweep(self, now: Optional[float]) -> None:
        if (
            now is not None
            and self._grant is not None
            and self._grant.expired(now)
        ):
            self._grant = None

    def try_acquire(
        self,
        holder: str,
        keys: Set[str],
        now: float,
        ttl: Optional[float] = None,
    ) -> Optional[LockGrant]:
        with self._mutex:
            self._sweep(now)
            if self._grant is not None:
                return None
            fence = self._next_fence
            self._next_fence += 1
            self._grant = LockGrant(
                holder=holder,
                keys=frozenset([GLOBAL_KEY]),
                acquired_at=now,
                expires_at=math.inf if ttl is None else now + ttl,
                fencing_token=fence,
            )
            return self._grant

    def release(
        self, holder: str, fencing_token: Optional[int] = None
    ) -> None:
        with self._mutex:
            grant = self._grant
            if grant is None or grant.holder != holder:
                return
            if (
                fencing_token is not None
                and grant.fencing_token != fencing_token
            ):
                return
            self._grant = None

    def holders(self) -> List[str]:
        with self._mutex:
            return [self._grant.holder] if self._grant else []

    def conflicts_with(
        self, keys: Set[str], now: Optional[float] = None
    ) -> Set[str]:
        with self._mutex:
            self._sweep(now)
            return {self._grant.holder} if self._grant else set()


class ResourceLockManager(LockManager):
    """Per-resource locks with atomic multi-key acquisition."""

    def __init__(self) -> None:
        super().__init__()
        self._owner_of: Dict[str, str] = {}  # key -> holder
        self._grants: Dict[str, LockGrant] = {}  # holder -> grant
        self._next_fence = 1

    def _grant_for(self, holder: str) -> Optional[LockGrant]:
        return self._grants.get(holder)

    def _drop_holder(self, holder: str) -> None:
        self._drop(holder)

    def _drop(self, holder: str) -> None:
        grant = self._grants.pop(holder, None)
        if grant is None:
            return
        for key in grant.keys:
            if self._owner_of.get(key) == holder:
                del self._owner_of[key]

    def _sweep(self, now: Optional[float]) -> None:
        if now is None:
            return
        expired = [
            holder
            for holder, grant in self._grants.items()
            if grant.expired(now)
        ]
        for holder in expired:
            self._drop(holder)

    def try_acquire(
        self,
        holder: str,
        keys: Set[str],
        now: float,
        ttl: Optional[float] = None,
    ) -> Optional[LockGrant]:
        with self._mutex:
            self._sweep(now)
            if holder in self._grants:
                raise RuntimeError(f"{holder!r} already holds a lock set")
            if any(key in self._owner_of for key in keys):
                return None
            for key in keys:
                self._owner_of[key] = holder
            fence = self._next_fence
            self._next_fence += 1
            grant = LockGrant(
                holder=holder,
                keys=frozenset(keys),
                acquired_at=now,
                expires_at=math.inf if ttl is None else now + ttl,
                fencing_token=fence,
            )
            self._grants[holder] = grant
            return grant

    def release(
        self, holder: str, fencing_token: Optional[int] = None
    ) -> None:
        with self._mutex:
            grant = self._grants.get(holder)
            if grant is None:
                return
            if (
                fencing_token is not None
                and grant.fencing_token != fencing_token
            ):
                return
            self._drop(holder)

    def holders(self) -> List[str]:
        with self._mutex:
            return sorted(self._grants)

    def conflicts_with(
        self, keys: Set[str], now: Optional[float] = None
    ) -> Set[str]:
        with self._mutex:
            self._sweep(now)
            return {
                self._owner_of[key] for key in keys if key in self._owner_of
            }

    def held_keys(self, holder: str) -> FrozenSet[str]:
        with self._mutex:
            grant = self._grants.get(holder)
            return grant.keys if grant else frozenset()
