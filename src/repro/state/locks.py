"""Lock managers for concurrent infrastructure updates (3.4).

Two implementations of one interface:

* :class:`GlobalLockManager` -- today's practice: any update locks the
  entire state ("existing tools simply lock the entire cloud
  infrastructure for modifications at any scale").
* :class:`ResourceLockManager` -- the cloudless design: per-resource
  locks; mutual exclusion arises only when two teams touch the same
  resource. Lock sets are acquired atomically (all-or-nothing) so
  deadlock is impossible by construction.

Lock managers are pure bookkeeping over simulated time; the update
coordinator (:mod:`repro.update.coordinator`) drives waiting/retry as
discrete events and records wait statistics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set

GLOBAL_KEY = "__entire_infrastructure__"


@dataclasses.dataclass
class LockGrant:
    """A currently-held lock set."""

    holder: str
    keys: FrozenSet[str]
    acquired_at: float


class LockManager:
    """Interface both lock managers implement."""

    def try_acquire(self, holder: str, keys: Set[str], now: float) -> bool:
        """Atomically acquire every key (or nothing). False on conflict."""
        raise NotImplementedError

    def release(self, holder: str) -> None:
        raise NotImplementedError

    def holders(self) -> List[str]:
        raise NotImplementedError

    def conflicts_with(self, keys: Set[str]) -> Set[str]:
        """Which current holders block an acquisition of ``keys``."""
        raise NotImplementedError


class GlobalLockManager(LockManager):
    """One big lock: a second holder always waits."""

    def __init__(self) -> None:
        self._grant: Optional[LockGrant] = None

    def try_acquire(self, holder: str, keys: Set[str], now: float) -> bool:
        if self._grant is not None:
            return False
        self._grant = LockGrant(
            holder=holder, keys=frozenset([GLOBAL_KEY]), acquired_at=now
        )
        return True

    def release(self, holder: str) -> None:
        if self._grant is not None and self._grant.holder == holder:
            self._grant = None

    def holders(self) -> List[str]:
        return [self._grant.holder] if self._grant else []

    def conflicts_with(self, keys: Set[str]) -> Set[str]:
        return {self._grant.holder} if self._grant else set()


class ResourceLockManager(LockManager):
    """Per-resource locks with atomic multi-key acquisition."""

    def __init__(self) -> None:
        self._owner_of: Dict[str, str] = {}  # key -> holder
        self._grants: Dict[str, LockGrant] = {}  # holder -> grant

    def try_acquire(self, holder: str, keys: Set[str], now: float) -> bool:
        if holder in self._grants:
            raise RuntimeError(f"{holder!r} already holds a lock set")
        if any(key in self._owner_of for key in keys):
            return False
        for key in keys:
            self._owner_of[key] = holder
        self._grants[holder] = LockGrant(
            holder=holder, keys=frozenset(keys), acquired_at=now
        )
        return True

    def release(self, holder: str) -> None:
        grant = self._grants.pop(holder, None)
        if grant is None:
            return
        for key in grant.keys:
            if self._owner_of.get(key) == holder:
                del self._owner_of[key]

    def holders(self) -> List[str]:
        return sorted(self._grants)

    def conflicts_with(self, keys: Set[str]) -> Set[str]:
        return {
            self._owner_of[key] for key in keys if key in self._owner_of
        }

    def held_keys(self, holder: str) -> FrozenSet[str]:
        grant = self._grants.get(holder)
        return grant.keys if grant else frozenset()
