"""State snapshot history -- the "time machine" (3.4).

Every apply/update checkpoints the state document together with the
configuration source that produced it, so rollback planning can pair
"the config I want to return to" with "the state the world was in".

Storage is **O(changed) per checkpoint**: each version records a delta
against its parent (entries set, addresses removed, outputs when they
changed), with a full keyframe every ``keyframe_interval`` versions so
reconstruction never replays an unbounded chain. Because the document
layer is copy-on-write with sealed entries, a delta holds *references*
to the entries -- no serialisation, no deep copies -- and computing it
is an identity-fast pointer scan: entries shared with the parent are
skipped with one ``is`` check.

``get()``/``checkout()``/``diff()`` reconstruct documents on demand
(nearest keyframe plus forward delta replay) and memoise the result;
the latest version is always available without reconstruction.
``Snapshot.state`` must be treated as read-only -- use
:meth:`SnapshotHistory.checkout` for a mutable working copy.

This checkpoint/delta/replay shape is deliberately the same one a
training stack uses for model checkpointing: cheap incremental saves,
periodic full keyframes, deterministic replay.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional

from ..addressing import ResourceAddress
from ..perf import PERF
from .document import StateDocument, deep_value_copy


@dataclasses.dataclass
class Snapshot:
    """One checkpoint of (configuration, state) at a point in time."""

    version: int
    timestamp: float
    state: StateDocument
    config_sources: Dict[str, str]
    description: str = ""

    @property
    def config_hash(self) -> str:
        digest = hashlib.sha256()
        for fname in sorted(self.config_sources):
            digest.update(fname.encode())
            digest.update(self.config_sources[fname].encode())
        return digest.hexdigest()[:12]


@dataclasses.dataclass
class SnapshotDiff:
    added: List[str]
    removed: List[str]
    changed: List[str]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)


@dataclasses.dataclass
class _Record:
    """Internal storage for one version: a keyframe or a delta."""

    version: int
    timestamp: float
    config_sources: Dict[str, str]
    description: str
    #: full document (an O(1) COW copy) -- set for keyframes only
    keyframe: Optional[StateDocument] = None
    #: address -> entry set/overwritten since the parent version
    delta_set: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: addresses removed since the parent version
    delta_removed: List[str] = dataclasses.field(default_factory=list)
    serial: int = 0
    lineage: str = "root"
    #: outputs at this version, or None when unchanged from the parent
    outputs: Optional[Dict[str, Any]] = None

    @property
    def is_keyframe(self) -> bool:
        return self.keyframe is not None


class SnapshotHistory:
    """Append-only version history with diff and checkout."""

    def __init__(self, keyframe_interval: int = 16) -> None:
        self.keyframe_interval = max(1, keyframe_interval)
        self._records: List[_Record] = []
        self._docs: Dict[int, StateDocument] = {}  # materialised versions
        self._last_keyframe = 0

    def checkpoint(
        self,
        state: StateDocument,
        config_sources: Dict[str, str],
        timestamp: float,
        description: str = "",
    ) -> Snapshot:
        doc = state.copy()  # O(1): shares the entry map
        version = len(self._records) + 1
        parent = self._docs.get(version - 1)
        record = _Record(
            version=version,
            timestamp=timestamp,
            config_sources=dict(config_sources),
            description=description,
            serial=doc.serial,
            lineage=doc.lineage,
        )
        make_keyframe = (
            parent is None
            or version - self._last_keyframe >= self.keyframe_interval
        )
        if not make_keyframe:
            assert parent is not None
            delta_set, delta_removed = _map_delta(
                parent.entries_map(), doc.entries_map()
            )
            # a delta touching most of the estate is a keyframe in denial
            if len(delta_set) + len(delta_removed) > max(8, len(doc)) // 2:
                make_keyframe = True
            else:
                record.delta_set = delta_set
                record.delta_removed = delta_removed
                if parent.outputs != doc.outputs:
                    record.outputs = deep_value_copy(doc.outputs)
                PERF.count("snapshot.deltas")
                PERF.count(
                    "snapshot.delta_entries",
                    len(delta_set) + len(delta_removed),
                )
                if PERF.enabled:
                    PERF.count(
                        "snapshot.delta_bytes", len(_delta_json(record))
                    )
        if make_keyframe:
            record.keyframe = doc
            record.outputs = deep_value_copy(doc.outputs)
            self._last_keyframe = version
            PERF.count("snapshot.keyframes")
        self._records.append(record)
        self._docs[version] = doc
        PERF.count("snapshot.checkpoints")
        return Snapshot(
            version=version,
            timestamp=timestamp,
            state=doc,
            config_sources=record.config_sources,
            description=description,
        )

    # -- access ------------------------------------------------------------

    def latest(self) -> Optional[Snapshot]:
        return self.get(len(self._records)) if self._records else None

    def get(self, version: int) -> Snapshot:
        if not 1 <= version <= len(self._records):
            raise KeyError(f"no snapshot version {version}")
        record = self._records[version - 1]
        return Snapshot(
            version=record.version,
            timestamp=record.timestamp,
            state=self._materialize(version),
            config_sources=record.config_sources,
            description=record.description,
        )

    def checkout(self, version: int) -> StateDocument:
        """A mutable working copy of the state at ``version`` (O(1))."""
        return self._materialize(version).copy()

    def versions(self) -> List[int]:
        return [r.version for r in self._records]

    def __len__(self) -> int:
        return len(self._records)

    def _materialize(self, version: int) -> StateDocument:
        if not 1 <= version <= len(self._records):
            raise KeyError(f"no snapshot version {version}")
        doc = self._docs.get(version)
        if doc is not None:
            return doc
        # walk back to the nearest materialised-or-keyframe ancestor
        base = version
        while base >= 1 and base not in self._docs:
            if self._records[base - 1].is_keyframe:
                self._docs[base] = self._records[base - 1].keyframe
                break
            base -= 1
        for v in range(base + 1, version + 1):
            record = self._records[v - 1]
            if record.is_keyframe:
                self._docs[v] = record.keyframe
                continue
            parent = self._docs[v - 1]
            doc = parent.copy()
            for entry in record.delta_set.values():
                doc.set(entry)
            for key in record.delta_removed:
                doc.remove(ResourceAddress.parse(key))
            doc.serial = record.serial
            doc.lineage = record.lineage
            if record.outputs is not None:
                doc.outputs = deep_value_copy(record.outputs)
            self._docs[v] = doc
            PERF.count("snapshot.reconstructions")
        return self._docs[version]

    # -- diff ----------------------------------------------------------------

    def diff(self, old_version: int, new_version: int) -> SnapshotDiff:
        """Addresses added/removed/changed between two checkpoints.

        ``changed`` considers the cloud identity as well as the attrs: a
        delete->create replacement that lands identical attrs under a
        new ``resource_id`` is a change, not a no-op.
        """
        old = self._materialize(old_version)
        new = self._materialize(new_version)
        old_map = old.entries_map()
        new_map = new.entries_map()
        if old_map is new_map:
            return SnapshotDiff(added=[], removed=[], changed=[])
        added = sorted(k for k in new_map if k not in old_map)
        removed = sorted(k for k in old_map if k not in new_map)
        changed = []
        for key, new_entry in new_map.items():
            old_entry = old_map.get(key)
            if old_entry is None or old_entry is new_entry:
                continue
            if (
                old_entry.attrs != new_entry.attrs
                or old_entry.resource_id != new_entry.resource_id
            ):
                changed.append(key)
        changed.sort()
        return SnapshotDiff(added=added, removed=removed, changed=changed)

    # -- persistence -------------------------------------------------------

    def export_records(self) -> List[Dict[str, Any]]:
        """Delta-journal form for persistence: O(changed) per version."""
        out: List[Dict[str, Any]] = []
        for record in self._records:
            item: Dict[str, Any] = {
                "version": record.version,
                "timestamp": record.timestamp,
                "config_sources": record.config_sources,
                "description": record.description,
            }
            if record.is_keyframe:
                assert record.keyframe is not None
                item["state"] = json.loads(record.keyframe.to_json())
            else:
                item["delta"] = _delta_dict(record)
            out.append(item)
        return out

    @classmethod
    def import_records(
        cls, data: List[Dict[str, Any]], keyframe_interval: int = 16
    ) -> "SnapshotHistory":
        """Rebuild a history from :meth:`export_records` output.

        Also accepts the historical full-state-per-version form (every
        item carrying ``state``); such items simply all become
        keyframes.
        """
        from .document import ResourceState

        history = cls(keyframe_interval=keyframe_interval)
        for item in data:
            version = item["version"]
            record = _Record(
                version=version,
                timestamp=item.get("timestamp", 0.0),
                config_sources=dict(item.get("config_sources", {})),
                description=item.get("description", ""),
            )
            if "state" in item:
                doc = StateDocument.from_json(json.dumps(item["state"]))
                record.keyframe = doc
                record.serial = doc.serial
                record.lineage = doc.lineage
                record.outputs = deep_value_copy(doc.outputs)
                history._last_keyframe = version
                history._records.append(record)
                history._docs[version] = doc
                continue
            delta = item["delta"]
            parent = history._docs.get(version - 1)
            if parent is None:
                raise ValueError(
                    f"snapshot delta v{version} has no parent to apply to"
                )
            record.delta_set = {
                e["address"]: ResourceState.from_dict(e).seal()
                for e in delta.get("set", [])
            }
            record.delta_removed = list(delta.get("removed", []))
            record.serial = delta.get("serial", parent.serial)
            record.lineage = delta.get("lineage", parent.lineage)
            if "outputs" in delta:
                record.outputs = deep_value_copy(delta["outputs"])
            history._records.append(record)
            history._materialize(version)
        return history


def _map_delta(old_map, new_map):
    """(set, removed) between two entry maps, identity-fast."""
    if old_map is new_map:
        return {}, []
    delta_set = {}
    for key, entry in new_map.items():
        prev = old_map.get(key)
        if prev is entry:
            continue  # structurally shared: unchanged by construction
        if prev is None or prev != entry:
            delta_set[key] = entry
    delta_removed = [k for k in old_map if k not in new_map]
    return delta_set, delta_removed


def _delta_dict(record: _Record) -> Dict[str, Any]:
    delta: Dict[str, Any] = {
        "set": [
            record.delta_set[k].to_dict() for k in sorted(record.delta_set)
        ],
        "removed": sorted(record.delta_removed),
        "serial": record.serial,
        "lineage": record.lineage,
    }
    if record.outputs is not None:
        delta["outputs"] = record.outputs
    return delta


def _delta_json(record: _Record) -> str:
    return json.dumps(_delta_dict(record), sort_keys=True)
