"""State snapshot history -- the "time machine" (3.4).

Every apply/update checkpoints the state document together with the
configuration source that produced it, so rollback planning can pair
"the config I want to return to" with "the state the world was in".
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Tuple

from .document import StateDocument


@dataclasses.dataclass
class Snapshot:
    """One checkpoint of (configuration, state) at a point in time."""

    version: int
    timestamp: float
    state: StateDocument
    config_sources: Dict[str, str]
    description: str = ""

    @property
    def config_hash(self) -> str:
        digest = hashlib.sha256()
        for fname in sorted(self.config_sources):
            digest.update(fname.encode())
            digest.update(self.config_sources[fname].encode())
        return digest.hexdigest()[:12]


class SnapshotHistory:
    """Append-only version history with diff and checkout."""

    def __init__(self) -> None:
        self._snapshots: List[Snapshot] = []

    def checkpoint(
        self,
        state: StateDocument,
        config_sources: Dict[str, str],
        timestamp: float,
        description: str = "",
    ) -> Snapshot:
        snap = Snapshot(
            version=len(self._snapshots) + 1,
            timestamp=timestamp,
            state=state.copy(),
            config_sources=dict(config_sources),
            description=description,
        )
        self._snapshots.append(snap)
        return snap

    def latest(self) -> Optional[Snapshot]:
        return self._snapshots[-1] if self._snapshots else None

    def get(self, version: int) -> Snapshot:
        if not 1 <= version <= len(self._snapshots):
            raise KeyError(f"no snapshot version {version}")
        return self._snapshots[version - 1]

    def versions(self) -> List[int]:
        return [s.version for s in self._snapshots]

    def __len__(self) -> int:
        return len(self._snapshots)

    def diff(self, old_version: int, new_version: int) -> "SnapshotDiff":
        """Addresses added/removed/changed between two checkpoints."""
        old = self.get(old_version).state
        new = self.get(new_version).state
        old_addrs = {str(a) for a in old.addresses()}
        new_addrs = {str(a) for a in new.addresses()}
        added = sorted(new_addrs - old_addrs)
        removed = sorted(old_addrs - new_addrs)
        changed = []
        for addr in sorted(old_addrs & new_addrs):
            old_entry = old.get(_parse(addr))
            new_entry = new.get(_parse(addr))
            assert old_entry is not None and new_entry is not None
            if old_entry.attrs != new_entry.attrs:
                changed.append(addr)
        return SnapshotDiff(added=added, removed=removed, changed=changed)


@dataclasses.dataclass
class SnapshotDiff:
    added: List[str]
    removed: List[str]
    changed: List[str]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)


def _parse(addr: str):
    from ..addressing import ResourceAddress

    return ResourceAddress.parse(addr)
