"""Frozen deep-copy reference for the golden-state layer.

This module preserves the pre-COW (PR 1 era) ``StateDocument`` /
``SnapshotHistory`` implementation verbatim: ``copy()`` round-trips
every resource through ``json.loads(json.dumps(...))``, ``checkpoint``
deep-copies the whole estate, ``by_resource_id`` is an O(n) linear
scan. It exists for two reasons:

* the golden equivalence tests (``tests/golden/test_state_golden.py``)
  drive identical mutation sequences through this reference and the
  copy-on-write document in :mod:`repro.state.document` and assert
  byte-identical ``to_json()`` plus equal snapshot ``diff``/``checkout``
  results at every step;
* the state benchmark (``benchmarks/bench_p3_state.py``) reports the
  COW speedup against this implementation.

The only intentional divergence from the historical code is
``ReferenceSnapshotHistory.diff``, which carries the same
replaced-resource fix as the live implementation (a delete->create
replacement that lands identical attrs under a new ``resource_id``
must surface in ``changed``); without it the two diffs would disagree
on replacement sequences for the wrong reason.

Do not "improve" this module; it is a measuring stick.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterator, List, Optional

from ..addressing import ResourceAddress


@dataclasses.dataclass
class ReferenceResourceState:
    """State entry for one deployed resource instance (mutable)."""

    address: ResourceAddress
    resource_id: str
    provider: str
    attrs: Dict[str, Any]
    region: str = ""
    created_at: float = 0.0
    updated_at: float = 0.0
    dependencies: List[str] = dataclasses.field(default_factory=list)

    @property
    def type(self) -> str:
        return self.address.type

    def to_dict(self) -> Dict[str, Any]:
        return {
            "address": str(self.address),
            "resource_id": self.resource_id,
            "provider": self.provider,
            "attrs": self.attrs,
            "region": self.region,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "dependencies": list(self.dependencies),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReferenceResourceState":
        return cls(
            address=ResourceAddress.parse(data["address"]),
            resource_id=data["resource_id"],
            provider=data["provider"],
            attrs=dict(data["attrs"]),
            region=data.get("region", ""),
            created_at=data.get("created_at", 0.0),
            updated_at=data.get("updated_at", 0.0),
            dependencies=list(data.get("dependencies", [])),
        )

    def copy(self) -> "ReferenceResourceState":
        return ReferenceResourceState(
            address=self.address,
            resource_id=self.resource_id,
            provider=self.provider,
            attrs=json.loads(json.dumps(self.attrs)),
            region=self.region,
            created_at=self.created_at,
            updated_at=self.updated_at,
            dependencies=list(self.dependencies),
        )


class ReferenceStateDocument:
    """The historical full-deep-copy state document."""

    def __init__(self, serial: int = 0, lineage: str = "root"):
        self.serial = serial
        self.lineage = lineage
        self._resources: Dict[str, ReferenceResourceState] = {}
        self.outputs: Dict[str, Any] = {}

    # -- resource access --------------------------------------------------

    def get(self, address: ResourceAddress) -> Optional[ReferenceResourceState]:
        return self._resources.get(str(address))

    def set(self, entry: ReferenceResourceState) -> None:
        self._resources[str(entry.address)] = entry

    def remove(self, address: ResourceAddress) -> Optional[ReferenceResourceState]:
        return self._resources.pop(str(address), None)

    def addresses(self) -> List[ResourceAddress]:
        return sorted(r.address for r in self._resources.values())

    def resources(self) -> List[ReferenceResourceState]:
        return [self._resources[str(a)] for a in self.addresses()]

    def instances_of(
        self, rtype: str, name: str, module_path: tuple = (), mode: str = "managed"
    ) -> List[ReferenceResourceState]:
        out = [
            r
            for r in self._resources.values()
            if r.address.type == rtype
            and r.address.name == name
            and r.address.module_path == module_path
            and r.address.mode == mode
        ]
        return sorted(out, key=lambda r: r.address)

    def by_resource_id(self, resource_id: str) -> Optional[ReferenceResourceState]:
        for entry in self._resources.values():
            if entry.resource_id == resource_id:
                return entry
        return None

    def __len__(self) -> int:
        return len(self._resources)

    def __contains__(self, address: ResourceAddress) -> bool:
        return str(address) in self._resources

    def __iter__(self) -> Iterator[ReferenceResourceState]:
        return iter(self.resources())

    # -- lifecycle ----------------------------------------------------------

    def bump(self) -> None:
        self.serial += 1

    def copy(self) -> "ReferenceStateDocument":
        out = ReferenceStateDocument(serial=self.serial, lineage=self.lineage)
        for entry in self._resources.values():
            out.set(entry.copy())
        out.outputs = json.loads(json.dumps(self.outputs))
        return out

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "serial": self.serial,
                "lineage": self.lineage,
                "outputs": self.outputs,
                "resources": [r.to_dict() for r in self.resources()],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ReferenceStateDocument":
        data = json.loads(text)
        doc = cls(serial=data.get("serial", 0), lineage=data.get("lineage", "root"))
        doc.outputs = dict(data.get("outputs", {}))
        for entry in data.get("resources", []):
            doc.set(ReferenceResourceState.from_dict(entry))
        return doc


@dataclasses.dataclass
class ReferenceSnapshot:
    version: int
    timestamp: float
    state: ReferenceStateDocument
    config_sources: Dict[str, str]
    description: str = ""


@dataclasses.dataclass
class ReferenceSnapshotDiff:
    added: List[str]
    removed: List[str]
    changed: List[str]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)


class ReferenceSnapshotHistory:
    """Full-document-per-version history (deep copy on every checkpoint)."""

    def __init__(self) -> None:
        self._snapshots: List[ReferenceSnapshot] = []

    def checkpoint(
        self,
        state: ReferenceStateDocument,
        config_sources: Dict[str, str],
        timestamp: float,
        description: str = "",
    ) -> ReferenceSnapshot:
        snap = ReferenceSnapshot(
            version=len(self._snapshots) + 1,
            timestamp=timestamp,
            state=state.copy(),
            config_sources=dict(config_sources),
            description=description,
        )
        self._snapshots.append(snap)
        return snap

    def latest(self) -> Optional[ReferenceSnapshot]:
        return self._snapshots[-1] if self._snapshots else None

    def get(self, version: int) -> ReferenceSnapshot:
        if not 1 <= version <= len(self._snapshots):
            raise KeyError(f"no snapshot version {version}")
        return self._snapshots[version - 1]

    def checkout(self, version: int) -> ReferenceStateDocument:
        return self.get(version).state.copy()

    def versions(self) -> List[int]:
        return [s.version for s in self._snapshots]

    def __len__(self) -> int:
        return len(self._snapshots)

    def diff(self, old_version: int, new_version: int) -> ReferenceSnapshotDiff:
        old = self.get(old_version).state
        new = self.get(new_version).state
        old_addrs = {str(a) for a in old.addresses()}
        new_addrs = {str(a) for a in new.addresses()}
        added = sorted(new_addrs - old_addrs)
        removed = sorted(old_addrs - new_addrs)
        changed = []
        for addr in sorted(old_addrs & new_addrs):
            old_entry = old.get(ResourceAddress.parse(addr))
            new_entry = new.get(ResourceAddress.parse(addr))
            assert old_entry is not None and new_entry is not None
            if (
                old_entry.attrs != new_entry.attrs
                or old_entry.resource_id != new_entry.resource_id
            ):
                changed.append(addr)
        return ReferenceSnapshotDiff(added=added, removed=removed, changed=changed)
