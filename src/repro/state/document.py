"""The IaC state document -- the "golden state" of the infrastructure.

Maps resource addresses to cloud-level identities and the attribute
snapshot observed at last apply. The paper calls for "an IaC database
that reflects the golden state of the cloud infrastructure" (3.4);
:class:`StateDocument` is that record, and the snapshot history in
:mod:`repro.state.snapshots` is its time machine.

At 10k-resource estates (PR 1's scale target) the original
Terraform-shaped implementation -- ``copy()`` round-tripping every
resource through ``json.loads(json.dumps(...))``, ``by_resource_id``
scanning linearly -- dominated every checkpoint, rollback checkout and
drift poll. This rewrite makes the document **copy-on-write with
immutable entries**:

* every :class:`ResourceState` stored in a document is *sealed*:
  top-level field assignment raises :class:`ImmutableEntryError`.
  Mutation happens by building a successor entry
  (:meth:`ResourceState.replace`) and :meth:`StateDocument.set`-ing it,
  so entries can be structurally shared between arbitrarily many
  documents and snapshots.
* :meth:`StateDocument.copy` is O(1): the entry map is shared between
  the copies (a refcount cell tracks sharing) and the first mutation on
  either side re-materialises only the map -- a dict of references --
  never the entries.
* secondary indexes are maintained, not scanned: ``by_resource_id`` is
  a dict hit, ``instances_of`` reads a per-declaration bucket, and
  ``addresses()``/``resources()`` reuse a sorted-key cache invalidated
  only when the address *set* changes.

``to_json()`` stays byte-identical to the historical format (pinned by
``tests/golden/test_state_golden.py`` against the frozen deep-copy
implementation in :mod:`repro.state.reference`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..addressing import ResourceAddress
from ..perf import PERF


class ImmutableEntryError(TypeError):
    """Attempted in-place mutation of a sealed state entry.

    Entries stored in a :class:`StateDocument` are shared structurally
    with copies and snapshots; mutate by ``doc.set(entry.replace(...))``
    instead.
    """


def deep_value_copy(value: Any) -> Any:
    """Fast deep copy of JSON-shaped attribute values.

    Matches the semantics of the historical ``json.loads(json.dumps(v))``
    round trip (tuples become lists) without serialising.
    """
    if isinstance(value, dict):
        return {k: deep_value_copy(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [deep_value_copy(v) for v in value]
    return value


@dataclasses.dataclass
class ResourceState:
    """State entry for one deployed resource instance.

    Freshly constructed entries are mutable; storing one in a
    :class:`StateDocument` seals it (see :meth:`seal`). Derive changed
    versions with :meth:`replace` -- unchanged ``attrs`` stay shared
    with the parent entry, so a field-level touch is O(1), not
    O(estate).
    """

    address: ResourceAddress
    resource_id: str
    provider: str
    attrs: Dict[str, Any]
    region: str = ""
    created_at: float = 0.0
    updated_at: float = 0.0
    dependencies: List[str] = dataclasses.field(default_factory=list)

    def __setattr__(self, name: str, value: Any) -> None:
        if getattr(self, "_sealed", False):
            raise ImmutableEntryError(
                f"state entry {self.address} is sealed; use "
                f"doc.set(entry.replace({name}=...)) instead of in-place "
                f"assignment"
            )
        object.__setattr__(self, name, value)

    # -- immutability ------------------------------------------------------

    def seal(self) -> "ResourceState":
        """Freeze top-level fields; idempotent."""
        object.__setattr__(self, "_sealed", True)
        return self

    @property
    def sealed(self) -> bool:
        return bool(getattr(self, "_sealed", False))

    def replace(self, **changes: Any) -> "ResourceState":
        """A new (unsealed) entry with ``changes`` applied.

        Fields not named in ``changes`` are shared with this entry --
        safe because sealed entries never mutate. Callers that intend to
        mutate ``attrs``/``dependencies`` in place afterwards must pass
        fresh containers.
        """
        fields = {
            "address": self.address,
            "resource_id": self.resource_id,
            "provider": self.provider,
            "attrs": self.attrs,
            "region": self.region,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "dependencies": self.dependencies,
        }
        fields.update(changes)
        return ResourceState(**fields)

    @property
    def type(self) -> str:
        return self.address.type

    def to_dict(self) -> Dict[str, Any]:
        return {
            "address": str(self.address),
            "resource_id": self.resource_id,
            "provider": self.provider,
            "attrs": self.attrs,
            "region": self.region,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "dependencies": list(self.dependencies),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResourceState":
        return cls(
            address=ResourceAddress.parse(data["address"]),
            resource_id=data["resource_id"],
            provider=data["provider"],
            attrs=dict(data["attrs"]),
            region=data.get("region", ""),
            created_at=data.get("created_at", 0.0),
            updated_at=data.get("updated_at", 0.0),
            dependencies=list(data.get("dependencies", [])),
        )

    def copy(self) -> "ResourceState":
        """A private, mutable deep copy (attrs and dependencies owned)."""
        return ResourceState(
            address=self.address,
            resource_id=self.resource_id,
            provider=self.provider,
            attrs=deep_value_copy(self.attrs),
            region=self.region,
            created_at=self.created_at,
            updated_at=self.updated_at,
            dependencies=list(self.dependencies),
        )


def _decl_key(address: ResourceAddress) -> Tuple[str, str, tuple, str]:
    return (address.type, address.name, address.module_path, address.mode)


class StateDocument:
    """All resource states plus outputs, with a monotonically
    increasing ``serial`` for optimistic concurrency.

    Copy-on-write: ``copy()`` shares the entry map (O(1)); the first
    ``set``/``remove`` on a sharing document clones the map of
    *references* only. Entries themselves are sealed and never copied.
    """

    def __init__(self, serial: int = 0, lineage: str = "root"):
        self.serial = serial
        self.lineage = lineage
        self._resources: Dict[str, ResourceState] = {}
        #: refcount cell shared by every document sharing ``_resources``
        self._share: List[int] = [1]
        self.outputs: Dict[str, Any] = {}
        # lazy, per-document secondary indexes (never shared via copy)
        self._by_id: Optional[Dict[str, Dict[str, ResourceState]]] = None
        self._by_decl: Optional[Dict[tuple, Dict[str, ResourceState]]] = None
        self._sorted_keys: Optional[List[Tuple[ResourceAddress, str]]] = None

    # -- copy-on-write machinery -------------------------------------------

    def _own(self) -> None:
        """Ensure this document exclusively owns its entry map."""
        if self._share[0] > 1:
            self._share[0] -= 1
            self._resources = dict(self._resources)
            self._share = [1]
            PERF.count("state.copy_unshared")

    # -- resource access --------------------------------------------------

    def get(self, address: ResourceAddress) -> Optional[ResourceState]:
        return self._resources.get(str(address))

    def entries_map(self) -> Mapping[str, ResourceState]:
        """The internal address->entry map (read-only contract).

        Exposed for the snapshot/delta layer, which exploits entry
        *identity* across shared documents to do O(changed) work.
        """
        return self._resources

    def set(self, entry: ResourceState) -> None:
        entry.seal()
        self._own()
        key = str(entry.address)
        prev = self._resources.get(key)
        self._resources[key] = entry
        if prev is None:
            self._sorted_keys = None  # address set changed
        if self._by_id is not None:
            if prev is not None and prev.resource_id:
                bucket = self._by_id.get(prev.resource_id)
                if bucket is not None:
                    bucket.pop(key, None)
                    if not bucket:
                        del self._by_id[prev.resource_id]
            if entry.resource_id:
                self._by_id.setdefault(entry.resource_id, {})[key] = entry
        if self._by_decl is not None:
            self._by_decl.setdefault(_decl_key(entry.address), {})[key] = entry

    def remove(self, address: ResourceAddress) -> Optional[ResourceState]:
        key = str(address)
        if key not in self._resources:
            return None
        self._own()
        entry = self._resources.pop(key)
        self._sorted_keys = None
        if self._by_id is not None and entry.resource_id:
            bucket = self._by_id.get(entry.resource_id)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._by_id[entry.resource_id]
        if self._by_decl is not None:
            bucket2 = self._by_decl.get(_decl_key(entry.address))
            if bucket2 is not None:
                bucket2.pop(key, None)
        return entry

    def _sorted(self) -> List[Tuple[ResourceAddress, str]]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(
                ((e.address, k) for k, e in self._resources.items()),
                key=lambda pair: pair[0],
            )
        return self._sorted_keys

    def addresses(self) -> List[ResourceAddress]:
        return [addr for addr, _ in self._sorted()]

    def resources(self) -> List[ResourceState]:
        return [self._resources[key] for _, key in self._sorted()]

    def instances_of(
        self, rtype: str, name: str, module_path: tuple = (), mode: str = "managed"
    ) -> List[ResourceState]:
        """Every instance of one declaration, sorted by instance key."""
        if self._by_decl is None:
            index: Dict[tuple, Dict[str, ResourceState]] = {}
            for key, entry in self._resources.items():
                index.setdefault(_decl_key(entry.address), {})[key] = entry
            self._by_decl = index
        bucket = self._by_decl.get((rtype, name, module_path, mode))
        if not bucket:
            return []
        return sorted(bucket.values(), key=lambda r: r.address)

    def by_resource_id(self, resource_id: str) -> Optional[ResourceState]:
        """Indexed cloud-id -> entry lookup (O(1) amortised).

        Empty ids (a mid-replacement checkpoint clears ``resource_id``)
        fall back to the historical first-match scan; they are not
        unique, so they are not indexed.
        """
        if not resource_id:
            for entry in self._resources.values():
                if entry.resource_id == resource_id:
                    return entry
            return None
        if self._by_id is None:
            index: Dict[str, Dict[str, ResourceState]] = {}
            for key, entry in self._resources.items():
                if entry.resource_id:
                    index.setdefault(entry.resource_id, {})[key] = entry
            self._by_id = index
        PERF.count("state.by_id_lookups")
        bucket = self._by_id.get(resource_id)
        if not bucket:
            return None
        return next(iter(bucket.values()))

    def __len__(self) -> int:
        return len(self._resources)

    def __contains__(self, address: ResourceAddress) -> bool:
        return str(address) in self._resources

    def __iter__(self) -> Iterator[ResourceState]:
        return iter(self.resources())

    # -- lifecycle ----------------------------------------------------------

    def bump(self) -> None:
        self.serial += 1

    def copy(self) -> "StateDocument":
        """O(1) copy-on-write snapshot of this document.

        Entries and the entry map are shared; either side re-materialises
        the map (references only) on its first mutation. ``outputs`` is
        deep-copied -- it is small and callers mutate it in place.
        """
        out = StateDocument.__new__(StateDocument)
        out.serial = self.serial
        out.lineage = self.lineage
        out._resources = self._resources
        self._share[0] += 1
        out._share = self._share
        out.outputs = deep_value_copy(self.outputs)
        out._by_id = None
        out._by_decl = None
        out._sorted_keys = None
        PERF.count("state.copies")
        PERF.count("state.copy_entries_shared", len(self._resources))
        return out

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "serial": self.serial,
                "lineage": self.lineage,
                "outputs": self.outputs,
                "resources": [r.to_dict() for r in self.resources()],
            },
            indent=2,
            sort_keys=True,
        )

    def content_hash(self) -> str:
        """sha256 over *what is deployed*, excluding timestamps.

        Two schedules of the same plan (interleaved vs pool-forked,
        barrier vs overlapped waves) converge on identical resources,
        ids, and attributes, but their per-worker concurrency budgets
        give each resource a different completion time. This digest is
        the canonical equality check across schedules: everything in
        :meth:`to_json` except ``created_at``/``updated_at`` and the
        serial (which counts mutations, not content).
        """
        resources = []
        for entry in self.resources():
            d = entry.to_dict()
            d.pop("created_at", None)
            d.pop("updated_at", None)
            resources.append(d)
        blob = json.dumps(
            {
                "lineage": self.lineage,
                "outputs": self.outputs,
                "resources": resources,
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "StateDocument":
        data = json.loads(text)
        doc = cls(serial=data.get("serial", 0), lineage=data.get("lineage", "root"))
        doc.outputs = dict(data.get("outputs", {}))
        for entry in data.get("resources", []):
            doc.set(ResourceState.from_dict(entry))
        return doc
