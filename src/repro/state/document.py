"""The IaC state document -- the "golden state" of the infrastructure.

Maps resource addresses to cloud-level identities and the attribute
snapshot observed at last apply. The paper calls for "an IaC database
that reflects the golden state of the cloud infrastructure" (3.4);
:class:`StateDocument` is that record, and the snapshot history in
:mod:`repro.state.snapshots` is its time machine.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterator, List, Optional

from ..addressing import ResourceAddress


@dataclasses.dataclass
class ResourceState:
    """State entry for one deployed resource instance."""

    address: ResourceAddress
    resource_id: str
    provider: str
    attrs: Dict[str, Any]
    region: str = ""
    created_at: float = 0.0
    updated_at: float = 0.0
    dependencies: List[str] = dataclasses.field(default_factory=list)

    @property
    def type(self) -> str:
        return self.address.type

    def to_dict(self) -> Dict[str, Any]:
        return {
            "address": str(self.address),
            "resource_id": self.resource_id,
            "provider": self.provider,
            "attrs": self.attrs,
            "region": self.region,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "dependencies": list(self.dependencies),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResourceState":
        return cls(
            address=ResourceAddress.parse(data["address"]),
            resource_id=data["resource_id"],
            provider=data["provider"],
            attrs=dict(data["attrs"]),
            region=data.get("region", ""),
            created_at=data.get("created_at", 0.0),
            updated_at=data.get("updated_at", 0.0),
            dependencies=list(data.get("dependencies", [])),
        )

    def copy(self) -> "ResourceState":
        return ResourceState(
            address=self.address,
            resource_id=self.resource_id,
            provider=self.provider,
            attrs=json.loads(json.dumps(self.attrs)),
            region=self.region,
            created_at=self.created_at,
            updated_at=self.updated_at,
            dependencies=list(self.dependencies),
        )


class StateDocument:
    """All resource states plus outputs, with a monotonically
    increasing ``serial`` for optimistic concurrency."""

    def __init__(self, serial: int = 0, lineage: str = "root"):
        self.serial = serial
        self.lineage = lineage
        self._resources: Dict[str, ResourceState] = {}
        self.outputs: Dict[str, Any] = {}

    # -- resource access --------------------------------------------------

    def get(self, address: ResourceAddress) -> Optional[ResourceState]:
        return self._resources.get(str(address))

    def set(self, entry: ResourceState) -> None:
        self._resources[str(entry.address)] = entry

    def remove(self, address: ResourceAddress) -> Optional[ResourceState]:
        return self._resources.pop(str(address), None)

    def addresses(self) -> List[ResourceAddress]:
        return sorted(r.address for r in self._resources.values())

    def resources(self) -> List[ResourceState]:
        return [self._resources[str(a)] for a in self.addresses()]

    def instances_of(
        self, rtype: str, name: str, module_path: tuple = (), mode: str = "managed"
    ) -> List[ResourceState]:
        """Every instance of one declaration, sorted by instance key."""
        out = [
            r
            for r in self._resources.values()
            if r.address.type == rtype
            and r.address.name == name
            and r.address.module_path == module_path
            and r.address.mode == mode
        ]
        return sorted(out, key=lambda r: r.address)

    def by_resource_id(self, resource_id: str) -> Optional[ResourceState]:
        for entry in self._resources.values():
            if entry.resource_id == resource_id:
                return entry
        return None

    def __len__(self) -> int:
        return len(self._resources)

    def __contains__(self, address: ResourceAddress) -> bool:
        return str(address) in self._resources

    def __iter__(self) -> Iterator[ResourceState]:
        return iter(self.resources())

    # -- lifecycle ----------------------------------------------------------

    def bump(self) -> None:
        self.serial += 1

    def copy(self) -> "StateDocument":
        out = StateDocument(serial=self.serial, lineage=self.lineage)
        for entry in self._resources.values():
            out.set(entry.copy())
        out.outputs = json.loads(json.dumps(self.outputs))
        return out

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "serial": self.serial,
                "lineage": self.lineage,
                "outputs": self.outputs,
                "resources": [r.to_dict() for r in self.resources()],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "StateDocument":
        data = json.loads(text)
        doc = cls(serial=data.get("serial", 0), lineage=data.get("lineage", "root"))
        doc.outputs = dict(data.get("outputs", {}))
        for entry in data.get("resources", []):
            doc.set(ResourceState.from_dict(entry))
        return doc
