"""Transactional state updates (3.4).

An update is staged as a :class:`StateTransaction`: it declares the
addresses it will read/write, acquires them through a lock manager,
applies mutations to a private working copy, and commits atomically to
the shared document. A :class:`SerializabilityChecker` verifies (for the
experiments) that the interleaved history is conflict-serializable.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Dict, List, Optional, Set

from ..addressing import ResourceAddress
from .document import ResourceState, StateDocument
from .locks import LockGrant, LockManager


class TransactionError(RuntimeError):
    """Raised on commit/usage protocol violations."""


class StaleLeaseError(TransactionError):
    """A commit arrived after the transaction's lock lease expired.

    The fencing check failed: some other holder may have acquired the
    keys in the meantime, so applying this transaction's writes could
    clobber theirs. The transaction is aborted; the caller must re-begin
    and redo its work against the current document.
    """


@dataclasses.dataclass
class _Op:
    kind: str  # "set" | "remove" | "output"
    address: Optional[ResourceAddress] = None
    entry: Optional[ResourceState] = None
    output_name: str = ""
    output_value: Any = None


class StateTransaction:
    """One atomic, isolated batch of state mutations."""

    def __init__(
        self,
        txn_id: str,
        database: "StateDatabase",
        keys: Set[str],
        grant: Optional[LockGrant] = None,
    ):
        self.txn_id = txn_id
        self._db = database
        self.keys = set(keys)
        self.grant = grant
        self._ops: List[_Op] = []
        self._reads: Set[str] = set()
        self.status = "active"  # active | committed | aborted

    # -- staged operations ----------------------------------------------------

    def read(self, address: ResourceAddress) -> Optional[ResourceState]:
        self._require_active()
        self._require_key(str(address))
        self._reads.add(str(address))
        entry = self._db.document.get(address)
        return entry.copy() if entry else None

    def set(self, entry: ResourceState) -> None:
        self._require_active()
        self._require_key(str(entry.address))
        self._ops.append(_Op("set", address=entry.address, entry=entry.copy()))

    def remove(self, address: ResourceAddress) -> None:
        self._require_active()
        self._require_key(str(address))
        self._ops.append(_Op("remove", address=address))

    def set_output(self, name: str, value: Any) -> None:
        self._require_active()
        self._ops.append(_Op("output", output_name=name, output_value=value))

    # -- lifecycle ----------------------------------------------------------

    def commit(self, now: float = 0.0) -> None:
        self._require_active()
        try:
            self._db._apply(self, now)
        except StaleLeaseError:
            self.status = "aborted"
            raise
        self.status = "committed"

    def abort(self) -> None:
        self._require_active()
        self._db._abort(self)
        self.status = "aborted"

    @property
    def write_set(self) -> Set[str]:
        return {
            str(op.address)
            for op in self._ops
            if op.kind in ("set", "remove") and op.address is not None
        }

    @property
    def read_set(self) -> Set[str]:
        return set(self._reads)

    def _require_active(self) -> None:
        if self.status != "active":
            raise TransactionError(f"transaction {self.txn_id} is {self.status}")

    def _require_key(self, key: str) -> None:
        if key not in self.keys:
            raise TransactionError(
                f"transaction {self.txn_id} touched {key} without locking it"
            )


@dataclasses.dataclass
class CommittedTransaction:
    """History entry for serializability checking."""

    txn_id: str
    read_set: Set[str]
    write_set: Set[str]
    begin_at: float
    commit_at: float


class StateDatabase:
    """The lock-managed, transactional home of the golden state."""

    def __init__(
        self,
        document: StateDocument,
        lock_manager: LockManager,
        lease_ttl: Optional[float] = None,
    ):
        self.document = document
        self.locks = lock_manager
        #: when set, every transaction's locks are TTL leases: the
        #: holder must heartbeat via :meth:`renew` and commits are
        #: fence-checked, so a crashed holder's grant expires instead of
        #: blocking every other team forever
        self.lease_ttl = lease_ttl
        self.history: List[CommittedTransaction] = []
        self._active: Dict[str, StateTransaction] = {}
        self._begin_times: Dict[str, float] = {}
        #: serializes begin/renew/commit/abort so a lease cannot lapse
        #: (nor its keys be re-granted) between the fencing check and
        #: the document writes of a commit
        self._mutex = threading.RLock()

    def begin(
        self, txn_id: str, keys: Set[str], now: float
    ) -> Optional[StateTransaction]:
        """Start a transaction holding ``keys``; None if locks unavailable."""
        with self._mutex:
            if txn_id in self._active:
                raise TransactionError(
                    f"transaction id {txn_id} already active"
                )
            grant = self.locks.try_acquire(
                txn_id, keys, now, ttl=self.lease_ttl
            )
            if not grant:
                return None
            txn = StateTransaction(txn_id, self, keys, grant=grant)
            self._active[txn_id] = txn
            self._begin_times[txn_id] = now
            return txn

    def renew(self, txn_id: str, now: float) -> bool:
        """Heartbeat a transaction's lease; False if it already lapsed."""
        if self.lease_ttl is None:
            return True
        return self.locks.renew(txn_id, now, ttl=self.lease_ttl) is not None

    def _apply(self, txn: StateTransaction, now: float) -> None:
        with self._mutex:
            if self.lease_ttl is not None:
                grant = txn.grant
                fence = grant.fencing_token if grant is not None else -1
                # atomic validate-and-release: commit_fence checks the
                # token and surrenders the grant in one step, so a lease
                # that lapsed by `now` -- even one whose keys another
                # holder has since re-acquired -- deterministically
                # raises instead of depending on sweep order
                if not self.locks.commit_fence(txn.txn_id, fence, now):
                    self._abort_locked(txn)
                    raise StaleLeaseError(
                        f"transaction {txn.txn_id} outlived its lock "
                        f"lease; commit rejected by fencing check"
                    )
            for op in txn._ops:
                if op.kind == "set" and op.entry is not None:
                    self.document.set(op.entry)
                elif op.kind == "remove" and op.address is not None:
                    self.document.remove(op.address)
                elif op.kind == "output":
                    self.document.outputs[op.output_name] = op.output_value
            self.document.bump()
            self.history.append(
                CommittedTransaction(
                    txn_id=txn.txn_id,
                    read_set=txn.read_set,
                    write_set=txn.write_set,
                    begin_at=self._begin_times.pop(txn.txn_id, 0.0),
                    commit_at=now,
                )
            )
            if self.lease_ttl is None:
                self.locks.release(txn.txn_id)
            del self._active[txn.txn_id]

    def _abort(self, txn: StateTransaction) -> None:
        with self._mutex:
            self._abort_locked(txn)

    def _abort_locked(self, txn: StateTransaction) -> None:
        self.locks.release(txn.txn_id)
        self._active.pop(txn.txn_id, None)
        self._begin_times.pop(txn.txn_id, None)


class SerializabilityChecker:
    """Conflict-serializability check over a committed history.

    Builds the precedence graph: T1 -> T2 if T1 committed before T2
    began is *not* required; we add an edge whenever T1's writes
    intersect T2's reads/writes (or T1's reads intersect T2's writes)
    and T1 committed first among overlapping transactions. Acyclic
    graph => serializable.

    Edges are constructed key-indexed: for every state key we keep the
    sorted writer/accessor lists and pair only transactions that
    actually conflict on that key, instead of testing all T^2 pairs for
    set overlap. On the disjoint-key histories the lock manager
    produces, this is near-linear in the history length; the historical
    all-pairs construction survives as
    :meth:`is_serializable_reference` for the regression tests.
    """

    @staticmethod
    def is_serializable(history: List[CommittedTransaction]) -> bool:
        import bisect

        from ..graph.dag import CycleError, Dag

        dag: Dag = Dag()
        for txn in history:
            dag.add_node(txn.txn_id)
        # key -> transactions that wrote / accessed (read or wrote) it
        writers: Dict[str, List[CommittedTransaction]] = {}
        accessors: Dict[str, List[CommittedTransaction]] = {}
        for txn in history:
            for key in txn.write_set:
                writers.setdefault(key, []).append(txn)
                accessors.setdefault(key, []).append(txn)
            for key in txn.read_set - txn.write_set:
                accessors.setdefault(key, []).append(txn)
        edges: Set[tuple] = set()
        for key, key_writers in writers.items():
            key_accessors = sorted(accessors[key], key=lambda t: t.begin_at)
            begins = [t.begin_at for t in key_accessors]
            for first in key_accessors:
                # w-w and w-r conflicts when `first` wrote the key;
                # r-w conflicts otherwise -- then only writers conflict
                targets = (
                    key_accessors
                    if key in first.write_set
                    else key_writers
                )
                if targets is key_accessors:
                    # every accessor beginning at/after first's commit
                    start = bisect.bisect_left(begins, first.commit_at)
                    candidates = key_accessors[start:]
                else:
                    candidates = [
                        t for t in targets if first.commit_at <= t.begin_at
                    ]
                for second in candidates:
                    if second.txn_id != first.txn_id:
                        edges.add((first.txn_id, second.txn_id))
        for before, after in edges:
            try:
                dag.add_edge(before, after)
            except CycleError:
                return False
        return dag.find_cycle() is None

    @staticmethod
    def is_serializable_reference(history: List[CommittedTransaction]) -> bool:
        """The historical O(T^2) all-pairs construction (frozen).

        Kept as the oracle for ``tests/test_state.py``'s 500-transaction
        regression test; semantics must match :meth:`is_serializable`.
        """
        from ..graph.dag import CycleError, Dag

        dag: Dag = Dag()
        for txn in history:
            dag.add_node(txn.txn_id)
        for first in history:
            for second in history:
                if first.txn_id == second.txn_id:
                    return_edge = False
                else:
                    overlap = (
                        first.write_set & (second.read_set | second.write_set)
                    ) or (first.read_set & second.write_set)
                    return_edge = bool(overlap) and first.commit_at <= second.begin_at
                if return_edge:
                    try:
                        dag.add_edge(first.txn_id, second.txn_id)
                    except CycleError:
                        return False
        return dag.find_cycle() is None
