"""Cloud-error to IaC-program correlation (3.5).

The paper's example: the cloud says *"Linux virtual machine creation
failed because specified NIC is not found"* while the real problem is a
region mismatch, and nothing points at a line of code. The
:class:`IaCDebugger` closes that gap: it takes the raw provider error,
gathers evidence from the configuration and the plan, and produces a
:class:`Diagnosis` with the actual root cause, the source span of the
offending attribute, and concrete fix suggestions.
"""

from __future__ import annotations

import dataclasses
import ipaddress
from typing import Any, Dict, List, Optional

from ..deploy.executor import ApplyResult
from ..graph.builder import ResourceNode
from ..graph.plan import Plan
from ..lang.diagnostics import SourceSpan
from ..lang.values import is_unknown
from ..types.schema import SchemaRegistry


@dataclasses.dataclass
class FixSuggestion:
    """A concrete, machine-applicable repair."""

    address: str
    attr: str
    new_value: Any
    description: str


@dataclasses.dataclass
class Diagnosis:
    """Root-caused explanation of one failed change."""

    change_id: str
    error_code: str
    raw_message: str
    root_cause: str
    culprit_address: str = ""
    culprit_attr: str = ""
    span: Optional[SourceSpan] = None
    fixes: List[FixSuggestion] = dataclasses.field(default_factory=list)
    confidence: float = 0.3

    def render(self) -> str:
        lines = [
            f"error at {self.change_id}: {self.error_code}",
            f"  cloud said : {self.raw_message}",
            f"  root cause : {self.root_cause}",
        ]
        if self.span is not None:
            lines.append(f"  location   : {self.span}")
        for fix in self.fixes:
            lines.append(f"  suggestion : {fix.description}")
        return "\n".join(lines)


class IaCDebugger:
    """Correlates apply-time cloud errors back to the program."""

    def __init__(self, registry: Optional[SchemaRegistry] = None):
        self.registry = registry or SchemaRegistry.default()

    # -- entry points ---------------------------------------------------------

    def diagnose_apply(self, plan: Plan, result: ApplyResult) -> List[Diagnosis]:
        """Diagnose every change that failed in an apply run."""
        out: List[Diagnosis] = []
        for change_id, message in sorted(result.failed.items()):
            records = result.errors_for(change_id)
            code = records[-1].error_code if records else ""
            out.append(self.diagnose(plan, change_id, code, message))
        return out

    def diagnose(
        self, plan: Plan, change_id: str, error_code: str, message: str
    ) -> Diagnosis:
        change = plan.changes.get(change_id)
        node = change.node if change is not None else None
        handler = {
            "NetworkInterfaceNotFound": self._nic_not_found,
            "InvalidParameter": self._invalid_parameter,
            "MissingParameter": self._missing_parameter,
            "InvalidParameterValue": self._invalid_value,
            "InvalidSubnet.Range": self._subnet_range,
            "NetcfgInvalidSubnet": self._subnet_range,
            "InvalidSubnet.Conflict": self._subnet_overlap,
            "NetcfgSubnetRangesOverlap": self._subnet_overlap,
            "QuotaExceeded": self._quota,
            "Conflict": self._name_conflict,
            "UnresolvedValue": self._unresolved,
        }.get(error_code)
        if handler is None and ".NotFound" in error_code:
            handler = self._reference_not_found
        if handler is None and error_code == "ResourceNotFound":
            handler = self._reference_not_found
        if handler is not None and node is not None:
            diagnosis = handler(plan, change_id, node, error_code, message)
            if diagnosis is not None:
                return diagnosis
        return Diagnosis(
            change_id=change_id,
            error_code=error_code,
            raw_message=message,
            root_cause="unrecognized provider error; inspect the resource block",
            culprit_address=change_id,
            span=node.decl.span if node is not None else None,
            confidence=0.3,
        )

    # -- helpers -----------------------------------------------------------------

    def _attr_span(self, node: ResourceNode, attr: str) -> Optional[SourceSpan]:
        a = node.decl.body.attributes.get(attr)
        return a.span if a is not None else node.decl.span

    def _referenced(self, plan: Plan, node: ResourceNode, attr: str) -> List[
        ResourceNode
    ]:
        from ..lang.references import extract_references

        a = node.decl.body.attributes.get(attr)
        if a is None:
            return []
        out = []
        for ref in sorted(extract_references(a.expr)):
            if ref.kind not in ("resource", "data"):
                continue
            mode = "managed" if ref.kind == "resource" else "data"
            key = (node.address.module_path, mode, ref.type, ref.name)
            for nid in plan.graph.decl_instances.get(key, []):
                out.append(plan.graph.nodes[nid])
        return out

    def _safe_attrs(self, node: ResourceNode) -> Dict[str, Any]:
        try:
            return node.evaluate_attrs()
        except Exception:
            return {}

    # -- specific root causes ----------------------------------------------------

    def _nic_not_found(self, plan, change_id, node, code, message):
        """The paper's running example, solved."""
        attrs = self._safe_attrs(node)
        vm_location = attrs.get("location")
        for nic in self._referenced(plan, node, "nic_ids"):
            nic_attrs = self._safe_attrs(nic)
            nic_location = nic_attrs.get("location")
            if (
                isinstance(vm_location, str)
                and isinstance(nic_location, str)
                and vm_location != nic_location
            ):
                return Diagnosis(
                    change_id=change_id,
                    error_code=code,
                    raw_message=message,
                    root_cause=(
                        f"the NIC exists, but in a different region: the VM "
                        f"is in {vm_location!r} while {nic.id} is in "
                        f"{nic_location!r}; Azure requires a VM and its NICs "
                        f"to share a location"
                    ),
                    culprit_address=node.id,
                    culprit_attr="location",
                    span=self._attr_span(node, "location"),
                    fixes=[
                        FixSuggestion(
                            address=node.id,
                            attr="location",
                            new_value=nic_location,
                            description=(
                                f"set {node.id}.location = "
                                f"{nic_location!r} to match {nic.id}"
                            ),
                        )
                    ],
                    confidence=0.95,
                )
        return Diagnosis(
            change_id=change_id,
            error_code=code,
            raw_message=message,
            root_cause="a referenced network interface could not be resolved",
            culprit_address=node.id,
            culprit_attr="nic_ids",
            span=self._attr_span(node, "nic_ids"),
            confidence=0.5,
        )

    def _reference_not_found(self, plan, change_id, node, code, message):
        spec = self.registry.spec_for(node.address.type)
        ref_attrs = [a.name for a in spec.reference_attrs()] if spec else []
        for attr_name in ref_attrs:
            for target in self._referenced(plan, node, attr_name):
                expected = None
                aspec = spec.attr(attr_name) if spec else None
                if aspec is not None:
                    expected = aspec.ref_target
                if (
                    expected
                    and target.address.mode == "managed"
                    and target.address.type != expected
                ):
                    return Diagnosis(
                        change_id=change_id,
                        error_code=code,
                        raw_message=message,
                        root_cause=(
                            f"{attr_name} references {target.id}, which is a "
                            f"{target.address.type}; the cloud expects the id "
                            f"of a {expected}"
                        ),
                        culprit_address=node.id,
                        culprit_attr=attr_name,
                        span=self._attr_span(node, attr_name),
                        fixes=[
                            FixSuggestion(
                                address=node.id,
                                attr=attr_name,
                                new_value=None,
                                description=(
                                    f"reference a {expected} resource in "
                                    f"{attr_name} instead of {target.id}"
                                ),
                            )
                        ],
                        confidence=0.9,
                    )
                if str(target.id) in getattr(plan, "_failed_ids", set()):
                    break
        # maybe an upstream dependency failed to create
        upstream = sorted(plan.graph.dag.predecessors(node.id))
        return Diagnosis(
            change_id=change_id,
            error_code=code,
            raw_message=message,
            root_cause=(
                "a referenced resource does not exist in the cloud; either "
                "its creation failed earlier in this run or the reference "
                "points at the wrong resource"
                + (f" (dependencies: {', '.join(upstream)})" if upstream else "")
            ),
            culprit_address=node.id,
            span=node.decl.span,
            confidence=0.5,
        )

    def _invalid_parameter(self, plan, change_id, node, code, message):
        if "adminPassword" in message or "disablePassword" in message:
            attrs = self._safe_attrs(node)
            has_password = attrs.get("admin_password") not in (None, "")
            fix_attr = "disable_password_auth"
            fix_value: Any = False if has_password else True
            return Diagnosis(
                change_id=change_id,
                error_code=code,
                raw_message=message,
                root_cause=(
                    "admin_password and disable_password_auth disagree: a "
                    "password may only be set when password authentication "
                    "is enabled (disable_password_auth = false)"
                ),
                culprit_address=node.id,
                culprit_attr="disable_password_auth",
                span=self._attr_span(node, "admin_password"),
                fixes=[
                    FixSuggestion(
                        address=node.id,
                        attr=fix_attr,
                        new_value=fix_value,
                        description=f"set {fix_attr} = {str(fix_value).lower()}",
                    )
                ],
                confidence=0.95,
            )
        return None

    def _missing_parameter(self, plan, change_id, node, code, message):
        attr = _quoted_token(message)
        return Diagnosis(
            change_id=change_id,
            error_code=code,
            raw_message=message,
            root_cause=f"required attribute {attr!r} is missing from the block",
            culprit_address=node.id,
            culprit_attr=attr or "",
            span=node.decl.span,
            fixes=[
                FixSuggestion(
                    address=node.id,
                    attr=attr or "",
                    new_value=None,
                    description=f"add the {attr!r} attribute",
                )
            ],
            confidence=0.85,
        )

    def _invalid_value(self, plan, change_id, node, code, message):
        attr = _quoted_token(message, skip=1) or _quoted_token(message)
        spec = self.registry.spec_for(node.address.type)
        fixes: List[FixSuggestion] = []
        if spec is not None and attr:
            aspec = spec.attr(attr)
            enum = aspec.enum_values if aspec else None
            if enum:
                fixes.append(
                    FixSuggestion(
                        address=node.id,
                        attr=attr,
                        new_value=enum[0],
                        description=(
                            f"use one of: {', '.join(enum)} (e.g. {enum[0]!r})"
                        ),
                    )
                )
        return Diagnosis(
            change_id=change_id,
            error_code=code,
            raw_message=message,
            root_cause=f"the value of {attr!r} is outside what the cloud accepts",
            culprit_address=node.id,
            culprit_attr=attr or "",
            span=self._attr_span(node, attr) if attr else node.decl.span,
            fixes=fixes,
            confidence=0.8 if fixes else 0.6,
        )

    def _subnet_range(self, plan, change_id, node, code, message):
        attr = "cidr_block" if "cidr_block" in node.decl.body.attributes else (
            "address_prefix"
        )
        parent_attr = "vpc_id" if attr == "cidr_block" else "vnet_id"
        suggestion = None
        for parent in self._referenced(plan, node, parent_attr):
            parent_attrs = self._safe_attrs(parent)
            parent_cidr = parent_attrs.get("cidr_block")
            spaces = parent_attrs.get("address_spaces")
            base = parent_cidr or (spaces[0] if isinstance(spaces, list) and spaces else None)
            if isinstance(base, str):
                try:
                    net = ipaddress.ip_network(base)
                    suggestion = str(list(net.subnets(new_prefix=min(net.prefixlen + 8, 28)))[0])
                except ValueError:
                    pass
            return Diagnosis(
                change_id=change_id,
                error_code=code,
                raw_message=message,
                root_cause=(
                    f"{attr} is not inside the parent network's range "
                    f"({base!r})"
                ),
                culprit_address=node.id,
                culprit_attr=attr,
                span=self._attr_span(node, attr),
                fixes=(
                    [
                        FixSuggestion(
                            address=node.id,
                            attr=attr,
                            new_value=suggestion,
                            description=(
                                f"use a prefix inside {base}, e.g. "
                                f"{suggestion!r}"
                            ),
                        )
                    ]
                    if suggestion
                    else []
                ),
                confidence=0.9,
            )
        return None

    def _subnet_overlap(self, plan, change_id, node, code, message):
        attr = "cidr_block" if "cidr_block" in node.decl.body.attributes else (
            "address_prefix"
        )
        return Diagnosis(
            change_id=change_id,
            error_code=code,
            raw_message=message,
            root_cause=(
                f"{attr} overlaps a sibling subnet's range in the same "
                f"network"
            ),
            culprit_address=node.id,
            culprit_attr=attr,
            span=self._attr_span(node, attr),
            fixes=[
                FixSuggestion(
                    address=node.id,
                    attr=attr,
                    new_value=None,
                    description="choose a non-overlapping prefix "
                    "(cidrsubnet() with a fresh netnum)",
                )
            ],
            confidence=0.85,
        )

    def _quota(self, plan, change_id, node, code, message):
        return Diagnosis(
            change_id=change_id,
            error_code=code,
            raw_message=message,
            root_cause=(
                f"the regional quota for {node.address.type} is exhausted"
            ),
            culprit_address=node.id,
            span=node.decl.span,
            fixes=[
                FixSuggestion(
                    address=node.id,
                    attr="location",
                    new_value=None,
                    description="deploy to a different region or request a "
                    "quota increase",
                )
            ],
            confidence=0.9,
        )

    def _name_conflict(self, plan, change_id, node, code, message):
        attrs = self._safe_attrs(node)
        name = attrs.get("name")
        new_name = f"{name}-2" if isinstance(name, str) else None
        return Diagnosis(
            change_id=change_id,
            error_code=code,
            raw_message=message,
            root_cause=f"a resource named {name!r} already exists in the region",
            culprit_address=node.id,
            culprit_attr="name",
            span=self._attr_span(node, "name"),
            fixes=(
                [
                    FixSuggestion(
                        address=node.id,
                        attr="name",
                        new_value=new_name,
                        description=f"rename to {new_name!r}",
                    )
                ]
                if new_name
                else []
            ),
            confidence=0.9,
        )

    def _unresolved(self, plan, change_id, node, code, message):
        attrs = self._safe_attrs(node)
        unknown = sorted(k for k, v in attrs.items() if is_unknown(v))
        return Diagnosis(
            change_id=change_id,
            error_code=code,
            raw_message=message,
            root_cause=(
                "attribute values depend on resources that were never "
                "created (an upstream failure cascaded): "
                + ", ".join(unknown)
            ),
            culprit_address=node.id,
            culprit_attr=unknown[0] if unknown else "",
            span=node.decl.span,
            confidence=0.7,
        )


def _quoted_token(message: str, skip: int = 0) -> Optional[str]:
    """Extract the (skip+1)-th 'quoted' token from a provider message."""
    import re

    tokens = re.findall(r"'([^']+)'", message)
    if len(tokens) > skip:
        return tokens[skip]
    return None
