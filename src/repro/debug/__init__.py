"""IaC debugger: error correlation and repair (paper 3.5)."""

from .correlate import Diagnosis, FixSuggestion, IaCDebugger
from .repair import RepairOutcome, apply_diagnoses, apply_fix

__all__ = [
    "Diagnosis",
    "FixSuggestion",
    "IaCDebugger",
    "RepairOutcome",
    "apply_diagnoses",
    "apply_fix",
]
