"""Automatic repair of diagnosed configurations (3.5).

Applies :class:`FixSuggestion` patches directly to the parsed
configuration's AST (attribute expression replaced by the suggested
literal), so the repaired config can be re-validated and re-applied
without round-tripping through text.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..addressing import ResourceAddress
from ..lang.ast_nodes import Attribute, Literal
from ..lang.config import Configuration
from ..lang.diagnostics import SourceSpan
from .correlate import Diagnosis, FixSuggestion


@dataclasses.dataclass
class RepairOutcome:
    """What happened for one attempted fix."""

    fix: FixSuggestion
    applied: bool
    reason: str = ""


def apply_fix(config: Configuration, fix: FixSuggestion) -> RepairOutcome:
    """Mutate ``config`` per one suggestion (literal-valued fixes only)."""
    if fix.new_value is None:
        return RepairOutcome(fix, False, "suggestion is advisory (no value)")
    try:
        address = ResourceAddress.parse(fix.address)
    except ValueError:
        return RepairOutcome(fix, False, f"unparseable address {fix.address!r}")
    decl = config.resource(
        address.type, address.name, mode=address.mode
    )
    if decl is None:
        return RepairOutcome(fix, False, f"no declaration for {fix.address}")
    span = SourceSpan()
    existing = decl.body.attributes.get(fix.attr)
    if existing is not None:
        span = existing.span
    decl.body.attributes[fix.attr] = Attribute(
        name=fix.attr,
        expr=Literal(fix.new_value, span),
        span=span,
    )
    return RepairOutcome(fix, True)


def apply_diagnoses(
    config: Configuration, diagnoses: List[Diagnosis], min_confidence: float = 0.8
) -> List[RepairOutcome]:
    """Apply the first applicable fix of each high-confidence diagnosis."""
    outcomes: List[RepairOutcome] = []
    for diagnosis in diagnoses:
        if diagnosis.confidence < min_confidence:
            continue
        for fix in diagnosis.fixes:
            outcome = apply_fix(config, fix)
            outcomes.append(outcome)
            if outcome.applied:
                break
    return outcomes
