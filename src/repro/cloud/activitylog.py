"""Cloud activity log.

Simulates Azure Activity Log / AWS CloudTrail / GCP Audit Logs: every
control-plane mutation is appended with actor identity and timestamp.
The cloudless drift watcher (3.5) consumes this log instead of scanning
resources, which is precisely the design the paper advocates.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class ActivityEvent:
    """One management-plane event."""

    sequence: int
    timestamp: float
    provider: str
    operation: str  # create | update | delete
    resource_type: str
    resource_id: str
    resource_name: str
    region: str
    actor: str  # "iac" for framework-driven ops, anything else is external
    changed_attrs: tuple = ()

    @property
    def is_external(self) -> bool:
        return self.actor != "iac"


class ActivityLog:
    """Append-only event log with cursor-based tailing."""

    def __init__(self, provider: str):
        self.provider = provider
        self._events: List[ActivityEvent] = []
        self._seq = itertools.count()

    def append(
        self,
        timestamp: float,
        operation: str,
        resource_type: str,
        resource_id: str,
        resource_name: str,
        region: str,
        actor: str,
        changed_attrs: tuple = (),
    ) -> ActivityEvent:
        event = ActivityEvent(
            sequence=next(self._seq),
            timestamp=timestamp,
            provider=self.provider,
            operation=operation,
            resource_type=resource_type,
            resource_id=resource_id,
            resource_name=resource_name,
            region=region,
            actor=actor,
            changed_attrs=changed_attrs,
        )
        self._events.append(event)
        return event

    def events_since(self, cursor: int, until: Optional[float] = None) -> List[
        ActivityEvent
    ]:
        """Events with sequence >= cursor, optionally up to a timestamp.

        Reading the log is itself one (cheap, read-class) API call in
        the control plane; callers go through the gateway for that.
        """
        out = []
        for event in self._events[cursor:]:
            if until is not None and event.timestamp > until:
                break
            out.append(event)
        return out

    @property
    def next_cursor(self) -> int:
        return len(self._events)

    def all_events(self) -> List[ActivityEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ActivityEvent]:
        return iter(self._events)
