"""Cloud activity log.

Simulates Azure Activity Log / AWS CloudTrail / GCP Audit Logs: every
control-plane mutation is appended with actor identity and timestamp.
The cloudless drift watcher (3.5) consumes this log instead of scanning
resources, which is precisely the design the paper advocates.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class ActivityEvent:
    """One management-plane event."""

    sequence: int
    timestamp: float
    provider: str
    operation: str  # create | update | delete
    resource_type: str
    resource_id: str
    resource_name: str
    region: str
    actor: str  # "iac" for framework-driven ops, anything else is external
    changed_attrs: tuple = ()

    @property
    def is_external(self) -> bool:
        return self.actor != "iac"


class ActivityLog:
    """Append-only event log with cursor-based tailing.

    Cursors are event *sequence numbers*, not list indexes: a cursor of
    ``n`` means "I have consumed every event with ``sequence < n``".
    Sequence numbers are durable -- they survive :meth:`compact` (log
    retention dropping old events) and persistence round-trips -- so a
    watcher can checkpoint its cursor and resume after a restart
    without replaying or losing events.
    """

    def __init__(self, provider: str):
        self.provider = provider
        self._events: List[ActivityEvent] = []
        #: sequence of ``_events[0]`` -- nonzero once old events have
        #: been compacted away
        self._base = 0
        self._next_seq = 0

    def append(
        self,
        timestamp: float,
        operation: str,
        resource_type: str,
        resource_id: str,
        resource_name: str,
        region: str,
        actor: str,
        changed_attrs: tuple = (),
    ) -> ActivityEvent:
        event = ActivityEvent(
            sequence=self._next_seq,
            timestamp=timestamp,
            provider=self.provider,
            operation=operation,
            resource_type=resource_type,
            resource_id=resource_id,
            resource_name=resource_name,
            region=region,
            actor=actor,
            changed_attrs=changed_attrs,
        )
        self._events.append(event)
        self._next_seq += 1
        return event

    def events_since(self, cursor: int, until: Optional[float] = None) -> List[
        ActivityEvent
    ]:
        """Events with sequence >= cursor, optionally up to a timestamp.

        ``cursor`` is a sequence number (see class docstring), so a
        checkpointed cursor stays correct even after :meth:`compact`
        drops the events below it. Reading the log is itself one
        (cheap, read-class) API call in the control plane; callers go
        through the gateway for that.
        """
        start = max(0, int(cursor) - self._base)
        out = []
        for event in self._events[start:]:
            if until is not None and event.timestamp > until:
                break
            out.append(event)
        return out

    @property
    def next_cursor(self) -> int:
        """The cursor positioned just past the newest event."""
        return self._next_seq

    def compact(self, up_to: int) -> int:
        """Drop events with ``sequence < up_to`` (log retention).

        Sequence numbers -- and therefore checkpointed cursors -- stay
        valid; only the retained window shrinks. Returns how many
        events were dropped.
        """
        drop = min(max(0, int(up_to) - self._base), len(self._events))
        if drop:
            del self._events[:drop]
            self._base += drop
        return drop

    def restore(
        self, events: List[ActivityEvent], next_sequence: Optional[int] = None
    ) -> None:
        """Replace the log's contents (persistence restore path).

        Re-derives ``_base`` and the next sequence from the events'
        own sequence numbers, so a log saved after compaction keeps
        minting non-colliding sequences when reloaded.
        """
        self._events = list(events)
        if events:
            self._base = events[0].sequence
            derived = events[-1].sequence + 1
        else:
            self._base = 0
            derived = 0
        self._next_seq = derived if next_sequence is None else max(
            int(next_sequence), derived
        )
        if not events:
            self._base = self._next_seq

    def extend_from(self, events: List[ActivityEvent]) -> int:
        """Append a tail of events recorded elsewhere (pool-worker
        delta merge). The suffix must continue this log's sequence --
        the caller forked the worker from this log, so the worker's
        ``events_since(fork cursor)`` does by construction. Returns
        how many events were appended (already-present sequences are
        skipped, making the merge idempotent)."""
        appended = 0
        for event in events:
            if event.sequence < self._next_seq:
                continue
            if event.sequence != self._next_seq:
                raise ValueError(
                    f"log suffix skips sequence {self._next_seq} "
                    f"(got {event.sequence})"
                )
            self._events.append(event)
            self._next_seq += 1
            appended += 1
        return appended

    def all_events(self) -> List[ActivityEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ActivityEvent]:
        return iter(self._events)
