"""Discrete-event simulated clock.

All cloud-side latency in the framework is *simulated*: a 45-minute VPN
gateway costs microseconds of wall time, while still interacting
faithfully with rate limits, schedulers, and drift detection windows.
Executors advance the clock to the next completion event.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Jump forward to absolute time ``t`` (never backwards)."""
        if t < self._now - 1e-9:
            raise ValueError(f"cannot move clock backwards ({t} < {self._now})")
        self._now = max(self._now, t)

    def advance_by(self, dt: float) -> None:
        """Jump forward by ``dt`` seconds."""
        if dt < 0:
            raise ValueError("cannot advance by a negative duration")
        self._now += dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(t={self._now:.3f})"


class SkewedClock(SimClock):
    """A per-plane view of a shared base clock, offset by constant skew.

    Real estates never have one clock: each provider's management plane
    stamps its activity log and completion times with *its own* notion
    of now. ``SkewedClock`` models that -- reads return
    ``base.now + offset_s``, and advances push the shared base forward
    so the fleet still shares one arrow of time. A plane re-clocked
    with a positive skew runs *ahead* of the coordinator: its events
    carry future timestamps, exactly the trap drift watchers and
    staleness accounting must survive.

    Only non-negative skew is supported: a plane running behind the
    coordinator would complete operations in the scheduler's past,
    which the discrete-event loop (correctly) rejects. Skew between
    two planes is expressed by running one of them ahead.
    """

    def __init__(self, base: SimClock, offset_s: float):
        if offset_s < 0:
            raise ValueError(
                f"skew offset must be >= 0 (planes run ahead of the "
                f"coordinator, never behind), got {offset_s}"
            )
        self.base = base
        self.offset_s = float(offset_s)

    @property
    def now(self) -> float:
        return self.base.now + self.offset_s

    def advance_to(self, t: float) -> None:
        if t < self.now - 1e-9:
            raise ValueError(f"cannot move clock backwards ({t} < {self.now})")
        self.base.advance_to(t - self.offset_s)

    def advance_by(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance by a negative duration")
        self.base.advance_by(dt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkewedClock(t={self.now:.3f}, offset={self.offset_s:+.1f})"


def _payload_kind(payload: Any) -> str:
    """Human-readable event kind for error messages.

    Executors enqueue ``(kind, change_id)`` tuples; other callers use
    strings or arbitrary objects -- show whatever identifies the event.
    """
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        return f"event {payload[0]!r} ({', '.join(str(p) for p in payload[1:])})"
    if isinstance(payload, str):
        return f"event {payload!r}"
    return f"event of type {type(payload).__name__}"


class EventQueue:
    """A time-ordered queue of ``(time, payload)`` events.

    Used by executors and the policy controller to run discrete-event
    loops over one shared :class:`SimClock`.
    """

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def schedule(self, at: float, payload: Any) -> None:
        """Enqueue ``payload`` to fire at absolute sim time ``at``."""
        if at < self.clock.now - 1e-9:
            raise ValueError(
                f"cannot schedule {_payload_kind(payload)} in the past "
                f"({at} < {self.clock.now})"
            )
        heapq.heappush(self._heap, (at, next(self._counter), payload))

    def schedule_after(self, delay: float, payload: Any) -> None:
        self.schedule(self.clock.now + delay, payload)

    def pop(self) -> Optional[Tuple[float, Any]]:
        """Remove the earliest event, advancing the clock to its time.

        An event whose scheduled time has already passed (cloud-side
        retries may advance the shared clock between pops) fires late,
        at the current time, rather than moving the clock backwards.
        """
        if not self._heap:
            return None
        at, _, payload = heapq.heappop(self._heap)
        if at > self.clock.now:
            self.clock.advance_to(at)
        return at, payload

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
