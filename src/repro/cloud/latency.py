"""Provisioning latency models.

Per-resource-type latency distributions, calibrated to the rough orders
of magnitude practitioners report: VMs in tens of seconds, managed
databases in minutes, VPN gateways in tens of minutes -- the raw
material behind the paper's "deployments take hours or even days" (3.3)
and the reason critical-path scheduling pays off.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, Optional


@dataclasses.dataclass(frozen=True)
class LatencyProfile:
    """Latency (seconds) for each lifecycle operation of one type.

    ``spread`` is the multiplicative jitter: samples are drawn from a
    lognormal centred on the mean with sigma = ln(1+spread).
    """

    create_s: float
    update_s: float
    delete_s: float
    read_s: float = 0.5
    spread: float = 0.15

    def mean_for(self, operation: str) -> float:
        return {
            "create": self.create_s,
            "update": self.update_s,
            "delete": self.delete_s,
            "read": self.read_s,
            "list": self.read_s,
        }.get(operation, self.read_s)


DEFAULT_PROFILE = LatencyProfile(create_s=5.0, update_s=3.0, delete_s=2.0)


class LatencyModel:
    """Samples operation latencies for resource types.

    Deterministic given the seeded ``random.Random`` passed by the
    owning control plane.
    """

    def __init__(self, profiles: Optional[Dict[str, LatencyProfile]] = None):
        self.profiles: Dict[str, LatencyProfile] = dict(profiles or {})

    def register(self, rtype: str, profile: LatencyProfile) -> None:
        self.profiles[rtype] = profile

    def profile_for(self, rtype: str) -> LatencyProfile:
        return self.profiles.get(rtype, DEFAULT_PROFILE)

    def mean(self, rtype: str, operation: str) -> float:
        """Expected latency -- what deployment-time *estimators* use."""
        return self.profile_for(rtype).mean_for(operation)

    def sample(self, rtype: str, operation: str, rng: random.Random) -> float:
        """One realized latency draw -- what the control plane charges."""
        profile = self.profile_for(rtype)
        mean = profile.mean_for(operation)
        if mean <= 0:
            return 0.0
        if profile.spread <= 0:
            return mean
        sigma = math.log(1.0 + profile.spread)
        # lognormal with the requested mean: mu = ln(mean) - sigma^2/2
        mu = math.log(mean) - sigma * sigma / 2.0
        return rng.lognormvariate(mu, sigma)
