"""AWS-like simulated provider."""

from .provider import AWS_REGIONS, AwsControlPlane, aws_catalog

__all__ = ["AWS_REGIONS", "AwsControlPlane", "aws_catalog"]
