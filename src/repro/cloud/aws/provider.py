"""The "aws"-like simulated provider.

Catalog of ~16 resource types with AWS-flavoured naming, latency
profiles, and control-plane constraints (CIDR containment/overlap,
reference existence with ``Invalid...NotFound`` error codes).
"""

from __future__ import annotations

import ipaddress
from typing import Any, Dict, List

from ..base import CloudAPIError, ControlPlane, ResourceRecord, parse_network
from ..resources import ResourceTypeSpec, a, spec

AWS_REGIONS = ["us-east-1", "us-west-2", "eu-west-1", "ap-southeast-1"]


def aws_catalog() -> List[ResourceTypeSpec]:
    """Every resource type the aws-like provider supports."""
    p = "aws"
    return [
        spec(
            "aws_vpc",
            p,
            [
                a("name", required=True),
                a("cidr_block", required=True, semantic="cidr", forces_replacement=True),
                a("tags", type="map"),
                a("arn", computed=True),
            ],
            create_s=4.0,
            id_prefix="vpc-",
            immutable=("cidr_block",),
            description="Isolated virtual network",
        ),
        spec(
            "aws_subnet",
            p,
            [
                a("name", required=True),
                a("vpc_id", required=True, semantic="ref:aws_vpc", forces_replacement=True),
                a("cidr_block", required=True, semantic="cidr", forces_replacement=True),
                a("availability_zone"),
                a("tags", type="map"),
            ],
            create_s=2.5,
            id_prefix="subnet-",
            immutable=("vpc_id", "cidr_block"),
            description="VPC subnet",
        ),
        spec(
            "aws_internet_gateway",
            p,
            [a("name", required=True), a("vpc_id", required=True, semantic="ref:aws_vpc")],
            create_s=3.0,
            id_prefix="igw-",
            description="Internet gateway",
        ),
        spec(
            "aws_route_table",
            p,
            [
                a("name", required=True),
                a("vpc_id", required=True, semantic="ref:aws_vpc"),
                a("routes", type="list"),
            ],
            create_s=2.0,
            id_prefix="rtb-",
            description="Routing table",
        ),
        spec(
            "aws_security_group",
            p,
            [
                a("name", required=True),
                a("vpc_id", required=True, semantic="ref:aws_vpc"),
                a("ingress_rules", type="list"),
                a("egress_rules", type="list"),
            ],
            create_s=2.0,
            id_prefix="sg-",
            description="Stateful firewall",
        ),
        spec(
            "aws_network_interface",
            p,
            [
                a("name", required=True),
                a("subnet_id", required=True, semantic="ref:aws_subnet"),
                a("security_group_ids", type="list", semantic="ref_list:aws_security_group"),
                a("private_ip", computed=True),
            ],
            create_s=2.0,
            id_prefix="eni-",
            description="Elastic network interface",
        ),
        spec(
            "aws_virtual_machine",
            p,
            [
                a("name", required=True),
                a("image", default="linux-base", forces_replacement=True),
                a(
                    "size",
                    default="small",
                    semantic="enum:small|medium|large|xlarge",
                ),
                a("nic_ids", type="list", required=True, semantic="ref_list:aws_network_interface"),
                a("user_data"),
                a("tags", type="map"),
                a("public_ip", computed=True),
            ],
            create_s=45.0,
            update_s=20.0,
            delete_s=15.0,
            id_prefix="i-",
            immutable=("image",),
            shadow=("network_settings",),
            description="Virtual machine instance",
        ),
        spec(
            "aws_disk",
            p,
            [
                a("name", required=True),
                a("size_gb", type="number", required=True),
                a("disk_type", default="gp", semantic="enum:gp|io"),
                a("vm_id", semantic="ref:aws_virtual_machine"),
            ],
            create_s=8.0,
            id_prefix="vol-",
            immutable=("disk_type",),
            description="Block storage volume",
        ),
        spec(
            "aws_load_balancer",
            p,
            [
                a("name", required=True),
                a("subnet_ids", type="list", required=True, semantic="ref_list:aws_subnet"),
                a("target_vm_ids", type="list", semantic="ref_list:aws_virtual_machine"),
                a("dns_name", computed=True),
            ],
            create_s=90.0,
            update_s=30.0,
            delete_s=25.0,
            id_prefix="elb-",
            description="Managed load balancer",
        ),
        spec(
            "aws_database_instance",
            p,
            [
                a("name", required=True),
                a("engine", required=True, semantic="enum:postgres|mysql|mariadb", forces_replacement=True),
                a("size", default="small", semantic="enum:small|medium|large"),
                a("storage_gb", type="number", default=20),
                a("subnet_ids", type="list", semantic="ref_list:aws_subnet"),
                a("password", semantic="password"),
                a("endpoint", computed=True),
            ],
            create_s=300.0,
            update_s=120.0,
            delete_s=60.0,
            id_prefix="db-",
            immutable=("engine",),
            description="Managed relational database",
        ),
        spec(
            "aws_s3_bucket",
            p,
            [
                a("name", required=True),
                a("versioning", type="bool", default=False),
                a("arn", computed=True),
            ],
            create_s=3.0,
            id_prefix="bkt-",
            description="Object storage bucket",
        ),
        spec(
            "aws_vpn_gateway",
            p,
            [
                a("name", required=True),
                a("vpc_id", required=True, semantic="ref:aws_vpc"),
                a("public_ip", computed=True),
            ],
            create_s=600.0,
            update_s=120.0,
            delete_s=90.0,
            id_prefix="vgw-",
            description="Site-to-site VPN gateway",
        ),
        spec(
            "aws_vpn_tunnel",
            p,
            [
                a("name", required=True),
                a("gateway_id", required=True, semantic="ref:aws_vpn_gateway"),
                a("peer_ip", required=True),
                a("capacity_mbps", type="number", default=500),
            ],
            create_s=120.0,
            update_s=40.0,
            delete_s=20.0,
            id_prefix="vpn-",
            description="VPN tunnel attached to a gateway",
        ),
        spec(
            "aws_autoscaling_group",
            p,
            [
                a("name", required=True),
                a("min_size", type="number", default=1),
                a("max_size", type="number", default=4),
                a("desired_capacity", type="number", default=1),
                a("subnet_ids", type="list", semantic="ref_list:aws_subnet"),
                a("instance_size", default="small", semantic="enum:small|medium|large"),
            ],
            create_s=30.0,
            id_prefix="asg-",
            description="Autoscaling group",
        ),
        spec(
            "aws_iam_role",
            p,
            [
                a("name", required=True),
                a("policy_json"),
                a("arn", computed=True),
            ],
            create_s=4.0,
            id_prefix="role-",
            description="IAM role",
        ),
        spec(
            "aws_dns_record",
            p,
            [
                a("name", required=True),
                a("zone", required=True),
                a("value", required=True),
                a("ttl", type="number", default=300),
            ],
            create_s=10.0,
            id_prefix="rec-",
            description="DNS record",
        ),
    ]


class AwsControlPlane(ControlPlane):
    """Control plane with AWS-flavoured behaviour and error codes."""

    provider = "aws"
    list_page_size = 25

    def __init__(self, **kwargs: Any):
        kwargs.setdefault("regions", list(AWS_REGIONS))
        kwargs.setdefault("rate_limits", {"read": (20.0, 40), "write": (5.0, 10)})
        super().__init__(**kwargs)

    def _register_catalog(self) -> None:
        for s in aws_catalog():
            self.register_spec(s)

    # -- AWS-style error shapes ------------------------------------------------

    def _not_found_code(self, ref_type: str) -> str:
        short = ref_type.replace("aws_", "") if ref_type else "resource"
        camel = "".join(w.capitalize() for w in short.split("_"))
        return f"Invalid{camel}ID.NotFound"

    def _not_found_message(self, ref_type: str, target_id: str) -> str:
        return f"The id '{target_id}' does not exist"

    # -- provider constraints -----------------------------------------------

    def validate_create(
        self, spec: ResourceTypeSpec, attrs: Dict[str, Any], region: str
    ) -> None:
        if spec.name == "aws_subnet":
            self._check_subnet_cidr(attrs, region)
        if spec.name == "aws_vpc":
            self._check_cidr_shape(attrs.get("cidr_block"), "cidr_block")

    def _check_cidr_shape(self, value: Any, attr: str) -> None:
        if value is None:
            return
        try:
            parse_network(str(value), strict=True)
        except ValueError:
            raise CloudAPIError(
                "InvalidParameterValue",
                f"Value '{value}' for parameter '{attr}' is invalid. "
                f"This is not a valid CIDR block.",
                resource_type="aws_vpc",
                operation="create",
            )

    def _check_subnet_cidr(self, attrs: Dict[str, Any], region: str) -> None:
        vpc_id = attrs.get("vpc_id")
        cidr = attrs.get("cidr_block")
        if not isinstance(vpc_id, str) or not isinstance(cidr, str):
            return
        vpc = self.records.get(vpc_id)
        if vpc is None:
            return  # reference check already produces NotFound
        try:
            subnet_net = parse_network(cidr, strict=True)
            vpc_net = parse_network(str(vpc.attrs.get("cidr_block")), strict=True)
        except ValueError:
            raise CloudAPIError(
                "InvalidParameterValue",
                f"Value '{cidr}' for parameter 'cidrBlock' is invalid.",
                resource_type="aws_subnet",
                operation="create",
            )
        if not subnet_net.subnet_of(vpc_net):
            raise CloudAPIError(
                "InvalidSubnet.Range",
                f"The CIDR '{cidr}' is invalid for the given VPC.",
                resource_type="aws_subnet",
                operation="create",
            )
        for rid in self.records.ids_linked("aws_subnet", "vpc_id", vpc_id):
            record = self.records[rid]
            other = parse_network(str(record.attrs.get("cidr_block")))
            if subnet_net.overlaps(other):
                raise CloudAPIError(
                    "InvalidSubnet.Conflict",
                    f"The CIDR '{cidr}' conflicts with another subnet.",
                    http_status=409,
                    resource_type="aws_subnet",
                    operation="create",
                )
