"""Resource type specifications for the simulated clouds.

A :class:`ResourceTypeSpec` is the *cloud-level* schema of one resource
type: attribute names/types, which attributes the cloud computes, which
reference other resources (and of what type -- the semantic information
the paper says IaC-level "stringly" types throw away, 3.2), and the
provisioning latency profile.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from .latency import LatencyProfile


@dataclasses.dataclass(frozen=True)
class AttributeSpec:
    """Schema of one attribute of a resource type.

    ``semantic`` carries the machine-readable meaning of the value:

    * ``ref:<type>`` / ``ref_list:<type>`` -- id of another resource
    * ``cidr`` / ``cidr_list`` -- network prefixes
    * ``region`` -- a provider region name
    * ``enum:a|b|c`` -- closed vocabulary
    * ``password`` -- secret material
    * ``""`` -- plain value
    """

    name: str
    type: str = "string"
    required: bool = False
    computed: bool = False
    default: Any = None
    semantic: str = ""
    forces_replacement: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        # decode ``semantic`` once; these are read on every simulated
        # API call, and startswith/split per read shows up at estate
        # scale (frozen dataclass, hence object.__setattr__)
        sem = self.semantic
        if sem.startswith("ref:"):
            target: Optional[str] = sem[4:]
        elif sem.startswith("ref_list:"):
            target = sem[9:]
        else:
            target = None
        object.__setattr__(self, "_ref_target", target)
        object.__setattr__(self, "_is_ref_list", sem.startswith("ref_list:"))
        object.__setattr__(
            self,
            "_enum_values",
            sem[5:].split("|") if sem.startswith("enum:") else None,
        )
        object.__setattr__(self, "_base_type", self.type.split("(")[0])

    @property
    def ref_target(self) -> Optional[str]:
        """Referenced resource type, if this is a reference attribute."""
        return self._ref_target  # type: ignore[attr-defined]

    @property
    def is_ref_list(self) -> bool:
        return self._is_ref_list  # type: ignore[attr-defined]

    @property
    def enum_values(self) -> Optional[List[str]]:
        return self._enum_values  # type: ignore[attr-defined]

    @property
    def base_type(self) -> str:
        """``type`` with any precision suffix stripped: ``string(64)``
        -> ``string``."""
        return self._base_type  # type: ignore[attr-defined]


@dataclasses.dataclass(frozen=True)
class ResourceTypeSpec:
    """Cloud-level schema + behaviour of one resource type."""

    name: str
    provider: str
    attributes: Dict[str, AttributeSpec]
    latency: LatencyProfile
    id_prefix: str
    description: str = ""
    # attribute changes that cannot be performed in place; the resource
    # must be destroyed and recreated (drives rollback planning, 3.4)
    immutable_attrs: tuple = ()
    # attributes the cloud lets scripts mutate out-of-band but an IaC
    # re-apply will NOT see (e.g. runtime network settings); these model
    # the paper's "modifications not captured in configuration files"
    shadow_attrs: tuple = ()

    def __post_init__(self) -> None:
        # per-kind views, computed once (validation walks them on every
        # simulated API call; ``attributes`` is never mutated)
        values = tuple(self.attributes.values())
        object.__setattr__(
            self, "_required", [a for a in values if a.required]
        )
        object.__setattr__(
            self, "_computed", [a for a in values if a.computed]
        )
        object.__setattr__(
            self, "_configurable", [a for a in values if not a.computed]
        )
        object.__setattr__(
            self, "_reference", [a for a in values if a.ref_target]
        )

    def required_attrs(self) -> List[AttributeSpec]:
        return self._required  # type: ignore[attr-defined]

    def computed_attrs(self) -> List[AttributeSpec]:
        return self._computed  # type: ignore[attr-defined]

    def configurable_attrs(self) -> List[AttributeSpec]:
        return self._configurable  # type: ignore[attr-defined]

    def reference_attrs(self) -> List[AttributeSpec]:
        return self._reference  # type: ignore[attr-defined]

    def attr(self, name: str) -> Optional[AttributeSpec]:
        return self.attributes.get(name)


def spec(
    name: str,
    provider: str,
    attrs: List[AttributeSpec],
    create_s: float,
    update_s: Optional[float] = None,
    delete_s: Optional[float] = None,
    id_prefix: str = "",
    description: str = "",
    immutable: tuple = (),
    shadow: tuple = (),
    spread: float = 0.15,
) -> ResourceTypeSpec:
    """Terse constructor used by the provider catalogs."""
    attr_map = {a.name: a for a in attrs}
    if "id" not in attr_map:
        attr_map["id"] = AttributeSpec("id", computed=True, description="cloud id")
    profile = LatencyProfile(
        create_s=create_s,
        update_s=update_s if update_s is not None else max(1.0, create_s * 0.4),
        delete_s=delete_s if delete_s is not None else max(1.0, create_s * 0.3),
        spread=spread,
    )
    return ResourceTypeSpec(
        name=name,
        provider=provider,
        attributes=attr_map,
        latency=profile,
        id_prefix=id_prefix or name.split("_", 1)[-1][:3] + "-",
        description=description,
        immutable_attrs=immutable,
        shadow_attrs=shadow,
    )


def a(
    name: str,
    type: str = "string",
    required: bool = False,
    computed: bool = False,
    default: Any = None,
    semantic: str = "",
    forces_replacement: bool = False,
    description: str = "",
) -> AttributeSpec:
    """Terse AttributeSpec constructor for catalogs."""
    return AttributeSpec(
        name=name,
        type=type,
        required=required,
        computed=computed,
        default=default,
        semantic=semantic,
        forces_replacement=forces_replacement,
        description=description,
    )
