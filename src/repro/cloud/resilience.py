"""Unified fault resilience over the cloud gateway (3.4-3.5).

The paper's pitch is that cloudless management survives the messy real
cloud -- transient API errors, throttling bursts, hangs, partial
failures. This module is the one place that policy lives:

* a **typed error taxonomy** (:func:`classify`): every
  :class:`CloudAPIError` is ``transient``, ``throttled``, ``terminal``,
  or ``timeout``; only the first two are worth retrying.
* a :class:`RetryPolicy` with exponential backoff and *deterministic*
  jitter -- same operation, same attempt, same delay, so chaos runs are
  reproducible bit-for-bit across seeds.
* per-operation **sim-time timeout budgets**: a logical operation that
  burns its budget in retries and hangs surfaces as a precise
  :class:`OperationTimeout` instead of retrying forever.
* the :class:`ResilientGateway` wrapper, a drop-in for
  :class:`~repro.cloud.gateway.CloudGateway` whose synchronous
  ``execute``/``read_data`` survive injected faults. ``submit`` passes
  through untouched -- the deploy executors keep their own event-loop
  retry (driven by the same :class:`RetryPolicy`), so scheduling
  behaviour stays byte-identical to the golden reference.

Every lifecycle verb (reconcile, rollback, import, update
coordination, drift scans, data reads) routes its cloud calls through
this layer; retries and backoff time are surfaced via ``repro.perf``
(``resilience.retries``, ``resilience.backoff_sim_s``, ...) so
benchmarks can report retry overhead.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, List, Optional

from ..perf import PERF
from .base import CloudAPIError, ControlPlane, PendingOperation

# -- error taxonomy ----------------------------------------------------------

TRANSIENT = "transient"  #: momentary server-side failure; retry as-is
THROTTLED = "throttled"  #: rate pushback; retry with inflated backoff
TERMINAL = "terminal"  #: will fail the same way every time; do not retry
TIMEOUT = "timeout"  #: the operation's sim-time budget is exhausted

#: provider error codes that signal rate pushback rather than a broken
#: request -- retryable, but deserving a longer backoff.
THROTTLE_CODES = frozenset(
    {
        "Throttling",
        "ThrottlingException",
        "RequestLimitExceeded",
        "TooManyRequests",
        "SlowDown",
        "RateLimitExceeded",
    }
)


class OperationTimeout(CloudAPIError):
    """A logical operation exhausted its sim-time budget (incl. retries)."""

    def __init__(
        self,
        message: str,
        *,
        resource_type: str = "",
        operation: str = "",
        budget_s: float = 0.0,
        elapsed_s: float = 0.0,
        last_error: Optional[CloudAPIError] = None,
    ):
        super().__init__(
            "OperationTimedOut",
            message,
            http_status=408,
            transient=False,
            resource_type=resource_type,
            operation=operation,
        )
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s
        self.last_error = last_error


def classify(error: CloudAPIError) -> str:
    """Place one provider error in the taxonomy."""
    if isinstance(error, OperationTimeout):
        return TIMEOUT
    if error.code in THROTTLE_CODES:
        return THROTTLED
    if error.transient:
        return TRANSIENT
    return TERMINAL


# -- retry policy ------------------------------------------------------------


def _unit_hash(key: str) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from ``key``.

    ``hash()`` is salted per process; sha256 keeps jitter identical
    across runs so chaos sweeps replay exactly.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclasses.dataclass
class RetryPolicy:
    """Retry behaviour for transient cloud errors.

    ``backoff`` is the raw exponential schedule the deploy executors
    have always used (uncapped, no jitter) -- their event-loop retry
    must stay byte-identical to the golden reference. The resilience
    layer goes through :meth:`delay_for`, which adds the cap, the
    throttle inflation, and deterministic keyed jitter on top.
    """

    max_attempts: int = 3
    base_backoff_s: float = 5.0
    multiplier: float = 2.0
    max_backoff_s: float = 300.0
    jitter: float = 0.0  # fraction of the delay added deterministically
    throttle_factor: float = 2.0  # extra backoff for THROTTLED errors

    def backoff(self, attempt: int) -> float:
        return self.base_backoff_s * (self.multiplier ** max(0, attempt - 1))

    def retries(self, error_class: str) -> bool:
        """Is this class of error worth another attempt?"""
        return error_class in (TRANSIENT, THROTTLED)

    def delay_for(
        self, attempt: int, error_class: str = TRANSIENT, key: str = ""
    ) -> float:
        delay = self.backoff(attempt)
        if error_class == THROTTLED:
            delay *= self.throttle_factor
        delay = min(delay, self.max_backoff_s)
        if self.jitter > 0.0:
            delay += delay * self.jitter * _unit_hash(f"{key}|{attempt}")
        return delay


#: ResilientGateway's default policy: more patient than the executors'
#: default (lifecycle repairs are rare and must land), with jitter on.
DEFAULT_RESILIENT_POLICY = RetryPolicy(
    max_attempts=5, base_backoff_s=2.0, jitter=0.1
)

#: sim-time budgets per operation class, covering every attempt plus
#: backoff. Generous: the slowest catalog type (VPN gateways, tens of
#: minutes) fits with retries to spare; a hang-looping operation does
#: not spin forever.
DEFAULT_TIMEOUTS: Dict[str, float] = {
    "create": 4 * 3600.0,
    "update": 2 * 3600.0,
    "delete": 2 * 3600.0,
    "read": 1800.0,
    "list": 1800.0,
    "log": 1800.0,
}


@dataclasses.dataclass
class RetryStats:
    """Live counters one ResilientGateway accumulates."""

    retries: int = 0
    backoff_s: float = 0.0  # total sim seconds spent backing off
    gave_up: int = 0  # retryable errors that exhausted max_attempts
    timeouts: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


# -- the wrapper -------------------------------------------------------------


class ResilientGateway:
    """Drop-in :class:`CloudGateway` wrapper with unified retry.

    Synchronous calls (``execute``, ``execute_on``, ``read_data``) loop
    on retryable faults, advancing the shared sim clock through each
    backoff. Everything else -- ``submit``, routing, introspection --
    delegates to the wrapped gateway untouched.
    """

    def __init__(
        self,
        gateway: Any,
        retry: Optional[RetryPolicy] = None,
        timeouts: Optional[Dict[str, float]] = None,
    ):
        if isinstance(gateway, ResilientGateway):
            gateway = gateway.inner
        self.inner = gateway
        self.retry = retry or DEFAULT_RESILIENT_POLICY
        self.timeouts = dict(DEFAULT_TIMEOUTS)
        if timeouts:
            self.timeouts.update(timeouts)
        self.stats = RetryStats()

    @classmethod
    def wrap(
        cls,
        gateway: Any,
        retry: Optional[RetryPolicy] = None,
        timeouts: Optional[Dict[str, float]] = None,
    ) -> "ResilientGateway":
        """Wrap ``gateway``, or return it as-is if already resilient
        (so layered subsystems share one stats ledger)."""
        if isinstance(gateway, ResilientGateway) and retry is None and timeouts is None:
            return gateway
        return cls(gateway, retry=retry, timeouts=timeouts)

    # -- delegation ---------------------------------------------------------

    @property
    def clock(self):
        return self.inner.clock

    @property
    def planes(self):
        return self.inner.planes

    def provider_of(self, rtype: str) -> str:
        return self.inner.provider_of(rtype)

    def plane_for(self, rtype: str) -> ControlPlane:
        return self.inner.plane_for(rtype)

    def default_region(self, rtype: str) -> str:
        return self.inner.default_region(rtype)

    def region_for(self, rtype: str, attrs: Dict[str, Any]) -> str:
        return self.inner.region_for(rtype, attrs)

    def spec_for(self, rtype: str):
        return self.inner.spec_for(rtype)

    def try_spec(self, rtype: str):
        return self.inner.try_spec(rtype)

    def mean_latency(self, rtype: str, operation: str) -> float:
        return self.inner.mean_latency(rtype, operation)

    def total_api_calls(self) -> int:
        return self.inner.total_api_calls()

    def api_calls_by_class(self) -> Dict[str, int]:
        return self.inner.api_calls_by_class()

    def all_records(self) -> List[Any]:
        return self.inner.all_records()

    def find_record(self, resource_id: str):
        return self.inner.find_record(resource_id)

    def submit(self, operation: str, rtype: str, **kwargs: Any) -> PendingOperation:
        """Raw pass-through: event-loop callers own their retry."""
        return self.inner.submit(operation, rtype, **kwargs)

    def __getattr__(self, name: str) -> Any:
        # anything not wrapped above (persistence hooks, ad-hoc
        # introspection) behaves exactly like the inner gateway
        return getattr(self.inner, name)

    # -- resilient synchronous operations -----------------------------------

    def execute(self, operation: str, rtype: str, **kwargs: Any) -> Any:
        """``CloudGateway.execute`` with retry/backoff/timeout."""
        return self._drive(self.inner.plane_for(rtype), operation, rtype, kwargs)

    def execute_on(
        self, plane: ControlPlane, operation: str, rtype: str = "", **kwargs: Any
    ) -> Any:
        """Resilient execute against one specific control plane -- for
        per-plane operations (paginated lists, log reads) that cannot
        route by resource type."""
        return self._drive(plane, operation, rtype, kwargs)

    def read_data(
        self, rtype: str, attrs: Dict[str, Any], region: str = ""
    ) -> Dict[str, Any]:
        clock = self.inner.clock
        budget = self.timeouts.get("read")
        started = clock.now
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.inner.read_data(rtype, attrs, region)
            except CloudAPIError as exc:
                self._handle_failure(
                    exc, attempt, started, budget, rtype, "read", ""
                )

    # -- core loop ----------------------------------------------------------

    def _drive(
        self,
        plane: ControlPlane,
        operation: str,
        rtype: str,
        kwargs: Dict[str, Any],
    ) -> Any:
        clock = self.inner.clock
        budget = self.timeouts.get(operation)
        started = clock.now
        key = f"{rtype}|{operation}|{kwargs.get('resource_id', '')}"
        attempt = 0
        while True:
            attempt += 1
            pending = plane.submit(operation, rtype, **kwargs)
            clock.advance_to(pending.t_complete)
            try:
                return pending.resolve()
            except CloudAPIError as exc:
                self._handle_failure(
                    exc, attempt, started, budget, rtype, operation, key
                )

    def _handle_failure(
        self,
        exc: CloudAPIError,
        attempt: int,
        started: float,
        budget: Optional[float],
        rtype: str,
        operation: str,
        key: str,
    ) -> None:
        """Raise, or back off and return for another attempt."""
        clock = self.inner.clock
        kind = classify(exc)
        if not self.retry.retries(kind):
            raise exc
        if attempt >= self.retry.max_attempts:
            self.stats.gave_up += 1
            PERF.count("resilience.gave_up")
            raise exc
        delay = self.retry.delay_for(attempt, kind, key=key)
        elapsed = clock.now - started
        if budget is not None and elapsed + delay >= budget:
            self.stats.timeouts += 1
            PERF.count("resilience.timeouts")
            raise OperationTimeout(
                f"Operation '{operation}' on '{rtype or 'any'}' exceeded its "
                f"{budget:.0f}s budget after {attempt} attempt(s) "
                f"({elapsed:.0f}s elapsed); last error: {exc.code}.",
                resource_type=rtype,
                operation=operation,
                budget_s=budget,
                elapsed_s=elapsed,
                last_error=exc,
            ) from exc
        self.stats.retries += 1
        self.stats.backoff_s += delay
        PERF.count("resilience.retries")
        PERF.observe("resilience.backoff_sim_s", delay)
        clock.advance_by(delay)
