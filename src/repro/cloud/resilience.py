"""Unified fault resilience over the cloud gateway (3.4-3.5).

The paper's pitch is that cloudless management survives the messy real
cloud -- transient API errors, throttling bursts, hangs, partial
failures. This module is the one place that policy lives:

* a **typed error taxonomy** (:func:`classify`): every
  :class:`CloudAPIError` is ``transient``, ``throttled``, ``terminal``,
  or ``timeout``; only the first two are worth retrying.
* a :class:`RetryPolicy` with exponential backoff and *deterministic*
  jitter -- same operation, same attempt, same delay, so chaos runs are
  reproducible bit-for-bit across seeds.
* per-operation **sim-time timeout budgets**: a logical operation that
  burns its budget in retries and hangs surfaces as a precise
  :class:`OperationTimeout` instead of retrying forever.
* the :class:`ResilientGateway` wrapper, a drop-in for
  :class:`~repro.cloud.gateway.CloudGateway` whose synchronous
  ``execute``/``read_data`` survive injected faults. ``submit`` passes
  through untouched -- the deploy executors keep their own event-loop
  retry (driven by the same :class:`RetryPolicy`), so scheduling
  behaviour stays byte-identical to the golden reference.

Every lifecycle verb (reconcile, rollback, import, update
coordination, drift scans, data reads) routes its cloud calls through
this layer; retries and backoff time are surfaced via ``repro.perf``
(``resilience.retries``, ``resilience.backoff_sim_s``, ...) so
benchmarks can report retry overhead.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, List, Optional

from ..perf import PERF
from .base import CloudAPIError, ControlPlane, PendingOperation

# -- error taxonomy ----------------------------------------------------------

TRANSIENT = "transient"  #: momentary server-side failure; retry as-is
THROTTLED = "throttled"  #: rate pushback; retry with inflated backoff
TERMINAL = "terminal"  #: will fail the same way every time; do not retry
TIMEOUT = "timeout"  #: the operation's sim-time budget is exhausted
UNAVAILABLE = "unavailable"  #: a partition is down; fail fast, do not burn retries

#: provider error codes that signal rate pushback rather than a broken
#: request -- retryable, but deserving a longer backoff.
THROTTLE_CODES = frozenset(
    {
        "Throttling",
        "ThrottlingException",
        "RequestLimitExceeded",
        "TooManyRequests",
        "SlowDown",
        "RateLimitExceeded",
    }
)

#: error codes that signal *sustained* unavailability of a whole
#: partition (region or provider) rather than one unlucky call --
#: these advance circuit breakers; garden-variety transients do not.
OUTAGE_CODES = frozenset(
    {
        "ServiceUnavailable",
        "RegionUnavailable",
        "ProviderOutage",
        "PartitionUnavailable",
    }
)


class OperationTimeout(CloudAPIError):
    """A logical operation exhausted its sim-time budget (incl. retries)."""

    def __init__(
        self,
        message: str,
        *,
        resource_type: str = "",
        operation: str = "",
        budget_s: float = 0.0,
        elapsed_s: float = 0.0,
        last_error: Optional[CloudAPIError] = None,
    ):
        super().__init__(
            "OperationTimedOut",
            message,
            http_status=408,
            transient=False,
            resource_type=resource_type,
            operation=operation,
        )
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s
        self.last_error = last_error


class PartitionUnavailableError(CloudAPIError):
    """Fast-fail raised when a circuit breaker is open for the target
    partition -- no API call was made (that is the point)."""

    def __init__(
        self,
        provider: str,
        region: str = "",
        *,
        retry_at: Optional[float] = None,
        resource_type: str = "",
        operation: str = "",
    ):
        scope = f"{provider}/{region}" if region else provider
        hint = (
            f" A probe is allowed at t={retry_at:.0f}s."
            if retry_at is not None
            else ""
        )
        super().__init__(
            "PartitionUnavailable",
            f"The partition '{scope}' is unreachable (circuit open); "
            f"the call was rejected locally without an API round-trip."
            f"{hint}",
            http_status=503,
            transient=False,
            resource_type=resource_type,
            operation=operation,
        )
        self.provider = provider
        self.region = region
        self.retry_at = retry_at


def classify(error: CloudAPIError) -> str:
    """Place one provider error in the taxonomy."""
    if isinstance(error, OperationTimeout):
        return TIMEOUT
    if isinstance(error, PartitionUnavailableError):
        return UNAVAILABLE
    if error.code in THROTTLE_CODES:
        return THROTTLED
    if error.transient:
        return TRANSIENT
    return TERMINAL


def is_outage_error(error: CloudAPIError) -> bool:
    """Does this error signal sustained partition unavailability?"""
    return error.code in OUTAGE_CODES or isinstance(
        error, PartitionUnavailableError
    )


# -- retry policy ------------------------------------------------------------


def _unit_hash(key: str) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from ``key``.

    ``hash()`` is salted per process; sha256 keeps jitter identical
    across runs so chaos sweeps replay exactly.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclasses.dataclass
class RetryPolicy:
    """Retry behaviour for transient cloud errors.

    ``backoff`` is the raw exponential schedule the deploy executors
    have always used (uncapped, no jitter) -- their event-loop retry
    must stay byte-identical to the golden reference. The resilience
    layer goes through :meth:`delay_for`, which adds the cap, the
    throttle inflation, and deterministic keyed jitter on top.
    """

    max_attempts: int = 3
    base_backoff_s: float = 5.0
    multiplier: float = 2.0
    max_backoff_s: float = 300.0
    jitter: float = 0.0  # fraction of the delay added deterministically
    throttle_factor: float = 2.0  # extra backoff for THROTTLED errors

    def backoff(self, attempt: int) -> float:
        return self.base_backoff_s * (self.multiplier ** max(0, attempt - 1))

    def retries(self, error_class: str) -> bool:
        """Is this class of error worth another attempt?"""
        return error_class in (TRANSIENT, THROTTLED)

    def delay_for(
        self, attempt: int, error_class: str = TRANSIENT, key: str = ""
    ) -> float:
        delay = self.backoff(attempt)
        if error_class == THROTTLED:
            delay *= self.throttle_factor
        delay = min(delay, self.max_backoff_s)
        if self.jitter > 0.0:
            delay += delay * self.jitter * _unit_hash(f"{key}|{attempt}")
        return delay


#: ResilientGateway's default policy: more patient than the executors'
#: default (lifecycle repairs are rare and must land), with jitter on.
DEFAULT_RESILIENT_POLICY = RetryPolicy(
    max_attempts=5, base_backoff_s=2.0, jitter=0.1
)

#: sim-time budgets per operation class, covering every attempt plus
#: backoff. Generous: the slowest catalog type (VPN gateways, tens of
#: minutes) fits with retries to spare; a hang-looping operation does
#: not spin forever.
DEFAULT_TIMEOUTS: Dict[str, float] = {
    "create": 4 * 3600.0,
    "update": 2 * 3600.0,
    "delete": 2 * 3600.0,
    "read": 1800.0,
    "list": 1800.0,
    "log": 1800.0,
}


@dataclasses.dataclass
class RetryStats:
    """Live counters one ResilientGateway accumulates."""

    retries: int = 0
    backoff_s: float = 0.0  # total sim seconds spent backing off
    gave_up: int = 0  # retryable errors that exhausted max_attempts
    timeouts: int = 0
    fast_fails: int = 0  # calls rejected locally by an open breaker

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


# -- partition health & circuit breakers -------------------------------------

#: breaker states (textbook): CLOSED passes traffic, OPEN rejects it
#: locally, HALF_OPEN lets a bounded number of probes through.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: gate decisions a dispatcher acts on
GATE_ALLOW = "allow"  #: dispatch (may be consuming a half-open probe slot)
GATE_OPEN = "open"  #: firmly down until the next probe time; fail fast
GATE_WAIT = "wait"  #: a probe is already in flight; hold, don't fail


@dataclasses.dataclass
class BreakerPolicy:
    """When a partition breaker trips and how it recovers.

    ``failure_threshold`` consecutive outage-class failures open the
    breaker; after ``recovery_s`` of sim time it half-opens and admits
    ``half_open_probes`` probe calls. A failed probe re-opens it with
    the recovery window multiplied by ``backoff_multiplier`` (capped at
    ``max_recovery_s``); a successful probe closes it and resets the
    backoff. All transitions run on the sim clock -- deterministic.
    """

    failure_threshold: int = 5
    recovery_s: float = 300.0
    backoff_multiplier: float = 2.0
    max_recovery_s: float = 3600.0
    half_open_probes: int = 1


class CircuitBreaker:
    """One partition's breaker; sim-time driven, fully deterministic."""

    def __init__(self, key: tuple, policy: Optional[BreakerPolicy] = None):
        self.key = key
        self.policy = policy or BreakerPolicy()
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.open_count = 0  # consecutive opens; drives recovery backoff
        self._probes_out = 0

    @property
    def recovery_s(self) -> float:
        scale = self.policy.backoff_multiplier ** max(0, self.open_count - 1)
        return min(self.policy.recovery_s * scale, self.policy.max_recovery_s)

    def next_probe_at(self) -> float:
        """When the open breaker will admit its next probe."""
        return self.opened_at + self.recovery_s

    def gate(self, now: float) -> str:
        """One dispatch decision; half-open ALLOWs consume a probe slot."""
        if self.state == BREAKER_OPEN:
            if now + 1e-9 >= self.next_probe_at():
                self.state = BREAKER_HALF_OPEN
                self._probes_out = 0
                PERF.count("resilience.breaker_half_open")
            else:
                return GATE_OPEN
        if self.state == BREAKER_HALF_OPEN:
            if self._probes_out < self.policy.half_open_probes:
                self._probes_out += 1
                PERF.count("resilience.breaker_probes")
                return GATE_ALLOW
            return GATE_WAIT
        return GATE_ALLOW

    def blocked(self, now: float) -> bool:
        """Pure query: firmly open with no probe due yet? (Never
        transitions state and never consumes probe slots.)"""
        return self.state == BREAKER_OPEN and now + 1e-9 < self.next_probe_at()

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state != BREAKER_CLOSED:
            self.state = BREAKER_CLOSED
            self.open_count = 0
            self._probes_out = 0
            PERF.count("resilience.breaker_closed")

    def record_failure(self, now: float) -> None:
        if self.state == BREAKER_HALF_OPEN:
            # the probe failed: back off harder before the next one
            self.state = BREAKER_OPEN
            self.opened_at = now
            self.open_count += 1
            self._probes_out = 0
            PERF.count("resilience.breaker_reopened")
            return
        if self.state == BREAKER_CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.policy.failure_threshold:
                self.state = BREAKER_OPEN
                self.opened_at = now
                self.open_count += 1
                PERF.count("resilience.breaker_opened")
        # already OPEN: a straggler completion from before the trip;
        # nothing to learn

    def as_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "open_count": self.open_count,
            "next_probe_at": self.next_probe_at()
            if self.state == BREAKER_OPEN
            else None,
        }


@dataclasses.dataclass
class PartitionHealth:
    """Rolling per-(provider, region) stats the monitor accumulates."""

    window: int = 64
    ops: int = 0
    errors: int = 0
    outage_errors: int = 0
    latency_sum_s: float = 0.0
    last_error_code: str = ""
    _recent: List[bool] = dataclasses.field(default_factory=list)

    def record(self, ok: bool, latency_s: float, code: str) -> None:
        self.ops += 1
        self.latency_sum_s += latency_s
        if not ok:
            self.errors += 1
            self.last_error_code = code
        self._recent.append(ok)
        if len(self._recent) > self.window:
            del self._recent[: len(self._recent) - self.window]

    @property
    def error_rate(self) -> float:
        """Error fraction over the rolling window."""
        if not self._recent:
            return 0.0
        return sum(1 for ok in self._recent if not ok) / len(self._recent)

    @property
    def mean_latency_s(self) -> float:
        return self.latency_sum_s / self.ops if self.ops else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ops": self.ops,
            "errors": self.errors,
            "outage_errors": self.outage_errors,
            "error_rate": round(self.error_rate, 4),
            "mean_latency_s": round(self.mean_latency_s, 3),
            "last_error_code": self.last_error_code,
        }


class HealthMonitor:
    """Tracks partition health and drives the circuit breakers.

    Partitions are ``(provider, region)`` pairs; region ``""`` is the
    provider-wide partition (log reads, token probes). A dispatcher
    asks :meth:`gate` before sending work; completions feed back via
    :meth:`record`. Only outage-class failures (see ``OUTAGE_CODES``
    and timeouts) advance breakers -- a one-off 500 is the retry
    policy's business, not a reason to declare a region dead.
    """

    def __init__(self, policy: Optional[BreakerPolicy] = None, window: int = 64):
        self.policy = policy or BreakerPolicy()
        self.window = window
        self.breakers: Dict[tuple, CircuitBreaker] = {}
        self.health: Dict[tuple, PartitionHealth] = {}

    def _keys(self, provider: str, region: str):
        if region:
            return ((provider, ""), (provider, region))
        return ((provider, ""),)

    def breaker(self, provider: str, region: str = "") -> CircuitBreaker:
        key = (provider, region)
        found = self.breakers.get(key)
        if found is None:
            found = self.breakers[key] = CircuitBreaker(key, self.policy)
        return found

    def health_of(self, provider: str, region: str = "") -> PartitionHealth:
        key = (provider, region)
        found = self.health.get(key)
        if found is None:
            found = self.health[key] = PartitionHealth(window=self.window)
        return found

    # -- dispatch gating -----------------------------------------------------

    def gate(self, provider: str, region: str, now: float) -> str:
        """Combined decision over the provider-wide and region breakers.

        ``GATE_OPEN`` dominates ``GATE_WAIT`` dominates ``GATE_ALLOW``;
        a half-open ALLOW consumes that breaker's probe slot (the
        dispatched operation *is* the probe).
        """
        decision = GATE_ALLOW
        for key in self._keys(provider, region):
            found = self.breakers.get(key)
            if found is None:
                continue
            verdict = found.gate(now)
            if verdict == GATE_OPEN:
                return GATE_OPEN
            if verdict == GATE_WAIT:
                decision = GATE_WAIT
        return decision

    def allow(self, provider: str, region: str, now: float) -> bool:
        return self.gate(provider, region, now) == GATE_ALLOW

    def blocked(self, provider: str, region: str, now: float) -> bool:
        """Pure query: is the partition firmly open (no probe due)?"""
        return any(
            found is not None and found.blocked(now)
            for found in (
                self.breakers.get(key) for key in self._keys(provider, region)
            )
        )

    def next_probe_at(self, provider: str, region: str) -> Optional[float]:
        """Latest next-probe time across the partition's open breakers."""
        out: Optional[float] = None
        for key in self._keys(provider, region):
            found = self.breakers.get(key)
            if found is not None and found.state == BREAKER_OPEN:
                at = found.next_probe_at()
                out = at if out is None else max(out, at)
        return out

    def recovery_horizon(
        self, provider: str, region: str, now: float
    ) -> Optional[float]:
        """When a firmly-open partition next admits a probe, or None if
        traffic is allowed right now.

        This is the breaker-side twin of the status page's outage
        horizon: consumers that *defer* work to a dark partition (the
        drift watcher, the update coordinator) use whichever horizon is
        later as the earliest time a retry can possibly succeed.
        """
        if not self.blocked(provider, region, now):
            return None
        return self.next_probe_at(provider, region)

    # -- feedback ------------------------------------------------------------

    def record(
        self,
        provider: str,
        region: str,
        *,
        ok: bool,
        now: float,
        latency_s: float = 0.0,
        code: str = "",
        outage: bool = False,
    ) -> None:
        health = self.health_of(provider, region)
        health.record(ok, latency_s, code)
        if not ok and outage:
            health.outage_errors += 1
            # an outage failure trips only its own partition's breaker:
            # a dark region must never open the provider-wide breaker,
            # or healthy sibling regions would be blocked with it
            self.breaker(provider, region).record_failure(now)
            return
        if ok:
            # successes touch only existing breakers: healthy traffic
            # must not allocate breaker state per partition
            for key in self._keys(provider, region):
                found = self.breakers.get(key)
                if found is not None:
                    found.record_success(now)

    # -- introspection -------------------------------------------------------

    def partitions(self):
        return sorted(set(self.breakers) | set(self.health))

    def snapshot(self) -> Dict[str, Any]:
        """Perf-registry-friendly view of every known partition."""
        out: Dict[str, Any] = {}
        for key in self.partitions():
            provider, region = key
            label = f"{provider}/{region}" if region else provider
            entry: Dict[str, Any] = {}
            found = self.breakers.get(key)
            if found is not None:
                entry["breaker"] = found.as_dict()
            stats = self.health.get(key)
            if stats is not None:
                entry["health"] = stats.as_dict()
            out[label] = entry
        return out

    def open_partitions(self, now: float):
        """Partitions currently failing fast (firmly open breakers)."""
        return sorted(
            key for key, b in self.breakers.items() if b.blocked(now)
        )


# -- the wrapper -------------------------------------------------------------


class ResilientGateway:
    """Drop-in :class:`CloudGateway` wrapper with unified retry.

    Synchronous calls (``execute``, ``execute_on``, ``read_data``) loop
    on retryable faults, advancing the shared sim clock through each
    backoff. Everything else -- ``submit``, routing, introspection --
    delegates to the wrapped gateway untouched.
    """

    def __init__(
        self,
        gateway: Any,
        retry: Optional[RetryPolicy] = None,
        timeouts: Optional[Dict[str, float]] = None,
        health: Optional[HealthMonitor] = None,
    ):
        if isinstance(gateway, ResilientGateway):
            if health is None:
                health = gateway.health
            gateway = gateway.inner
        self.inner = gateway
        self.retry = retry or DEFAULT_RESILIENT_POLICY
        self.timeouts = dict(DEFAULT_TIMEOUTS)
        if timeouts:
            self.timeouts.update(timeouts)
        self.stats = RetryStats()
        #: optional partition health/breaker state; when set, calls into
        #: a tripped partition fail fast with PartitionUnavailableError
        self.health = health

    @classmethod
    def wrap(
        cls,
        gateway: Any,
        retry: Optional[RetryPolicy] = None,
        timeouts: Optional[Dict[str, float]] = None,
        health: Optional[HealthMonitor] = None,
    ) -> "ResilientGateway":
        """Wrap ``gateway``, or return it as-is if already resilient
        (so layered subsystems share one stats ledger)."""
        if (
            isinstance(gateway, ResilientGateway)
            and retry is None
            and timeouts is None
            and (health is None or health is gateway.health)
        ):
            return gateway
        return cls(gateway, retry=retry, timeouts=timeouts, health=health)

    # -- delegation ---------------------------------------------------------

    @property
    def clock(self):
        return self.inner.clock

    @property
    def planes(self):
        return self.inner.planes

    def provider_of(self, rtype: str) -> str:
        return self.inner.provider_of(rtype)

    def plane_for(self, rtype: str) -> ControlPlane:
        return self.inner.plane_for(rtype)

    def default_region(self, rtype: str) -> str:
        return self.inner.default_region(rtype)

    def region_for(self, rtype: str, attrs: Dict[str, Any]) -> str:
        return self.inner.region_for(rtype, attrs)

    def spec_for(self, rtype: str):
        return self.inner.spec_for(rtype)

    def try_spec(self, rtype: str):
        return self.inner.try_spec(rtype)

    def mean_latency(self, rtype: str, operation: str) -> float:
        return self.inner.mean_latency(rtype, operation)

    def total_api_calls(self) -> int:
        return self.inner.total_api_calls()

    def api_calls_by_class(self) -> Dict[str, int]:
        return self.inner.api_calls_by_class()

    def all_records(self) -> List[Any]:
        return self.inner.all_records()

    def find_record(self, resource_id: str):
        return self.inner.find_record(resource_id)

    def submit(self, operation: str, rtype: str, **kwargs: Any) -> PendingOperation:
        """Raw pass-through: event-loop callers own their retry."""
        return self.inner.submit(operation, rtype, **kwargs)

    def __getattr__(self, name: str) -> Any:
        # anything not wrapped above (persistence hooks, ad-hoc
        # introspection) behaves exactly like the inner gateway
        return getattr(self.inner, name)

    # -- resilient synchronous operations -----------------------------------

    def execute(self, operation: str, rtype: str, **kwargs: Any) -> Any:
        """``CloudGateway.execute`` with retry/backoff/timeout."""
        return self._drive(self.inner.plane_for(rtype), operation, rtype, kwargs)

    def execute_on(
        self, plane: ControlPlane, operation: str, rtype: str = "", **kwargs: Any
    ) -> Any:
        """Resilient execute against one specific control plane -- for
        per-plane operations (paginated lists, log reads) that cannot
        route by resource type."""
        return self._drive(plane, operation, rtype, kwargs)

    def read_data(
        self, rtype: str, attrs: Dict[str, Any], region: str = ""
    ) -> Dict[str, Any]:
        clock = self.inner.clock
        budget = self.timeouts.get("read")
        started = clock.now
        attempt = 0
        provider = getattr(self.inner.plane_for(rtype), "provider", "")
        while True:
            attempt += 1
            self._fast_fail_check(provider, region, rtype, "read")
            try:
                return self.inner.read_data(rtype, attrs, region)
            except CloudAPIError as exc:
                if self.health is not None:
                    self.health.record(
                        provider,
                        region,
                        ok=False,
                        now=clock.now,
                        code=exc.code,
                        outage=is_outage_error(exc),
                    )
                self._handle_failure(
                    exc, attempt, started, budget, rtype, "read", ""
                )

    # -- core loop ----------------------------------------------------------

    def _partition(
        self, plane: ControlPlane, kwargs: Dict[str, Any]
    ) -> tuple:
        """(provider, region) a call lands in: the region kwarg, else
        the targeted record's home region, else "" (region-less)."""
        provider = getattr(plane, "provider", "")
        region = kwargs.get("region") or ""
        if not region:
            resource_id = kwargs.get("resource_id") or ""
            if resource_id:
                record = plane.records.get(resource_id)
                if record is not None:
                    region = record.region
        return provider, region

    def _fast_fail_check(
        self, provider: str, region: str, rtype: str, operation: str
    ) -> None:
        """Raise PartitionUnavailableError if the breaker is firmly
        open; a half-open gate lets the call through as the probe."""
        if self.health is None or not provider:
            return
        now = self.inner.clock.now
        if self.health.gate(provider, region, now) == GATE_OPEN:
            self.stats.fast_fails += 1
            PERF.count("resilience.fast_fails")
            raise PartitionUnavailableError(
                provider,
                region,
                retry_at=self.health.next_probe_at(provider, region),
                resource_type=rtype,
                operation=operation,
            )

    def _drive(
        self,
        plane: ControlPlane,
        operation: str,
        rtype: str,
        kwargs: Dict[str, Any],
    ) -> Any:
        clock = self.inner.clock
        budget = self.timeouts.get(operation)
        started = clock.now
        key = f"{rtype}|{operation}|{kwargs.get('resource_id', '')}"
        provider, part_region = self._partition(plane, kwargs)
        attempt = 0
        while True:
            attempt += 1
            self._fast_fail_check(provider, part_region, rtype, operation)
            t_sent = clock.now
            pending = plane.submit(operation, rtype, **kwargs)
            clock.advance_to(pending.t_complete)
            try:
                result = pending.resolve()
            except CloudAPIError as exc:
                outage = is_outage_error(exc)
                if self.health is not None and provider:
                    self.health.record(
                        provider,
                        part_region,
                        ok=False,
                        now=clock.now,
                        latency_s=clock.now - t_sent,
                        code=exc.code,
                        outage=outage,
                    )
                    if outage and self.health.blocked(
                        provider, part_region, clock.now
                    ):
                        # the breaker tripped on this very failure: stop
                        # burning the retry budget against a dark wall
                        raise PartitionUnavailableError(
                            provider,
                            part_region,
                            retry_at=self.health.next_probe_at(
                                provider, part_region
                            ),
                            resource_type=rtype,
                            operation=operation,
                        ) from exc
                self._handle_failure(
                    exc, attempt, started, budget, rtype, operation, key
                )
            else:
                if self.health is not None and provider:
                    self.health.record(
                        provider,
                        part_region,
                        ok=True,
                        now=clock.now,
                        latency_s=clock.now - t_sent,
                    )
                return result

    def _handle_failure(
        self,
        exc: CloudAPIError,
        attempt: int,
        started: float,
        budget: Optional[float],
        rtype: str,
        operation: str,
        key: str,
    ) -> None:
        """Raise, or back off and return for another attempt."""
        clock = self.inner.clock
        kind = classify(exc)
        if not self.retry.retries(kind):
            raise exc
        if attempt >= self.retry.max_attempts:
            self.stats.gave_up += 1
            PERF.count("resilience.gave_up")
            raise exc
        delay = self.retry.delay_for(attempt, kind, key=key)
        elapsed = clock.now - started
        if budget is not None and elapsed + delay >= budget:
            self.stats.timeouts += 1
            PERF.count("resilience.timeouts")
            raise OperationTimeout(
                f"Operation '{operation}' on '{rtype or 'any'}' exceeded its "
                f"{budget:.0f}s budget after {attempt} attempt(s) "
                f"({elapsed:.0f}s elapsed); last error: {exc.code}.",
                resource_type=rtype,
                operation=operation,
                budget_s=budget,
                elapsed_s=elapsed,
                last_error=exc,
            ) from exc
        self.stats.retries += 1
        self.stats.backoff_s += delay
        PERF.count("resilience.retries")
        PERF.observe("resilience.backoff_sim_s", delay)
        clock.advance_by(delay)
