"""Simulated cloud control plane.

One :class:`ControlPlane` per provider: it owns the resource store, the
API rate limiters, the latency model, the fault injector, and the
activity log. Every operation flows through :meth:`submit`, which
returns a :class:`PendingOperation` carrying the simulated completion
time -- executors drive these as discrete events.

The control plane also enforces *cloud-level* constraints (same-region
rules, reference existence, CIDR overlap, quotas). When they fail, they
fail the way real clouds do: after provisioning latency, with an opaque
provider-style error message (the raw material for 3.5's debugger).
"""

from __future__ import annotations

import dataclasses
import hashlib
import ipaddress
import itertools
import random
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .activitylog import ActivityLog
from .clock import SimClock
from .faults import FaultInjector
from .latency import LatencyModel
from .ratelimit import RateLimiterBank
from .resources import AttributeSpec, ResourceTypeSpec

READ_OPS = ("read", "list", "log")
WRITE_OPS = ("create", "update", "delete")

#: memoized CIDR parses -- provider overlap checks re-see the same
#: strings thousands of times at 10k-resource scale
_NETWORK_CACHE: Dict[Tuple[str, bool], Any] = {}
_NETWORK_CACHE_MAX = 8192


def parse_network(text: str, strict: bool = True) -> Any:
    """``ipaddress.ip_network`` with a process-wide parse cache.

    Networks are immutable, so sharing parses is safe; invalid inputs
    raise ``ValueError`` exactly like the underlying call (and are not
    cached).
    """
    key = (text, strict)
    net = _NETWORK_CACHE.get(key)
    if net is None:
        net = ipaddress.ip_network(text, strict=strict)
        if len(_NETWORK_CACHE) >= _NETWORK_CACHE_MAX:
            _NETWORK_CACHE.clear()
        _NETWORK_CACHE[key] = net
    return net


class CloudAPIError(Exception):
    """A provider API error -- code + human-oriented (opaque) message."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        http_status: int = 400,
        transient: bool = False,
        resource_type: str = "",
        operation: str = "",
        resource_id: str = "",
    ):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.http_status = http_status
        self.transient = transient
        self.resource_type = resource_type
        self.operation = operation
        self.resource_id = resource_id


@dataclasses.dataclass
class ResourceRecord:
    """One live resource in the provider's store."""

    id: str
    type: str
    region: str
    attrs: Dict[str, Any]
    created_at: float
    updated_at: float
    state: str = "active"  # active | deleting

    @property
    def name(self) -> str:
        return str(self.attrs.get("name", self.id))

    def snapshot(self) -> Dict[str, Any]:
        """Attribute view as the API would return it (includes id)."""
        out = dict(self.attrs)
        out["id"] = self.id
        return out


_EMPTY_IDS: FrozenSet[str] = frozenset()


def _any_type(value: Any) -> bool:
    return True


#: attribute-type validators, hoisted out of the per-create loop
_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
    "list": lambda v: isinstance(v, list),
    "map": lambda v: isinstance(v, dict),
}


class RecordStore(Dict[str, ResourceRecord]):
    """The provider's resource store, with secondary indexes.

    Behaves as a plain ``id -> ResourceRecord`` dict for every existing
    caller (persistence round-trips write into it directly), while
    keeping three indexes in lockstep with mutations:

    * ``ids_by_type`` -- resource ids per resource type, so provider
      constraint checks (CIDR overlap, peering) scan only same-type
      records instead of the whole estate;
    * per ``(type, region)`` counts for O(1) quota checks;
    * per ``(type, region, name)`` counts for O(1) name-uniqueness
      checks.

    Together these turn per-create validation from O(records) into
    O(1) -- the difference between quadratic and linear applies at
    10k-resource scale (see ``docs/performance.md``).

    The indexes key off ``record.type``, ``record.region`` and
    ``record.attrs["name"]``. Code that mutates a stored record's name
    in place must call :meth:`note_renamed` with the previous name
    (the two in-place mutation sites live in this module); type and
    region are never mutated.
    """

    #: attribute names that act as parent links (subnet -> network
    #: container); records carrying one are indexed by
    #: ``(type, attr, value)`` so sibling scans (CIDR overlap checks)
    #: touch only records under the same parent instead of every record
    #: of the type.
    LINK_ATTRS: Tuple[str, ...] = ("vpc_id", "vnet_id")

    def __init__(self) -> None:
        super().__init__()
        self.ids_by_type: Dict[str, Set[str]] = {}
        self._region_counts: Dict[Tuple[str, str], int] = {}
        self._name_counts: Dict[Tuple[str, str, str], int] = {}
        self._link_ids: Dict[Tuple[str, str, str], Set[str]] = {}

    # -- index maintenance -------------------------------------------------

    def _index_add(self, record: ResourceRecord) -> None:
        self.ids_by_type.setdefault(record.type, set()).add(record.id)
        tr = (record.type, record.region)
        self._region_counts[tr] = self._region_counts.get(tr, 0) + 1
        name = record.attrs.get("name")
        if isinstance(name, str):
            key = (record.type, record.region, name)
            self._name_counts[key] = self._name_counts.get(key, 0) + 1
        for attr in self.LINK_ATTRS:
            value = record.attrs.get(attr)
            if isinstance(value, str):
                self._link_ids.setdefault(
                    (record.type, attr, value), set()
                ).add(record.id)

    def _index_remove(self, record: ResourceRecord) -> None:
        ids = self.ids_by_type.get(record.type)
        if ids is not None:
            ids.discard(record.id)
            if not ids:
                del self.ids_by_type[record.type]
        tr = (record.type, record.region)
        left = self._region_counts.get(tr, 0) - 1
        if left > 0:
            self._region_counts[tr] = left
        else:
            self._region_counts.pop(tr, None)
        name = record.attrs.get("name")
        if isinstance(name, str):
            self._discard_name(record.type, record.region, name)
        for attr in self.LINK_ATTRS:
            value = record.attrs.get(attr)
            if isinstance(value, str):
                bucket = self._link_ids.get((record.type, attr, value))
                if bucket is not None:
                    bucket.discard(record.id)
                    if not bucket:
                        del self._link_ids[(record.type, attr, value)]

    def _discard_name(self, rtype: str, region: str, name: str) -> None:
        key = (rtype, region, name)
        left = self._name_counts.get(key, 0) - 1
        if left > 0:
            self._name_counts[key] = left
        else:
            self._name_counts.pop(key, None)

    # -- dict overrides (every mutation path maintains the indexes) --------

    def __setitem__(self, key: str, record: ResourceRecord) -> None:
        old = super().get(key)
        if old is not None:
            self._index_remove(old)
        super().__setitem__(key, record)
        self._index_add(record)

    def __delitem__(self, key: str) -> None:
        record = super().__getitem__(key)
        super().__delitem__(key)
        self._index_remove(record)

    def pop(self, key: str, *default: Any) -> Any:
        if key in self:
            record = super().__getitem__(key)
            super().__delitem__(key)
            self._index_remove(record)
            return record
        if default:
            return default[0]
        raise KeyError(key)

    def popitem(self) -> Tuple[str, ResourceRecord]:
        key, record = super().popitem()
        self._index_remove(record)
        return key, record

    def clear(self) -> None:
        super().clear()
        self.ids_by_type.clear()
        self._region_counts.clear()
        self._name_counts.clear()
        self._link_ids.clear()

    def update(self, *args: Any, **kwargs: Any) -> None:  # type: ignore[override]
        for key, record in dict(*args, **kwargs).items():
            self[key] = record

    def setdefault(
        self, key: str, default: Optional[ResourceRecord] = None
    ) -> Any:
        if key not in self:
            self[key] = default  # type: ignore[assignment]
        return super().__getitem__(key)

    # -- indexed queries ---------------------------------------------------

    def has_name(self, rtype: str, region: str, name: str) -> bool:
        """Any live record of ``rtype`` named ``name`` in ``region``?"""
        return (rtype, region, name) in self._name_counts

    def count_in_region(self, rtype: str, region: str) -> int:
        return self._region_counts.get((rtype, region), 0)

    def ids_of_type(self, rtype: str) -> FrozenSet[str]:
        """Read-only view of the ids of every record of ``rtype``."""
        return self.ids_by_type.get(rtype, _EMPTY_IDS)  # type: ignore[return-value]

    def ids_linked(self, rtype: str, attr: str, value: str) -> FrozenSet[str]:
        """Ids of ``rtype`` records whose link ``attr`` equals ``value``.

        ``attr`` must be one of :attr:`LINK_ATTRS` (indexed at insert).
        """
        return self._link_ids.get((rtype, attr, value), _EMPTY_IDS)  # type: ignore[return-value]

    def note_renamed(self, record: ResourceRecord, old_name: Any) -> None:
        """Re-index after an in-place ``record.attrs`` name change."""
        new_name = record.attrs.get("name")
        if old_name == new_name:
            return
        if isinstance(old_name, str):
            self._discard_name(record.type, record.region, old_name)
        if isinstance(new_name, str):
            key = (record.type, record.region, new_name)
            self._name_counts[key] = self._name_counts.get(key, 0) + 1


@dataclasses.dataclass
class PendingOperation:
    """An in-flight API operation in simulated time."""

    operation: str
    resource_type: str
    t_submit: float
    t_start: float  # after rate limiting
    t_complete: float  # when the result becomes visible
    _resolve: Callable[[], Any] = lambda: None
    resolved: bool = False
    result: Any = None
    error: Optional[CloudAPIError] = None

    @property
    def duration(self) -> float:
        return self.t_complete - self.t_submit

    def resolve(self) -> Any:
        """Apply the operation's effect; call once clock >= t_complete."""
        if self.resolved:
            if self.error is not None:
                raise self.error
            return self.result
        self.resolved = True
        try:
            self.result = self._resolve()
        except CloudAPIError as exc:
            self.error = exc
            raise
        return self.result


class ControlPlane:
    """The management plane of one simulated provider."""

    #: provider name; subclasses override
    provider = "generic"
    #: page size for list() calls -- what makes full scans expensive
    list_page_size = 25

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        seed: int = 0,
        rate_limits: Optional[Dict[str, tuple]] = None,
        regions: Optional[List[str]] = None,
    ):
        self.clock = clock or SimClock()
        self.seed = seed
        self.rng = random.Random(seed)
        self.specs: Dict[str, ResourceTypeSpec] = {}
        self.latency = LatencyModel()
        self.limiter = RateLimiterBank(rate_limits)
        self.faults = FaultInjector(random.Random(seed + 1))
        self.log = ActivityLog(self.provider)
        self.records: RecordStore = RecordStore()
        self.regions = regions or ["region-1"]
        self.quotas: Dict[Tuple[str, str], int] = {}  # (rtype, region) -> max
        self._next_id = 1
        #: (rtype, region, name) -> next generation for identity-keyed
        #: id minting; delete/recreate of the same identity bumps the
        #: generation so the recreate gets a fresh id
        self._id_gens: Dict[Tuple[str, str, str], int] = {}
        self.api_calls: Dict[str, int] = {"read": 0, "write": 0}
        #: idempotency-token index: token -> minted resource id. A create
        #: retried with the same token returns the original resource
        #: instead of provisioning a duplicate (ClientToken semantics).
        self._tokens: Dict[str, str] = {}
        #: write operations submitted but not yet resolved by a client.
        #: The cloud side finishes these even if the client dies --
        #: ``settle()`` models that by resolving every survivor.
        self._inflight: List[PendingOperation] = []
        #: brownout latency multiplier for the operation currently being
        #: built (set around the builder call in ``submit``)
        self._latency_scale = 1.0
        #: memoized identity-keyed latency draws (pure in their key)
        self._latency_samples: Dict[Tuple[str, str, str], float] = {}
        self._register_catalog()

    # -- subclass hooks ------------------------------------------------------

    def _register_catalog(self) -> None:
        """Subclasses register their ResourceTypeSpecs here."""

    def validate_create(
        self, spec: ResourceTypeSpec, attrs: Dict[str, Any], region: str
    ) -> None:
        """Provider-specific create-time constraints (raise CloudAPIError)."""

    def validate_update(
        self,
        spec: ResourceTypeSpec,
        record: ResourceRecord,
        new_attrs: Dict[str, Any],
    ) -> None:
        """Provider-specific update-time constraints."""

    # -- registration ------------------------------------------------------

    def register_spec(self, spec: ResourceTypeSpec) -> None:
        self.specs[spec.name] = spec
        self.latency.register(spec.name, spec.latency)

    def spec_for(self, rtype: str) -> ResourceTypeSpec:
        spec = self.specs.get(rtype)
        if spec is None:
            raise CloudAPIError(
                "UnknownResourceType",
                f"The resource type '{rtype}' is not supported by {self.provider}.",
                http_status=404,
                resource_type=rtype,
            )
        return spec

    def set_quota(self, rtype: str, region: str, limit: int) -> None:
        self.quotas[(rtype, region)] = limit

    # -- public operation API -------------------------------------------------

    def submit(
        self,
        operation: str,
        rtype: str = "",
        *,
        resource_id: str = "",
        attrs: Optional[Dict[str, Any]] = None,
        region: str = "",
        actor: str = "iac",
        t_submit: Optional[float] = None,
        idempotency_token: str = "",
    ) -> PendingOperation:
        """Enqueue one API call; returns its completion event."""
        now = self.clock.now if t_submit is None else t_submit
        op_class = "read" if operation in READ_OPS else "write"
        self.api_calls[op_class] += 1
        t_start = self.limiter.consume(op_class, now)
        spec = self.spec_for(rtype) if rtype else None

        # where does this call land? explicit region kwarg, else the
        # targeted record's home region, else "" (a region-less call --
        # log reads, token probes -- only a provider-wide outage hits it)
        op_region = region
        if not op_region and resource_id:
            targeted = self.records.get(resource_id)
            if targeted is not None:
                op_region = targeted.region

        # sustained outages dominate point faults: a dark partition
        # rejects *every* operation class fast, and brownouts stretch
        # whatever latency the operation would otherwise have had
        outage = self.faults.outage_at(now, rtype, op_region, op_class)
        if outage is not None:
            t_complete = t_start + outage.error_latency_s
            outage_error = CloudAPIError(
                outage.error_code,
                outage.message,
                http_status=503,
                transient=True,
                resource_type=rtype,
                operation=operation,
            )

            def unavailable() -> Any:
                raise outage_error

            return self._track(
                PendingOperation(
                    operation, rtype, now, t_start, t_complete, unavailable
                )
            )
        self._latency_scale = self.faults.brownout_scale(now, rtype, op_region)
        try:
            # scheduled fault rules may target any operation class (a list
            # page mid-scan, a log read); the blanket transient_rate still
            # only hits mutating calls (see FaultInjector.check)
            fault = self.faults.check(rtype, operation, now=now)
            if fault is not None:
                t_complete = (
                    t_start
                    + self._sample_latency(rtype, operation, resource_id or "fault")
                    + fault.extra_delay_s
                )
                error = CloudAPIError(
                    fault.error_code,
                    fault.message,
                    http_status=500 if fault.transient else 400,
                    transient=fault.transient,
                    resource_type=rtype,
                    operation=operation,
                )

                def fail() -> Any:
                    raise error

                return self._track(
                    PendingOperation(operation, rtype, now, t_start, t_complete, fail)
                )

            builder = {
                "create": self._build_create,
                "update": self._build_update,
                "delete": self._build_delete,
                "read": self._build_read,
                "log": self._build_read,
                "list": self._build_list,
            }.get(operation)
            if builder is None:
                raise ValueError(f"unknown operation {operation!r}")
            return self._track(
                builder(
                    spec,
                    now,
                    t_start,
                    resource_id=resource_id,
                    attrs=attrs or {},
                    region=region,
                    actor=actor,
                    token=idempotency_token,
                )
            )
        finally:
            self._latency_scale = 1.0

    def _track(self, pending: PendingOperation) -> PendingOperation:
        """Register a write op as in flight until resolved or settled."""
        if pending.operation in WRITE_OPS:
            if len(self._inflight) > 512:
                self._inflight = [p for p in self._inflight if not p.resolved]
            self._inflight.append(pending)
        return pending

    def settle(self) -> int:
        """Resolve every submitted-but-unresolved write operation.

        Models the cloud side outliving the client: operations that were
        accepted before a crash complete (or fail) on the provider even
        though nobody is listening. Effects land in ``t_complete`` order;
        errors are swallowed (there is no client to receive them).
        Returns how many operations were settled.
        """
        survivors = [p for p in self._inflight if not p.resolved]
        self._inflight = []
        count = 0
        for pending in sorted(survivors, key=lambda p: p.t_complete):
            self.clock.advance_to(max(pending.t_complete, self.clock.now))
            try:
                pending.resolve()
            except CloudAPIError:
                pass
            count += 1
        return count

    def execute(self, operation: str, rtype: str = "", **kwargs: Any) -> Any:
        """Synchronous convenience: submit, advance the clock, resolve."""
        pending = self.submit(operation, rtype, **kwargs)
        self.clock.advance_to(pending.t_complete)
        return pending.resolve()

    # -- operation builders ---------------------------------------------------

    def _finish_time(
        self, rtype: str, operation: str, t_start: float, key: str = ""
    ) -> float:
        return t_start + self._sample_latency(rtype, operation, key)

    def _sample_latency(self, rtype: str, operation: str, key: str) -> float:
        """Latency draw keyed by operation *identity*, not call order.

        Two executors running the same plan therefore see identical
        per-resource latencies -- scheduling comparisons measure
        scheduling, never RNG stream divergence. Identity-keyed also
        means the draw is a pure function of its key, so it is memoized:
        seeding a fresh ``Random`` per operation (SHA-512 over the key
        string) is a measurable slice of large applies.
        """
        cache_key = (rtype, operation, key)
        sample = self._latency_samples.get(cache_key)
        if sample is None:
            rng = random.Random(
                f"{self.provider}|{rtype}|{operation}|{key}|{self.seed}"
            )
            sample = self.latency.sample(rtype, operation, rng)
            self._latency_samples[cache_key] = sample
        return sample * self._latency_scale

    def _build_create(
        self,
        spec: ResourceTypeSpec,
        t_submit: float,
        t_start: float,
        *,
        resource_id: str,
        attrs: Dict[str, Any],
        region: str,
        actor: str,
        token: str = "",
    ) -> PendingOperation:
        t_complete = self._finish_time(
            spec.name, "create", t_start, key=str(attrs.get("name", ""))
        )

        def apply() -> Dict[str, Any]:
            if token:
                # ClientToken semantics: a create retried with the same
                # token is the *same* logical request -- return the
                # original resource instead of provisioning a duplicate
                prior_id = self._tokens.get(token)
                if prior_id is not None:
                    prior = self.records.get(prior_id)
                    if prior is not None:
                        return prior.snapshot()
            self._check_create(spec, attrs, region)
            new_id = self._mint_id(spec, region, str(attrs.get("name", "")))
            full_attrs = self._attrs_with_defaults(spec, attrs)
            full_attrs.update(self._computed_attrs(spec, new_id, region))
            record = ResourceRecord(
                id=new_id,
                type=spec.name,
                region=region,
                attrs=full_attrs,
                created_at=t_complete,
                updated_at=t_complete,
            )
            self.records[new_id] = record
            if token:
                self._tokens[token] = new_id
            self.log.append(
                t_complete,
                "create",
                spec.name,
                new_id,
                record.name,
                region,
                actor,
                tuple(sorted(attrs)),
            )
            return record.snapshot()

        return PendingOperation("create", spec.name, t_submit, t_start, t_complete, apply)

    def _build_update(
        self,
        spec: ResourceTypeSpec,
        t_submit: float,
        t_start: float,
        *,
        resource_id: str,
        attrs: Dict[str, Any],
        region: str,
        actor: str,
        token: str = "",
    ) -> PendingOperation:
        t_complete = self._finish_time(spec.name, "update", t_start, key=resource_id)

        def apply() -> Dict[str, Any]:
            record = self._get_record(spec.name, resource_id, "update")
            for name in attrs:
                if name in spec.immutable_attrs:
                    raise CloudAPIError(
                        "InvalidParameterCombination",
                        f"The property '{name}' cannot be changed after "
                        f"the resource is created.",
                        resource_type=spec.name,
                        operation="update",
                        resource_id=resource_id,
                    )
            self._check_attr_types(spec, attrs, partial=True)
            self._check_references(spec, attrs, record.region)
            self.validate_update(spec, record, attrs)
            old_name = record.attrs.get("name")
            record.attrs.update(attrs)
            self.records.note_renamed(record, old_name)
            record.updated_at = t_complete
            self.log.append(
                t_complete,
                "update",
                spec.name,
                record.id,
                record.name,
                record.region,
                actor,
                tuple(sorted(attrs)),
            )
            return record.snapshot()

        return PendingOperation("update", spec.name, t_submit, t_start, t_complete, apply)

    def _build_delete(
        self,
        spec: ResourceTypeSpec,
        t_submit: float,
        t_start: float,
        *,
        resource_id: str,
        attrs: Dict[str, Any],
        region: str,
        actor: str,
        token: str = "",
    ) -> PendingOperation:
        t_complete = self._finish_time(spec.name, "delete", t_start, key=resource_id)

        def apply() -> Dict[str, Any]:
            record = self._get_record(spec.name, resource_id, "delete")
            dependents = self._dependents_of(resource_id)
            if dependents:
                raise CloudAPIError(
                    "DependencyViolation",
                    f"The resource {resource_id} has dependent resources "
                    f"({', '.join(sorted(dependents)[:3])}) and cannot be deleted.",
                    http_status=409,
                    resource_type=spec.name,
                    operation="delete",
                    resource_id=resource_id,
                )
            del self.records[resource_id]
            self.log.append(
                t_complete,
                "delete",
                spec.name,
                record.id,
                record.name,
                record.region,
                actor,
            )
            return record.snapshot()

        return PendingOperation("delete", spec.name, t_submit, t_start, t_complete, apply)

    def _build_read(
        self,
        spec: Optional[ResourceTypeSpec],
        t_submit: float,
        t_start: float,
        *,
        resource_id: str,
        attrs: Dict[str, Any],
        region: str,
        actor: str,
        token: str = "",
    ) -> PendingOperation:
        rtype = spec.name if spec else ""
        t_complete = t_start + self._sample_latency(rtype or "_read", "read", resource_id)

        def apply() -> Optional[Dict[str, Any]]:
            record = self.records.get(resource_id)
            if record is None or (rtype and record.type != rtype):
                return None
            return record.snapshot()

        return PendingOperation("read", rtype, t_submit, t_start, t_complete, apply)

    def _build_list(
        self,
        spec: Optional[ResourceTypeSpec],
        t_submit: float,
        t_start: float,
        *,
        resource_id: str,
        attrs: Dict[str, Any],
        region: str,
        actor: str,
        token: str = "",
    ) -> PendingOperation:
        rtype = spec.name if spec else ""
        page_token = attrs.get("page_token", 0)
        t_complete = t_start + self._sample_latency(
            rtype or "_read", "list", str(page_token)
        )

        def apply() -> Dict[str, Any]:
            # records in a dark region vanish from cross-region scans --
            # exactly the phantom-delete trap a naive drift scanner
            # falls into; outage-aware callers check the status page
            now = self.clock.now
            matches = sorted(
                (
                    r
                    for r in self.records.values()
                    if (not rtype or r.type == rtype)
                    and (not region or r.region == region)
                    and not self.faults.is_dark(now, r.type, r.region, "read")
                ),
                key=lambda r: r.id,
            )
            start = int(page_token)
            page = matches[start : start + self.list_page_size]
            next_token = (
                start + self.list_page_size
                if start + self.list_page_size < len(matches)
                else None
            )
            return {
                "items": [r.snapshot() for r in page],
                "types": [r.type for r in page],
                "regions": [r.region for r in page],
                "next_token": next_token,
            }

        return PendingOperation("list", rtype, t_submit, t_start, t_complete, apply)

    # -- data sources -------------------------------------------------------

    def read_data(
        self, rtype: str, attrs: Dict[str, Any], region: str = ""
    ) -> Dict[str, Any]:
        """Resolve a data-source query (used by ``data`` blocks).

        Built-in pseudo sources (``<provider>_region``,
        ``<provider>_availability_zones``, ``<provider>_image``) answer
        from provider metadata; any catalog type is looked up by name.
        """
        region = region or self.regions[0]
        short = rtype.split("_", 1)[-1] if "_" in rtype else rtype
        if short in ("region", "location"):
            return {"name": region, "id": region}
        if short in ("availability_zones", "zones"):
            return {
                "names": [f"{region}-{z}" for z in ("a", "b", "c")],
                "id": region,
            }
        if short == "image":
            family = str(attrs.get("family", "linux"))
            return {"id": f"img-{family}-latest", "family": family}
        if rtype in self.specs:
            name = attrs.get("name")
            if not isinstance(name, str):
                raise CloudAPIError(
                    "MissingParameter",
                    f"Data lookup for '{rtype}' requires 'name'.",
                    resource_type=rtype,
                    operation="read",
                )
            record = self.find_by_name(rtype, name)
            if record is None:
                raise CloudAPIError(
                    "ResourceNotFound",
                    f"No '{rtype}' named '{name}' was found.",
                    http_status=404,
                    resource_type=rtype,
                    operation="read",
                )
            return record.snapshot()
        raise CloudAPIError(
            "UnknownResourceType",
            f"The data source '{rtype}' is not supported by {self.provider}.",
            http_status=404,
            resource_type=rtype,
            operation="read",
        )

    # -- out-of-band (non-IaC) mutations -- instant, for drift experiments ----

    def external_update(
        self, resource_id: str, attrs: Dict[str, Any], actor: str = "legacy-script"
    ) -> None:
        """A change performed outside the IaC framework ("ClickOps")."""
        record = self.records.get(resource_id)
        if record is None:
            raise CloudAPIError(
                "ResourceNotFound", f"{resource_id} does not exist", http_status=404
            )
        old_name = record.attrs.get("name")
        record.attrs.update(attrs)
        self.records.note_renamed(record, old_name)
        record.updated_at = self.clock.now
        self.log.append(
            self.clock.now,
            "update",
            record.type,
            record.id,
            record.name,
            record.region,
            actor,
            tuple(sorted(attrs)),
        )

    def external_delete(self, resource_id: str, actor: str = "legacy-script") -> None:
        record = self.records.get(resource_id)
        if record is None:
            raise CloudAPIError(
                "ResourceNotFound", f"{resource_id} does not exist", http_status=404
            )
        del self.records[resource_id]
        self.log.append(
            self.clock.now,
            "delete",
            record.type,
            record.id,
            record.name,
            record.region,
            actor,
        )

    def external_create(
        self,
        rtype: str,
        attrs: Dict[str, Any],
        region: str,
        actor: str = "legacy-script",
    ) -> str:
        spec = self.spec_for(rtype)
        new_id = self._mint_id(spec, region, str(attrs.get("name", "")))
        full_attrs = self._attrs_with_defaults(spec, attrs)
        full_attrs.update(self._computed_attrs(spec, new_id, region))
        self.records[new_id] = ResourceRecord(
            id=new_id,
            type=rtype,
            region=region,
            attrs=full_attrs,
            created_at=self.clock.now,
            updated_at=self.clock.now,
        )
        self.log.append(
            self.clock.now,
            "create",
            rtype,
            new_id,
            str(full_attrs.get("name", new_id)),
            region,
            actor,
            tuple(sorted(attrs)),
        )
        return new_id

    # -- shared validation --------------------------------------------------

    def _check_create(
        self, spec: ResourceTypeSpec, attrs: Dict[str, Any], region: str
    ) -> None:
        if region not in self.regions:
            raise CloudAPIError(
                "InvalidLocation",
                f"The location '{region}' is not available for subscription.",
                resource_type=spec.name,
                operation="create",
            )
        for attr in spec.required_attrs():
            if attr.computed:
                continue
            if attrs.get(attr.name) is None:
                raise CloudAPIError(
                    "MissingParameter",
                    f"The request is missing the required parameter "
                    f"'{attr.name}'.",
                    resource_type=spec.name,
                    operation="create",
                )
        self._check_attr_types(spec, attrs, partial=False)
        self._check_references(spec, attrs, region)
        self._check_quota(spec, region)
        self._check_name_unique(spec, attrs, region)
        self.validate_create(spec, attrs, region)

    def _check_attr_types(
        self, spec: ResourceTypeSpec, attrs: Dict[str, Any], partial: bool
    ) -> None:
        for name, value in attrs.items():
            aspec = spec.attr(name)
            if aspec is None:
                raise CloudAPIError(
                    "InvalidParameter",
                    f"Unknown property '{name}' for resource type "
                    f"'{spec.name}'.",
                    resource_type=spec.name,
                )
            if aspec.computed:
                raise CloudAPIError(
                    "InvalidParameter",
                    f"The property '{name}' is read-only.",
                    resource_type=spec.name,
                )
            if value is None:
                continue
            ok = _TYPE_CHECKS.get(aspec.base_type, _any_type)
            if not ok(value):
                raise CloudAPIError(
                    "InvalidParameterValue",
                    f"Value for '{name}' has the wrong type "
                    f"(expected {aspec.type}).",
                    resource_type=spec.name,
                )
            enum = aspec.enum_values
            if enum and isinstance(value, str) and value not in enum:
                raise CloudAPIError(
                    "InvalidParameterValue",
                    f"'{value}' is not a valid value for '{name}'.",
                    resource_type=spec.name,
                )

    def _check_references(
        self, spec: ResourceTypeSpec, attrs: Dict[str, Any], region: str
    ) -> None:
        for aspec in spec.reference_attrs():
            value = attrs.get(aspec.name)
            if value is None:
                continue
            targets = value if aspec.is_ref_list else [value]
            for target_id in targets:
                if not isinstance(target_id, str):
                    raise CloudAPIError(
                        "InvalidParameterValue",
                        f"Value for '{aspec.name}' must be a resource id.",
                        resource_type=spec.name,
                    )
                record = self.records.get(target_id)
                if record is None:
                    raise CloudAPIError(
                        self._not_found_code(aspec.ref_target or ""),
                        self._not_found_message(aspec.ref_target or "", target_id),
                        http_status=404,
                        resource_type=spec.name,
                    )
                if aspec.ref_target and record.type != aspec.ref_target:
                    # the classic leaky-abstraction error: right-looking
                    # string, wrong resource kind (paper 3.2)
                    raise CloudAPIError(
                        self._not_found_code(aspec.ref_target),
                        self._not_found_message(aspec.ref_target, target_id),
                        http_status=404,
                        resource_type=spec.name,
                    )

    def _check_quota(self, spec: ResourceTypeSpec, region: str) -> None:
        limit = self.quotas.get((spec.name, region))
        if limit is None:
            return
        current = self.records.count_in_region(spec.name, region)
        if current >= limit:
            raise CloudAPIError(
                "QuotaExceeded",
                f"Operation could not be completed as it results in exceeding "
                f"approved quota for '{spec.name}' in '{region}' "
                f"(limit: {limit}).",
                http_status=429,
                resource_type=spec.name,
                operation="create",
            )

    def _check_name_unique(
        self, spec: ResourceTypeSpec, attrs: Dict[str, Any], region: str
    ) -> None:
        name = attrs.get("name")
        if not isinstance(name, str):
            return
        if self.records.has_name(spec.name, region, name):
            raise CloudAPIError(
                "Conflict",
                f"A resource named '{name}' already exists in '{region}'.",
                http_status=409,
                resource_type=spec.name,
                operation="create",
            )

    # -- helpers ----------------------------------------------------------------

    def _get_record(
        self, rtype: str, resource_id: str, operation: str
    ) -> ResourceRecord:
        record = self.records.get(resource_id)
        if record is None or (rtype and record.type != rtype):
            raise CloudAPIError(
                "ResourceNotFound",
                f"The resource '{resource_id}' was not found.",
                http_status=404,
                resource_type=rtype,
                operation=operation,
                resource_id=resource_id,
            )
        return record

    def _not_found_code(self, ref_type: str) -> str:
        return "ResourceNotFound"

    def _not_found_message(self, ref_type: str, target_id: str) -> str:
        return f"The referenced resource '{target_id}' was not found."

    def _mint_id(
        self, spec: ResourceTypeSpec, region: str = "", name: str = ""
    ) -> str:
        """Mint a resource id keyed by *identity*, not call order.

        The historical counter id (``vm-00000007``) depends on how many
        creates this plane has already resolved, so two schedules of the
        same plan -- interleaved vs pool-forked, barrier vs overlapped
        -- minted different ids and every dependent attribute diverged
        with them. Keying the id on (type, region, name, generation)
        makes it a pure function of what is being created; the
        generation counter keeps a delete/recreate of the same identity
        from colliding. Unnamed resources keep the sequential fallback.
        """
        if name:
            gen_key = (spec.name, region, name)
            gen = self._id_gens.get(gen_key, 0)
            self._id_gens[gen_key] = gen + 1
            digest = hashlib.sha256(
                f"{self.provider}|{spec.name}|{region}|{name}|{gen}|"
                f"{self.seed}".encode()
            ).hexdigest()[:16]
            return f"{spec.id_prefix}{digest}"
        minted = f"{spec.id_prefix}{self._next_id:08x}"
        self._next_id += 1
        return minted

    def _attrs_with_defaults(
        self, spec: ResourceTypeSpec, attrs: Dict[str, Any]
    ) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, aspec in spec.attributes.items():
            if aspec.computed:
                continue
            if name in attrs and attrs[name] is not None:
                out[name] = attrs[name]
            elif aspec.default is not None:
                out[name] = aspec.default
        return out

    def _computed_attrs(
        self, spec: ResourceTypeSpec, new_id: str, region: str
    ) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for aspec in spec.computed_attrs():
            if aspec.name == "id":
                out["id"] = new_id
            elif aspec.name in ("arn", "resource_uri"):
                out[aspec.name] = f"arn:{self.provider}:{region}:{new_id}"
            elif "ip" in aspec.name:
                # identity-keyed draw (not self.rng): the address is a
                # pure function of the resource id, so every schedule
                # of the same plan computes the same value
                ip_rng = random.Random(
                    f"{self.provider}|{new_id}|{aspec.name}|{self.seed}"
                )
                out[aspec.name] = (
                    f"10.{ip_rng.randint(0, 255)}."
                    f"{ip_rng.randint(0, 255)}.{ip_rng.randint(1, 254)}"
                )
            elif aspec.name == "fqdn" or "dns" in aspec.name:
                out[aspec.name] = f"{new_id}.{region}.{self.provider}.sim"
            else:
                out[aspec.name] = f"{aspec.name}-{new_id}"
        return out

    def _dependents_of(self, resource_id: str) -> List[str]:
        """Live resources holding a reference to ``resource_id``."""
        out = []
        for record in self.records.values():
            spec = self.specs.get(record.type)
            if spec is None:
                continue
            for aspec in spec.reference_attrs():
                value = record.attrs.get(aspec.name)
                targets = value if isinstance(value, list) else [value]
                if resource_id in [t for t in targets if t]:
                    out.append(record.id)
        return out

    # -- status page ---------------------------------------------------------

    def unavailable_regions(self, now: Optional[float] = None) -> Dict[str, float]:
        """The provider's status page: dark region -> expected recovery
        time (``"*"`` = the whole provider). Empty when healthy."""
        return self.faults.unavailable_regions(
            self.clock.now if now is None else now
        )

    def outage_horizon(
        self, region: str, now: Optional[float] = None
    ) -> Optional[float]:
        """When ``region`` is expected back, or None if reachable now."""
        return self.faults.outage_horizon(
            self.clock.now if now is None else now, region
        )

    # -- introspection -----------------------------------------------------------

    def count(self, rtype: str = "", region: str = "") -> int:
        if rtype and region:
            return self.records.count_in_region(rtype, region)
        if rtype:
            return len(self.records.ids_of_type(rtype))
        if region:
            return sum(1 for r in self.records.values() if r.region == region)
        return len(self.records)

    def find_by_name(self, rtype: str, name: str) -> Optional[ResourceRecord]:
        for record in self.records.values():
            if record.type == rtype and record.attrs.get("name") == name:
                return record
        return None

    def find_by_token(self, token: str) -> Optional[ResourceRecord]:
        """The live resource a create with ``token`` minted, if any."""
        rid = self._tokens.get(token)
        if rid is None:
            return None
        return self.records.get(rid)

    def total_api_calls(self) -> int:
        return sum(self.api_calls.values())
