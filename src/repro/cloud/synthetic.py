"""Synthetic provider planes for scale benchmarks.

The sharding work needs estates that span many independent control
planes, but hand-maintaining N provider catalogs would be busywork: a
synthetic plane *clones* the aws catalog under a new type prefix
(``syn0_vpc``, ``syn1_subnet``, ...), rewriting reference semantics and
id prefixes so each plane is a self-contained cloud with its own
regions, rate limits, RNG stream, and record store. ``CloudGateway``
routes purely on the type prefix, so any number of synthetic planes
compose with the real aws/azure ones on a shared clock.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

from .aws.provider import aws_catalog
from .base import CloudAPIError, ControlPlane, parse_network
from .resources import AttributeSpec, ResourceTypeSpec, a


def _rename_type(rtype: str, prefix: str) -> str:
    return prefix + rtype[3:] if rtype.startswith("aws_") else rtype


def _clone_attr(attr: AttributeSpec, prefix: str) -> AttributeSpec:
    sem = attr.semantic
    if sem.startswith("ref:"):
        sem = "ref:" + _rename_type(sem[4:], prefix)
    elif sem.startswith("ref_list:"):
        sem = "ref_list:" + _rename_type(sem[9:], prefix)
    if sem == attr.semantic:
        return attr
    return dataclasses.replace(attr, semantic=sem)


def synthetic_catalog(prefix: str) -> List[ResourceTypeSpec]:
    """The aws catalog re-homed under ``prefix``.

    Every type gains a ``location`` attribute (azure-style region
    pinning) so workloads can stripe one plane across regions.
    """
    out: List[ResourceTypeSpec] = []
    for s in aws_catalog():
        attrs = {
            name: _clone_attr(attr, prefix) for name, attr in s.attributes.items()
        }
        if "location" not in attrs:
            attrs["location"] = a(
                "location", semantic="region", description="home region"
            )
        if s.name == "aws_dns_record":
            # free-form upstream pointer; workloads use it to express
            # cross-provider dependencies (another plane's lb dns_name)
            attrs["upstream"] = a("upstream", description="upstream endpoint")
        out.append(
            dataclasses.replace(
                s,
                name=_rename_type(s.name, prefix),
                provider=prefix,
                attributes=attrs,
                id_prefix=f"{prefix}-{s.id_prefix}",
            )
        )
    return out


class SyntheticControlPlane(ControlPlane):
    """One synthetic cloud: aws-shaped catalog, its own everything."""

    list_page_size = 25

    def __init__(self, prefix: str, **kwargs: Any):
        if not prefix or "_" in prefix:
            raise ValueError(
                f"synthetic prefix {prefix!r} must be non-empty and "
                f"underscore-free (types are routed on the part before "
                f"the first underscore)"
            )
        self.provider = prefix
        self._prefix = prefix
        kwargs.setdefault(
            "regions", [f"{prefix}-east-1", f"{prefix}-west-1"]
        )
        kwargs.setdefault("rate_limits", {"read": (20.0, 40), "write": (5.0, 10)})
        super().__init__(**kwargs)

    def _register_catalog(self) -> None:
        for s in synthetic_catalog(self._prefix):
            self.register_spec(s)

    # mirror the aws plane's network constraints so synthetic estates
    # exercise the same control-plane validation paths
    def validate_create(
        self, spec: ResourceTypeSpec, attrs: Dict[str, Any], region: str
    ) -> None:
        if spec.name == f"{self._prefix}_subnet":
            self._check_subnet_cidr(attrs)
        if spec.name == f"{self._prefix}_vpc":
            self._check_cidr_shape(attrs.get("cidr_block"))

    def _check_cidr_shape(self, value: Any) -> None:
        if value is None:
            return
        try:
            parse_network(str(value), strict=True)
        except ValueError:
            raise CloudAPIError(
                "InvalidParameterValue",
                f"Value '{value}' for parameter 'cidr_block' is invalid. "
                f"This is not a valid CIDR block.",
                resource_type=f"{self._prefix}_vpc",
                operation="create",
            )

    def _check_subnet_cidr(self, attrs: Dict[str, Any]) -> None:
        vpc_id = attrs.get("vpc_id")
        cidr = attrs.get("cidr_block")
        if not isinstance(vpc_id, str) or not isinstance(cidr, str):
            return
        vpc = self.records.get(vpc_id)
        if vpc is None:
            return  # reference check already produces NotFound
        try:
            subnet_net = parse_network(cidr, strict=True)
            vpc_net = parse_network(str(vpc.attrs.get("cidr_block")), strict=True)
        except ValueError:
            raise CloudAPIError(
                "InvalidParameterValue",
                f"Value '{cidr}' for parameter 'cidrBlock' is invalid.",
                resource_type=f"{self._prefix}_subnet",
                operation="create",
            )
        if not subnet_net.subnet_of(vpc_net):
            raise CloudAPIError(
                "InvalidSubnet.Range",
                f"The CIDR '{cidr}' is invalid for the given VPC.",
                resource_type=f"{self._prefix}_subnet",
                operation="create",
            )
        for rid in self.records.ids_linked(
            f"{self._prefix}_subnet", "vpc_id", vpc_id
        ):
            record = self.records[rid]
            other = parse_network(str(record.attrs.get("cidr_block")))
            if subnet_net.overlaps(other):
                raise CloudAPIError(
                    "InvalidSubnet.Conflict",
                    f"The CIDR '{cidr}' conflicts with another subnet.",
                    http_status=409,
                    resource_type=f"{self._prefix}_subnet",
                    operation="create",
                )
