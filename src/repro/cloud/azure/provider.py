"""The "azure"-like simulated provider.

Implements the constraint examples the paper uses verbatim (3.2):

* a VM and its network interfaces must be in the same location -- and
  when they are not, the error is the *opaque* "specified network
  interface was not found" message from 3.5;
* ``admin_password`` may only be set when ``disable_password_auth`` is
  explicitly false;
* peered virtual networks must not have overlapping address spaces.
"""

from __future__ import annotations

import ipaddress
from typing import Any, Dict, List

from ..base import CloudAPIError, ControlPlane, ResourceRecord, parse_network
from ..resources import ResourceTypeSpec, a, spec

AZURE_LOCATIONS = ["eastus", "westus2", "westeurope", "southeastasia"]


def azure_catalog() -> List[ResourceTypeSpec]:
    p = "azure"
    return [
        spec(
            "azure_resource_group",
            p,
            [a("name", required=True), a("location", required=True, semantic="region")],
            create_s=2.0,
            id_prefix="rg-",
            description="Resource group",
        ),
        spec(
            "azure_virtual_network",
            p,
            [
                a("name", required=True),
                a("resource_group_id", required=True, semantic="ref:azure_resource_group"),
                a("location", required=True, semantic="region"),
                a("address_spaces", type="list", required=True, semantic="cidr_list"),
            ],
            create_s=5.0,
            id_prefix="vnet-",
            description="Virtual network",
        ),
        spec(
            "azure_subnet",
            p,
            [
                a("name", required=True),
                a("vnet_id", required=True, semantic="ref:azure_virtual_network", forces_replacement=True),
                a("address_prefix", required=True, semantic="cidr", forces_replacement=True),
            ],
            create_s=3.0,
            id_prefix="snet-",
            immutable=("vnet_id", "address_prefix"),
            description="VNet subnet",
        ),
        spec(
            "azure_network_security_group",
            p,
            [
                a("name", required=True),
                a("location", required=True, semantic="region"),
                a("rules", type="list"),
            ],
            create_s=3.0,
            id_prefix="nsg-",
            description="Network security group",
        ),
        spec(
            "azure_network_interface",
            p,
            [
                a("name", required=True),
                a("subnet_id", required=True, semantic="ref:azure_subnet"),
                a("location", required=True, semantic="region"),
                a("nsg_id", semantic="ref:azure_network_security_group"),
                a("private_ip", computed=True),
            ],
            create_s=3.0,
            id_prefix="nic-",
            description="Network interface card",
        ),
        spec(
            "azure_public_ip",
            p,
            [
                a("name", required=True),
                a("location", required=True, semantic="region"),
                a("sku", default="basic", semantic="enum:basic|standard"),
                a("ip_address", computed=True),
            ],
            create_s=4.0,
            id_prefix="pip-",
            description="Public IP address",
        ),
        spec(
            "azure_virtual_machine",
            p,
            [
                a("name", required=True),
                a("location", required=True, semantic="region"),
                a("size", default="Standard_B1s", semantic="enum:Standard_B1s|Standard_D2s|Standard_D4s|Standard_D8s"),
                a("image", default="ubuntu-lts", forces_replacement=True),
                a("nic_ids", type="list", required=True, semantic="ref_list:azure_network_interface"),
                a("admin_username", default="azureuser"),
                a("admin_password", semantic="password"),
                a("disable_password_auth", type="bool", default=True),
                a("os_disk_gb", type="number", default=30),
                a("private_ip", computed=True),
            ],
            create_s=60.0,
            update_s=25.0,
            delete_s=20.0,
            id_prefix="vm-",
            immutable=("image",),
            shadow=("network_settings",),
            description="Linux virtual machine",
        ),
        spec(
            "azure_disk",
            p,
            [
                a("name", required=True),
                a("location", required=True, semantic="region"),
                a("size_gb", type="number", required=True),
                a("vm_id", semantic="ref:azure_virtual_machine"),
            ],
            create_s=6.0,
            id_prefix="disk-",
            description="Managed disk",
        ),
        spec(
            "azure_load_balancer",
            p,
            [
                a("name", required=True),
                a("location", required=True, semantic="region"),
                a("frontend_ip_id", semantic="ref:azure_public_ip"),
                a("backend_vm_ids", type="list", semantic="ref_list:azure_virtual_machine"),
            ],
            create_s=60.0,
            update_s=25.0,
            id_prefix="lb-",
            description="Load balancer",
        ),
        spec(
            "azure_database",
            p,
            [
                a("name", required=True),
                a("location", required=True, semantic="region"),
                a("engine", required=True, semantic="enum:postgres|mysql", forces_replacement=True),
                a("storage_gb", type="number", default=32),
                a("admin_password", semantic="password"),
                a("fqdn", computed=True),
            ],
            create_s=240.0,
            update_s=90.0,
            delete_s=45.0,
            id_prefix="sqldb-",
            immutable=("engine",),
            description="Managed database",
        ),
        spec(
            "azure_storage_account",
            p,
            [
                a("name", required=True),
                a("location", required=True, semantic="region"),
                a("replication", default="LRS", semantic="enum:LRS|ZRS|GRS"),
            ],
            create_s=15.0,
            id_prefix="st-",
            description="Storage account",
        ),
        spec(
            "azure_vpn_gateway",
            p,
            [
                a("name", required=True),
                a("location", required=True, semantic="region"),
                a("vnet_id", required=True, semantic="ref:azure_virtual_network"),
                a("sku", default="VpnGw1", semantic="enum:VpnGw1|VpnGw2|VpnGw3"),
                a("public_ip", computed=True),
            ],
            create_s=1500.0,
            update_s=300.0,
            delete_s=240.0,
            id_prefix="vgw-",
            spread=0.25,
            description="VPN gateway (notoriously slow to provision)",
        ),
        spec(
            "azure_vpn_tunnel",
            p,
            [
                a("name", required=True),
                a("gateway_id", required=True, semantic="ref:azure_vpn_gateway"),
                a("peer_ip", required=True),
                a("capacity_mbps", type="number", default=500),
            ],
            create_s=90.0,
            update_s=30.0,
            id_prefix="cn-",
            description="VPN site-to-site connection",
        ),
        spec(
            "azure_vnet_peering",
            p,
            [
                a("name", required=True),
                a("vnet_a_id", required=True, semantic="ref:azure_virtual_network"),
                a("vnet_b_id", required=True, semantic="ref:azure_virtual_network"),
            ],
            create_s=10.0,
            id_prefix="peer-",
            description="VNet peering link",
        ),
    ]


class AzureControlPlane(ControlPlane):
    """Control plane with Azure-flavoured behaviour and error messages."""

    provider = "azure"
    list_page_size = 20

    def __init__(self, **kwargs: Any):
        kwargs.setdefault("regions", list(AZURE_LOCATIONS))
        # ARM throttles writes notoriously hard
        kwargs.setdefault("rate_limits", {"read": (15.0, 30), "write": (3.0, 8)})
        super().__init__(**kwargs)

    def _register_catalog(self) -> None:
        for s in azure_catalog():
            self.register_spec(s)

    def _not_found_code(self, ref_type: str) -> str:
        return "ResourceNotFound"

    def _not_found_message(self, ref_type: str, target_id: str) -> str:
        return (
            f"The Resource '{target_id}' under resource group was not found. "
            f"For more details please go to https://aka.ms/ARMResourceNotFoundFix"
        )

    # -- provider constraints ----------------------------------------------

    def validate_create(
        self, spec: ResourceTypeSpec, attrs: Dict[str, Any], region: str
    ) -> None:
        if spec.name == "azure_virtual_machine":
            self._check_vm_nic_locations(attrs, region)
            self._check_vm_password_rules(attrs)
        if spec.name == "azure_subnet":
            self._check_subnet_prefix(attrs)
        if spec.name == "azure_vnet_peering":
            self._check_peering_overlap(attrs)
        if spec.name == "azure_virtual_network":
            self._check_address_spaces(attrs)

    def validate_update(
        self,
        spec: ResourceTypeSpec,
        record: ResourceRecord,
        new_attrs: Dict[str, Any],
    ) -> None:
        if spec.name == "azure_virtual_machine":
            merged = dict(record.attrs)
            merged.update(new_attrs)
            self._check_vm_password_rules(merged)

    def _check_vm_nic_locations(self, attrs: Dict[str, Any], region: str) -> None:
        """The paper's running example: VM and NIC must share a region.

        And, crucially, the error does NOT say that -- it reports the
        NIC as missing, exactly as 3.5 describes.
        """
        for nic_id in attrs.get("nic_ids") or []:
            nic = self.records.get(nic_id)
            if nic is None or nic.type != "azure_network_interface":
                continue  # existence handled by reference validation
            if nic.region != region:
                raise CloudAPIError(
                    "NetworkInterfaceNotFound",
                    "Linux virtual machine creation failed because the "
                    "specified network interface was not found.",
                    http_status=404,
                    resource_type="azure_virtual_machine",
                    operation="create",
                )

    def _check_vm_password_rules(self, attrs: Dict[str, Any]) -> None:
        password = attrs.get("admin_password")
        disable = attrs.get("disable_password_auth")
        if disable is None:
            disable = True
        if password and disable:
            raise CloudAPIError(
                "InvalidParameter",
                "Parameter 'adminPassword' is not allowed when "
                "'disablePasswordAuthentication' is true.",
                resource_type="azure_virtual_machine",
            )
        if not password and disable is False:
            raise CloudAPIError(
                "InvalidParameter",
                "Parameter 'adminPassword' is required when "
                "'disablePasswordAuthentication' is false.",
                resource_type="azure_virtual_machine",
            )

    def _check_address_spaces(self, attrs: Dict[str, Any]) -> None:
        for space in attrs.get("address_spaces") or []:
            try:
                ipaddress.ip_network(str(space), strict=True)
            except ValueError:
                raise CloudAPIError(
                    "InvalidAddressPrefixFormat",
                    f"Address prefix '{space}' is invalid.",
                    resource_type="azure_virtual_network",
                )

    def _check_subnet_prefix(self, attrs: Dict[str, Any]) -> None:
        vnet_id = attrs.get("vnet_id")
        prefix = attrs.get("address_prefix")
        if not isinstance(vnet_id, str) or not isinstance(prefix, str):
            return
        vnet = self.records.get(vnet_id)
        if vnet is None:
            return
        try:
            subnet_net = parse_network(prefix, strict=True)
        except ValueError:
            raise CloudAPIError(
                "InvalidAddressPrefixFormat",
                f"Address prefix '{prefix}' is invalid.",
                resource_type="azure_subnet",
            )
        spaces = [
            parse_network(str(s)) for s in vnet.attrs.get("address_spaces") or []
        ]
        if not any(subnet_net.subnet_of(space) for space in spaces):
            raise CloudAPIError(
                "NetcfgInvalidSubnet",
                f"Subnet '{attrs.get('name')}' is not valid in virtual "
                f"network '{vnet.name}'.",
                resource_type="azure_subnet",
            )
        for rid in self.records.ids_linked("azure_subnet", "vnet_id", vnet_id):
            record = self.records[rid]
            other = parse_network(str(record.attrs.get("address_prefix")))
            if subnet_net.overlaps(other):
                raise CloudAPIError(
                    "NetcfgSubnetRangesOverlap",
                    f"Subnet '{attrs.get('name')}' is not valid because its "
                    f"IP address range overlaps with that of an existing "
                    f"subnet in virtual network '{vnet.name}'.",
                    http_status=409,
                    resource_type="azure_subnet",
                )

    def _check_peering_overlap(self, attrs: Dict[str, Any]) -> None:
        vnet_a = self.records.get(str(attrs.get("vnet_a_id")))
        vnet_b = self.records.get(str(attrs.get("vnet_b_id")))
        if vnet_a is None or vnet_b is None:
            return
        spaces_a = [
            ipaddress.ip_network(str(s)) for s in vnet_a.attrs.get("address_spaces") or []
        ]
        spaces_b = [
            ipaddress.ip_network(str(s)) for s in vnet_b.attrs.get("address_spaces") or []
        ]
        for sa in spaces_a:
            for sb in spaces_b:
                if sa.overlaps(sb):
                    raise CloudAPIError(
                        "VnetAddressSpacesOverlap",
                        "Cannot create or update peering. Virtual networks "
                        "cannot be peered because their address spaces "
                        "overlap.",
                        http_status=409,
                        resource_type="azure_vnet_peering",
                    )
