"""Azure-like simulated provider."""

from .provider import AZURE_LOCATIONS, AzureControlPlane, azure_catalog

__all__ = ["AZURE_LOCATIONS", "AzureControlPlane", "azure_catalog"]
