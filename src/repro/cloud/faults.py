"""Fault injection for the simulated control planes.

Deployments in the paper's world "error out at the cloud level" (3.5);
this module decides when. Three mechanisms:

* probabilistic transient faults (throttle bursts, capacity errors,
  hangs) applied per operation class,
* scheduled faults targeted at specific resource types/names, for
  reproducible failure-handling tests, and
* sustained **outage windows** (:class:`OutageSpec`): a region or a
  whole provider goes dark (hard outage) or slow (brownout) for a span
  of simulated time. Outages hit *every* operation class -- list pages,
  log reads, and probes fail just like mutations do -- which is what
  makes them a different beast from point faults: retrying does not
  help until the window closes.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional

OUTAGE_MODES = ("hard", "brownout")


@dataclasses.dataclass
class FaultSpec:
    """One injected failure rule."""

    error_code: str
    message: str
    match_type: str = ""  # resource type glob-ish match; "" = any
    match_operation: str = ""  # create/update/delete/read; "" = any
    probability: float = 1.0
    transient: bool = True  # transient faults succeed on retry
    max_strikes: int = 1  # how many times the rule may fire in total
    extra_delay_s: float = 0.0  # hang before failing (resource hanging)
    #: let this many matching operations through before arming -- e.g.
    #: fail the *third* page of a paginated scan, not the first
    skip_first: int = 0
    _strikes: int = 0
    _seen: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.skip_first < 0:
            raise ValueError(
                f"skip_first must be >= 0, got {self.skip_first}"
            )
        if self.max_strikes < -1:
            raise ValueError(
                "max_strikes must be -1 (unlimited) or >= 0, "
                f"got {self.max_strikes}"
            )

    @property
    def exhausted(self) -> bool:
        """Has the rule fired its full strike budget?"""
        return self.max_strikes >= 0 and self._strikes >= self.max_strikes

    def matches(self, rtype: str, operation: str) -> bool:
        """Does the rule's filter cover this operation? Pure -- all
        accounting (skip window, strikes) lives in
        :meth:`FaultInjector.check` so a match that loses the dice roll
        never consumes anything."""
        if self.exhausted:
            return False
        if self.match_type and self.match_type != rtype:
            return False
        if self.match_operation and self.match_operation != operation:
            return False
        return True

    def strike(self) -> None:
        self._strikes += 1


@dataclasses.dataclass
class OutageSpec:
    """A sustained unavailability window on the simulated clock.

    * ``region`` scopes the outage to one region; ``""`` takes down the
      whole provider (any region, plus region-less operations such as
      log reads).
    * ``match_type`` scopes to one resource type (e.g. only the VM
      service browns out); ``""`` hits every type.
    * ``mode="hard"``: every covered call fails fast with
      ``error_code`` (transient -- retrying *after* the window succeeds).
      ``mode="brownout"``: calls succeed but latency is multiplied by
      ``latency_multiplier``.

    Windows may overlap freely; hard outages dominate brownouts, and
    overlapping brownout multipliers compound.
    """

    start_s: float
    end_s: float
    region: str = ""
    match_type: str = ""
    mode: str = "hard"
    latency_multiplier: float = 5.0
    error_code: str = "ServiceUnavailable"
    message: str = ""
    #: how long a call into a dark partition takes to come back with the
    #: error -- real outages fail fast, not after provisioning latency
    error_latency_s: float = 2.0

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError(
                f"outage window must be non-empty: "
                f"[{self.start_s}, {self.end_s})"
            )
        if self.mode not in OUTAGE_MODES:
            raise ValueError(f"mode must be one of {OUTAGE_MODES}")
        if self.latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1.0")
        if not self.message:
            scope = self.region or "the service"
            self.message = (
                f"The service is temporarily unavailable in {scope}. "
                f"Please try again later."
            )

    def active_at(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    def covers(self, rtype: str, region: str) -> bool:
        """Does this outage hit an operation on (rtype, region)?

        A region-scoped outage never covers a region-less operation
        (region ``""``) -- those only go down with the whole provider.
        """
        if self.region and self.region != region:
            return False
        if self.match_type and self.match_type != rtype:
            return False
        return True


@dataclasses.dataclass
class InjectedFault:
    """What the control plane should do for one doomed operation."""

    error_code: str
    message: str
    transient: bool
    extra_delay_s: float


class FaultInjector:
    """Holds fault rules and rolls the dice per operation."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)
        self.rules: List[FaultSpec] = []
        self.outages: List[OutageSpec] = []
        self.transient_rate: float = 0.0  # blanket transient failure rate
        self.fired: int = 0
        #: operations that hit an active hard outage -- the bench gates
        #: on this to prove breakers stop the retry storm
        self.outage_hits: int = 0

    def add_rule(self, rule: FaultSpec) -> None:
        self.rules.append(rule)

    def add_outage(self, outage: OutageSpec) -> None:
        self.outages.append(outage)

    def set_transient_rate(self, rate: float) -> None:
        """Blanket probability that any mutating call fails transiently."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("transient rate must be in [0, 1)")
        self.transient_rate = rate

    # -- outage queries ------------------------------------------------------

    def outage_at(
        self, now: float, rtype: str, region: str
    ) -> Optional[OutageSpec]:
        """The active *hard* outage covering this operation, if any.

        Counts the hit: every call that lands in a dark window is one
        wasted API round-trip the resilience layer should have avoided.
        """
        for spec in self.outages:
            if (
                spec.mode == "hard"
                and spec.active_at(now)
                and spec.covers(rtype, region)
            ):
                self.outage_hits += 1
                self.fired += 1
                return spec
        return None

    def brownout_scale(self, now: float, rtype: str, region: str) -> float:
        """Compound latency multiplier from active brownouts."""
        scale = 1.0
        for spec in self.outages:
            if (
                spec.mode == "brownout"
                and spec.active_at(now)
                and spec.covers(rtype, region)
            ):
                scale *= spec.latency_multiplier
        return scale

    def is_dark(self, now: float, rtype: str, region: str) -> bool:
        """Pure query (no hit accounting): is (rtype, region) in an
        active hard outage right now?"""
        return any(
            spec.mode == "hard"
            and spec.active_at(now)
            and spec.covers(rtype, region)
            for spec in self.outages
        )

    def outage_horizon(self, now: float, region: str) -> Optional[float]:
        """When the last active *untyped* hard outage covering
        ``region`` ends, or None if the region is reachable.

        This is the provider's status page: type-scoped outages are a
        service degradation, not a dark region, so they do not count.
        """
        horizon: Optional[float] = None
        for spec in self.outages:
            if (
                spec.mode == "hard"
                and not spec.match_type
                and spec.active_at(now)
                and spec.region in ("", region)
            ):
                horizon = spec.end_s if horizon is None else max(horizon, spec.end_s)
        return horizon

    def unavailable_regions(self, now: float) -> Dict[str, float]:
        """Status page: dark scope -> when it is expected back.

        Keys are region names; a provider-wide outage appears under
        ``"*"``. Only untyped hard outages count (see
        :meth:`outage_horizon`).
        """
        out: Dict[str, float] = {}
        for spec in self.outages:
            if spec.mode != "hard" or spec.match_type or not spec.active_at(now):
                continue
            key = spec.region or "*"
            out[key] = max(out.get(key, spec.end_s), spec.end_s)
        return out

    # -- the per-operation dice roll -----------------------------------------

    def check(self, rtype: str, operation: str) -> Optional[InjectedFault]:
        """Decide whether this operation fails, and how.

        Accounting invariants (regression-tested):

        * the skip window consumes exactly one slot per *matching*
          operation, before the dice are rolled;
        * a strike is consumed only when the rule actually fires -- a
          probability-gated rule that loses the roll stays armed.
        """
        for rule in self.rules:
            if not rule.matches(rtype, operation):
                continue
            if rule._seen < rule.skip_first:
                rule._seen += 1
                continue
            # strict <, matching transient_rate below: a probability-0
            # rule must never fire, even when the RNG returns exactly 0.0
            if self.rng.random() < rule.probability:
                rule.strike()
                self.fired += 1
                return InjectedFault(
                    error_code=rule.error_code,
                    message=rule.message,
                    transient=rule.transient,
                    extra_delay_s=rule.extra_delay_s,
                )
        if (
            self.transient_rate > 0.0
            and operation in ("create", "update", "delete")
            and self.rng.random() < self.transient_rate
        ):
            self.fired += 1
            return InjectedFault(
                error_code="InternalServerError",
                message="An internal error occurred. Please retry.",
                transient=True,
                extra_delay_s=0.0,
            )
        return None
