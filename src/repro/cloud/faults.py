"""Fault injection for the simulated control planes.

Deployments in the paper's world "error out at the cloud level" (3.5);
this module decides when. Three mechanisms:

* probabilistic transient faults (throttle bursts, capacity errors,
  hangs) applied per operation class,
* scheduled faults targeted at specific resource types/names, for
  reproducible failure-handling tests, and
* sustained **outage windows** (:class:`OutageSpec`): a region or a
  whole provider goes dark (hard outage) or slow (brownout) for a span
  of simulated time. Outages hit *every* operation class -- list pages,
  log reads, and probes fail just like mutations do -- which is what
  makes them a different beast from point faults: retrying does not
  help until the window closes.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Mapping, Optional

OUTAGE_MODES = ("hard", "brownout")
OP_CLASSES = ("", "read", "write")


class SpecValidationError(ValueError):
    """A declarative fault/outage payload failed validation.

    The message always names the offending field so campaign files can
    be debugged without reading this module.
    """


def _check_fields(
    kind: str, data: Mapping[str, Any], fields: Dict[str, tuple]
) -> Dict[str, Any]:
    """Validate a ``from_dict`` payload against ``fields``.

    ``fields`` maps each public field name to the types it accepts;
    unknown keys, private keys, and wrongly-typed values all raise
    :class:`SpecValidationError` naming the field.
    """
    if not isinstance(data, Mapping):
        raise SpecValidationError(
            f"{kind} payload must be a mapping, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - set(fields))
    if unknown:
        raise SpecValidationError(
            f"{kind}: unknown field(s) {', '.join(repr(u) for u in unknown)}"
        )
    out: Dict[str, Any] = {}
    for name, value in data.items():
        expected = fields[name]
        # bool is an int subclass; reject True where a number is wanted
        if isinstance(value, bool) and bool not in expected:
            raise SpecValidationError(
                f"{kind}.{name} must be "
                f"{' or '.join(t.__name__ for t in expected)}, got {value!r}"
            )
        if value is not None and not isinstance(value, expected):
            raise SpecValidationError(
                f"{kind}.{name} must be "
                f"{' or '.join(t.__name__ for t in expected)}, got {value!r}"
            )
        out[name] = value
    return out


@dataclasses.dataclass
class FaultSpec:
    """One injected failure rule."""

    error_code: str
    message: str
    match_type: str = ""  # resource type glob-ish match; "" = any
    match_operation: str = ""  # create/update/delete/read; "" = any
    probability: float = 1.0
    transient: bool = True  # transient faults succeed on retry
    max_strikes: int = 1  # how many times the rule may fire in total
    extra_delay_s: float = 0.0  # hang before failing (resource hanging)
    #: let this many matching operations through before arming -- e.g.
    #: fail the *third* page of a paginated scan, not the first
    skip_first: int = 0
    #: optional activity window on the simulated clock: the rule only
    #: fires while ``start_s <= now < end_s``. ``None`` bounds are open
    #: -- the historical always-armed behaviour. This is what lets a
    #: campaign express *time-scoped* point faults (an API version skew
    #: that heals when the provider rolls forward, a throttling storm
    #: with a known end) without bespoke harness code.
    start_s: Optional[float] = None
    end_s: Optional[float] = None
    _strikes: int = 0
    _seen: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.skip_first < 0:
            raise ValueError(
                f"skip_first must be >= 0, got {self.skip_first}"
            )
        if self.max_strikes < -1:
            raise ValueError(
                "max_strikes must be -1 (unlimited) or >= 0, "
                f"got {self.max_strikes}"
            )
        if (
            self.start_s is not None
            and self.end_s is not None
            and self.end_s <= self.start_s
        ):
            raise ValueError(
                f"fault window must be non-empty: "
                f"[{self.start_s}, {self.end_s})"
            )

    @property
    def exhausted(self) -> bool:
        """Has the rule fired its full strike budget?"""
        return self.max_strikes >= 0 and self._strikes >= self.max_strikes

    def active_at(self, now: Optional[float]) -> bool:
        """Is the rule's window open? ``now=None`` (callers that do not
        track time) keeps the historical always-armed behaviour."""
        if now is None:
            return True
        if self.start_s is not None and now < self.start_s:
            return False
        if self.end_s is not None and now >= self.end_s:
            return False
        return True

    def matches(self, rtype: str, operation: str) -> bool:
        """Does the rule's filter cover this operation? Pure -- all
        accounting (skip window, strikes) lives in
        :meth:`FaultInjector.check` so a match that loses the dice roll
        never consumes anything."""
        if self.exhausted:
            return False
        if self.match_type and self.match_type != rtype:
            return False
        if self.match_operation and self.match_operation != operation:
            return False
        return True

    def strike(self) -> None:
        self._strikes += 1

    # -- declarative form ----------------------------------------------------

    _FIELDS = {
        "error_code": (str,),
        "message": (str,),
        "match_type": (str,),
        "match_operation": (str,),
        "probability": (int, float),
        "transient": (bool,),
        "max_strikes": (int,),
        "extra_delay_s": (int, float),
        "skip_first": (int,),
        "start_s": (int, float),
        "end_s": (int, float),
    }

    def to_dict(self) -> Dict[str, Any]:
        """Public fields only -- strike/skip accounting never serializes."""
        out: Dict[str, Any] = {}
        for name in self._FIELDS:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        kwargs = _check_fields("FaultSpec", data, cls._FIELDS)
        if "error_code" not in kwargs:
            raise SpecValidationError("FaultSpec.error_code is required")
        kwargs.setdefault("message", f"{kwargs['error_code']} (injected)")
        try:
            return cls(**kwargs)
        except ValueError as exc:
            raise SpecValidationError(f"FaultSpec: {exc}")


@dataclasses.dataclass
class OutageSpec:
    """A sustained unavailability window on the simulated clock.

    * ``region`` scopes the outage to one region; ``""`` takes down the
      whole provider (any region, plus region-less operations such as
      log reads).
    * ``match_type`` scopes to one resource type (e.g. only the VM
      service browns out); ``""`` hits every type.
    * ``mode="hard"``: every covered call fails fast with
      ``error_code`` (transient -- retrying *after* the window succeeds).
      ``mode="brownout"``: calls succeed but latency is multiplied by
      ``latency_multiplier``.

    Windows may overlap freely; hard outages dominate brownouts, and
    overlapping brownout multipliers compound.
    """

    start_s: float
    end_s: float
    region: str = ""
    match_type: str = ""
    mode: str = "hard"
    latency_multiplier: float = 5.0
    error_code: str = "ServiceUnavailable"
    message: str = ""
    #: how long a call into a dark partition takes to come back with the
    #: error -- real outages fail fast, not after provisioning latency
    error_latency_s: float = 2.0
    #: restrict the outage to one operation class: ``"write"`` models
    #: the classic *asymmetric partition* (mutations fail, reads and
    #: log tails keep working -- the control plane is read-only), and
    #: ``"read"`` the inverse. ``""`` (default) hits every class.
    op_class: str = ""

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError(
                f"outage window must be non-empty: "
                f"[{self.start_s}, {self.end_s})"
            )
        if self.mode not in OUTAGE_MODES:
            raise ValueError(f"mode must be one of {OUTAGE_MODES}")
        if self.latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1.0")
        if self.op_class not in OP_CLASSES:
            raise ValueError(f"op_class must be one of {OP_CLASSES}")
        if not self.message:
            scope = self.region or "the service"
            self.message = (
                f"The service is temporarily unavailable in {scope}. "
                f"Please try again later."
            )

    def active_at(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    def covers(self, rtype: str, region: str, op_class: str = "") -> bool:
        """Does this outage hit an operation on (rtype, region)?

        A region-scoped outage never covers a region-less operation
        (region ``""``) -- those only go down with the whole provider.
        An op-class-scoped outage only covers that class; callers that
        do not know their class (``op_class=""``) are covered by any.
        """
        if self.region and self.region != region:
            return False
        if self.match_type and self.match_type != rtype:
            return False
        if self.op_class and op_class and self.op_class != op_class:
            return False
        return True

    # -- declarative form ----------------------------------------------------

    _FIELDS = {
        "start_s": (int, float),
        "end_s": (int, float),
        "region": (str,),
        "match_type": (str,),
        "mode": (str,),
        "latency_multiplier": (int, float),
        "error_code": (str,),
        "message": (str,),
        "error_latency_s": (int, float),
        "op_class": (str,),
    }

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OutageSpec":
        kwargs = _check_fields("OutageSpec", data, cls._FIELDS)
        for required in ("start_s", "end_s"):
            if required not in kwargs:
                raise SpecValidationError(f"OutageSpec.{required} is required")
        try:
            return cls(**kwargs)
        except ValueError as exc:
            raise SpecValidationError(f"OutageSpec: {exc}")


@dataclasses.dataclass
class InjectedFault:
    """What the control plane should do for one doomed operation."""

    error_code: str
    message: str
    transient: bool
    extra_delay_s: float


class FaultInjector:
    """Holds fault rules and rolls the dice per operation."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)
        self.rules: List[FaultSpec] = []
        self.outages: List[OutageSpec] = []
        self.transient_rate: float = 0.0  # blanket transient failure rate
        self.fired: int = 0
        #: operations that hit an active hard outage -- the bench gates
        #: on this to prove breakers stop the retry storm
        self.outage_hits: int = 0

    def add_rule(self, rule: FaultSpec) -> None:
        self.rules.append(rule)

    def add_outage(self, outage: OutageSpec) -> None:
        self.outages.append(outage)

    def set_transient_rate(self, rate: float) -> None:
        """Blanket probability that any mutating call fails transiently."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("transient rate must be in [0, 1)")
        self.transient_rate = rate

    # -- outage queries ------------------------------------------------------

    def outage_at(
        self, now: float, rtype: str, region: str, op_class: str = ""
    ) -> Optional[OutageSpec]:
        """The active *hard* outage covering this operation, if any.

        Counts the hit: every call that lands in a dark window is one
        wasted API round-trip the resilience layer should have avoided.
        """
        for spec in self.outages:
            if (
                spec.mode == "hard"
                and spec.active_at(now)
                and spec.covers(rtype, region, op_class)
            ):
                self.outage_hits += 1
                self.fired += 1
                return spec
        return None

    def brownout_scale(self, now: float, rtype: str, region: str) -> float:
        """Compound latency multiplier from active brownouts."""
        scale = 1.0
        for spec in self.outages:
            if (
                spec.mode == "brownout"
                and spec.active_at(now)
                and spec.covers(rtype, region)
            ):
                scale *= spec.latency_multiplier
        return scale

    def is_dark(
        self, now: float, rtype: str, region: str, op_class: str = ""
    ) -> bool:
        """Pure query (no hit accounting): is (rtype, region) in an
        active hard outage right now?"""
        return any(
            spec.mode == "hard"
            and spec.active_at(now)
            and spec.covers(rtype, region, op_class)
            for spec in self.outages
        )

    def outage_horizon(self, now: float, region: str) -> Optional[float]:
        """When the last active *untyped* hard outage covering
        ``region`` ends, or None if the region is reachable.

        This is the provider's status page: type-scoped outages are a
        service degradation, not a dark region, and an op-class-scoped
        (asymmetric) partition still answers reads, so neither counts.
        """
        horizon: Optional[float] = None
        for spec in self.outages:
            if (
                spec.mode == "hard"
                and not spec.match_type
                and not spec.op_class
                and spec.active_at(now)
                and spec.region in ("", region)
            ):
                horizon = spec.end_s if horizon is None else max(horizon, spec.end_s)
        return horizon

    def unavailable_regions(self, now: float) -> Dict[str, float]:
        """Status page: dark scope -> when it is expected back.

        Keys are region names; a provider-wide outage appears under
        ``"*"``. Only untyped, class-blind hard outages count (see
        :meth:`outage_horizon`).
        """
        out: Dict[str, float] = {}
        for spec in self.outages:
            if (
                spec.mode != "hard"
                or spec.match_type
                or spec.op_class
                or not spec.active_at(now)
            ):
                continue
            key = spec.region or "*"
            out[key] = max(out.get(key, spec.end_s), spec.end_s)
        return out

    # -- the per-operation dice roll -----------------------------------------

    def check(
        self, rtype: str, operation: str, now: Optional[float] = None
    ) -> Optional[InjectedFault]:
        """Decide whether this operation fails, and how.

        Accounting invariants (regression-tested):

        * the skip window consumes exactly one slot per *matching*
          operation, before the dice are rolled;
        * a strike is consumed only when the rule actually fires -- a
          probability-gated rule that loses the roll stays armed;
        * a rule outside its time window neither fires nor consumes
          skip slots (the window opens later; the skip budget must
          still be intact when it does).
        """
        for rule in self.rules:
            if not rule.active_at(now):
                continue
            if not rule.matches(rtype, operation):
                continue
            if rule._seen < rule.skip_first:
                rule._seen += 1
                continue
            # strict <, matching transient_rate below: a probability-0
            # rule must never fire, even when the RNG returns exactly 0.0
            if self.rng.random() < rule.probability:
                rule.strike()
                self.fired += 1
                return InjectedFault(
                    error_code=rule.error_code,
                    message=rule.message,
                    transient=rule.transient,
                    extra_delay_s=rule.extra_delay_s,
                )
        if (
            self.transient_rate > 0.0
            and operation in ("create", "update", "delete")
            and self.rng.random() < self.transient_rate
        ):
            self.fired += 1
            return InjectedFault(
                error_code="InternalServerError",
                message="An internal error occurred. Please retry.",
                transient=True,
                extra_delay_s=0.0,
            )
        return None
