"""Fault injection for the simulated control planes.

Deployments in the paper's world "error out at the cloud level" (3.5);
this module decides when. Two mechanisms:

* probabilistic transient faults (throttle bursts, capacity errors,
  hangs) applied per operation class, and
* scheduled faults targeted at specific resource types/names, for
  reproducible failure-handling tests.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional


@dataclasses.dataclass
class FaultSpec:
    """One injected failure rule."""

    error_code: str
    message: str
    match_type: str = ""  # resource type glob-ish match; "" = any
    match_operation: str = ""  # create/update/delete/read; "" = any
    probability: float = 1.0
    transient: bool = True  # transient faults succeed on retry
    max_strikes: int = 1  # how many times the rule may fire in total
    extra_delay_s: float = 0.0  # hang before failing (resource hanging)
    #: let this many matching operations through before arming -- e.g.
    #: fail the *third* page of a paginated scan, not the first
    skip_first: int = 0
    _strikes: int = 0
    _seen: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def matches(self, rtype: str, operation: str) -> bool:
        if self.max_strikes >= 0 and self._strikes >= self.max_strikes:
            return False
        if self.match_type and self.match_type != rtype:
            return False
        if self.match_operation and self.match_operation != operation:
            return False
        if self._seen < self.skip_first:
            self._seen += 1
            return False
        return True

    def strike(self) -> None:
        self._strikes += 1


@dataclasses.dataclass
class InjectedFault:
    """What the control plane should do for one doomed operation."""

    error_code: str
    message: str
    transient: bool
    extra_delay_s: float


class FaultInjector:
    """Holds fault rules and rolls the dice per operation."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)
        self.rules: List[FaultSpec] = []
        self.transient_rate: float = 0.0  # blanket transient failure rate
        self.fired: int = 0

    def add_rule(self, rule: FaultSpec) -> None:
        self.rules.append(rule)

    def set_transient_rate(self, rate: float) -> None:
        """Blanket probability that any mutating call fails transiently."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("transient rate must be in [0, 1)")
        self.transient_rate = rate

    def check(self, rtype: str, operation: str) -> Optional[InjectedFault]:
        """Decide whether this operation fails, and how."""
        for rule in self.rules:
            if rule.matches(rtype, operation):
                # strict <, matching transient_rate below: a
                # probability-0 rule must never fire, even when the RNG
                # returns exactly 0.0
                if self.rng.random() < rule.probability:
                    rule.strike()
                    self.fired += 1
                    return InjectedFault(
                        error_code=rule.error_code,
                        message=rule.message,
                        transient=rule.transient,
                        extra_delay_s=rule.extra_delay_s,
                    )
        if (
            self.transient_rate > 0.0
            and operation in ("create", "update", "delete")
            and self.rng.random() < self.transient_rate
        ):
            self.fired += 1
            return InjectedFault(
                error_code="InternalServerError",
                message="An internal error occurred. Please retry.",
                transient=True,
                extra_delay_s=0.0,
            )
        return None
