"""Simulated multi-cloud substrate.

Stands in for real AWS/Azure control planes (see DESIGN.md,
"Substitutions"): typed resources, regions, per-type provisioning
latency, API rate limits, activity logs, quotas, and fault injection --
all over a discrete-event :class:`SimClock` so experiments run in
microseconds of wall time.
"""

from .activitylog import ActivityEvent, ActivityLog
from .aws.provider import AWS_REGIONS, AwsControlPlane, aws_catalog
from .azure.provider import AZURE_LOCATIONS, AzureControlPlane, azure_catalog
from .base import (
    CloudAPIError,
    ControlPlane,
    PendingOperation,
    ResourceRecord,
)
from .clock import EventQueue, SimClock, SkewedClock
from .faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    OutageSpec,
    SpecValidationError,
)
from .gateway import CloudGateway
from .latency import DEFAULT_PROFILE, LatencyModel, LatencyProfile
from .ratelimit import RateLimiterBank, RateLimitStats, TokenBucket
from .resilience import (
    BreakerPolicy,
    CircuitBreaker,
    DEFAULT_TIMEOUTS,
    HealthMonitor,
    OperationTimeout,
    OUTAGE_CODES,
    PartitionUnavailableError,
    ResilientGateway,
    RetryPolicy,
    RetryStats,
    TERMINAL,
    THROTTLED,
    TIMEOUT,
    TRANSIENT,
    UNAVAILABLE,
    classify,
    is_outage_error,
)
from .resources import AttributeSpec, ResourceTypeSpec
from .synthetic import SyntheticControlPlane, synthetic_catalog

__all__ = [
    "ActivityEvent",
    "ActivityLog",
    "AttributeSpec",
    "AWS_REGIONS",
    "AwsControlPlane",
    "aws_catalog",
    "AZURE_LOCATIONS",
    "AzureControlPlane",
    "azure_catalog",
    "BreakerPolicy",
    "CircuitBreaker",
    "classify",
    "CloudAPIError",
    "CloudGateway",
    "ControlPlane",
    "DEFAULT_PROFILE",
    "DEFAULT_TIMEOUTS",
    "EventQueue",
    "FaultInjector",
    "FaultSpec",
    "HealthMonitor",
    "InjectedFault",
    "is_outage_error",
    "LatencyModel",
    "LatencyProfile",
    "OperationTimeout",
    "OUTAGE_CODES",
    "OutageSpec",
    "PartitionUnavailableError",
    "PendingOperation",
    "RateLimiterBank",
    "RateLimitStats",
    "ResilientGateway",
    "ResourceRecord",
    "ResourceTypeSpec",
    "RetryPolicy",
    "RetryStats",
    "SimClock",
    "SkewedClock",
    "SpecValidationError",
    "SyntheticControlPlane",
    "synthetic_catalog",
    "TERMINAL",
    "THROTTLED",
    "TIMEOUT",
    "TokenBucket",
    "TRANSIENT",
    "UNAVAILABLE",
]
