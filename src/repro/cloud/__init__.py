"""Simulated multi-cloud substrate.

Stands in for real AWS/Azure control planes (see DESIGN.md,
"Substitutions"): typed resources, regions, per-type provisioning
latency, API rate limits, activity logs, quotas, and fault injection --
all over a discrete-event :class:`SimClock` so experiments run in
microseconds of wall time.
"""

from .activitylog import ActivityEvent, ActivityLog
from .aws.provider import AWS_REGIONS, AwsControlPlane, aws_catalog
from .azure.provider import AZURE_LOCATIONS, AzureControlPlane, azure_catalog
from .base import (
    CloudAPIError,
    ControlPlane,
    PendingOperation,
    ResourceRecord,
)
from .clock import EventQueue, SimClock
from .faults import FaultInjector, FaultSpec, InjectedFault
from .gateway import CloudGateway
from .latency import DEFAULT_PROFILE, LatencyModel, LatencyProfile
from .ratelimit import RateLimiterBank, RateLimitStats, TokenBucket
from .resources import AttributeSpec, ResourceTypeSpec

__all__ = [
    "ActivityEvent",
    "ActivityLog",
    "AttributeSpec",
    "AWS_REGIONS",
    "AwsControlPlane",
    "aws_catalog",
    "AZURE_LOCATIONS",
    "AzureControlPlane",
    "azure_catalog",
    "CloudAPIError",
    "CloudGateway",
    "ControlPlane",
    "DEFAULT_PROFILE",
    "EventQueue",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "LatencyModel",
    "LatencyProfile",
    "PendingOperation",
    "RateLimiterBank",
    "RateLimitStats",
    "ResourceRecord",
    "ResourceTypeSpec",
    "SimClock",
    "TokenBucket",
]
