"""Multi-cloud gateway.

A thin router fronting one or more provider control planes over a shared
simulated clock -- the deploy/drift/policy layers talk to this, never to
an individual provider directly, mirroring how IaC frameworks speak
through per-provider plugins.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .aws.provider import AwsControlPlane
from .azure.provider import AzureControlPlane
from .base import CloudAPIError, ControlPlane, PendingOperation
from .clock import SimClock


class CloudGateway:
    """Routes operations to the control plane that owns a resource type."""

    def __init__(self, planes: Dict[str, ControlPlane], clock: SimClock):
        self.clock = clock
        self.planes = dict(planes)
        # resolved type -> plane-key routes for planes registered under
        # a key that is not their type prefix (invalidated per lookup
        # if the plane disappears or stops serving the type)
        self._type_routes: Dict[str, str] = {}
        for plane in self.planes.values():
            if plane.clock is not clock:
                raise ValueError("all control planes must share the gateway clock")

    @classmethod
    def simulated(
        cls,
        seed: int = 0,
        clock: Optional[SimClock] = None,
        synthetic: int = 0,
    ) -> "CloudGateway":
        """A gateway with fresh aws+azure planes on one clock.

        ``synthetic=N`` adds N aws-shaped synthetic planes (``syn0``,
        ``syn1``, ...; see :mod:`repro.cloud.synthetic`) -- the
        substrate for multi-plane sharding benchmarks.
        """
        clock = clock or SimClock()
        planes = {
            "aws": AwsControlPlane(clock=clock, seed=seed),
            "azure": AzureControlPlane(clock=clock, seed=seed + 1000),
        }
        if synthetic:
            from .synthetic import SyntheticControlPlane

            for i in range(synthetic):
                prefix = f"syn{i}"
                planes[prefix] = SyntheticControlPlane(
                    prefix, clock=clock, seed=seed + 2000 + i
                )
        return cls(planes, clock)

    # -- routing ----------------------------------------------------------

    def try_provider_of(self, rtype: str) -> Optional[str]:
        """The plane key owning ``rtype``, or None if no plane serves it.

        Fast path: the type prefix *is* a plane key (aws_vpc -> "aws").
        Fallback: scan plane catalogs -- a plane may be registered under
        any key (e.g. a synthetic ``syn0``-prefixed plane mounted as
        ``"edge"``), so the prefix alone is not authoritative.
        """
        prefix = rtype.split("_", 1)[0]
        if prefix in self.planes:
            return prefix
        cached = self._type_routes.get(rtype)
        if cached is not None:
            plane = self.planes.get(cached)
            if plane is not None and rtype in plane.specs:
                return cached
            del self._type_routes[rtype]
        for name in sorted(self.planes):
            if rtype in self.planes[name].specs:
                self._type_routes[rtype] = name
                return name
        return None

    def provider_of(self, rtype: str) -> str:
        provider = self.try_provider_of(rtype)
        if provider is not None:
            return provider
        raise CloudAPIError(
            "UnknownResourceType",
            f"No provider is configured for resource type '{rtype}'.",
            http_status=404,
            resource_type=rtype,
        )

    def plane_for(self, rtype: str) -> ControlPlane:
        return self.planes[self.provider_of(rtype)]

    def default_region(self, rtype: str) -> str:
        return self.plane_for(rtype).regions[0]

    def region_for(self, rtype: str, attrs: Dict[str, Any]) -> str:
        """The region an instance lands in: location attr, else default."""
        location = attrs.get("location")
        if isinstance(location, str) and location:
            return location
        return self.default_region(rtype)

    # -- operations ----------------------------------------------------------

    def submit(self, operation: str, rtype: str, **kwargs: Any) -> PendingOperation:
        return self.plane_for(rtype).submit(operation, rtype, **kwargs)

    def execute(self, operation: str, rtype: str, **kwargs: Any) -> Any:
        return self.plane_for(rtype).execute(operation, rtype, **kwargs)

    def spec_for(self, rtype: str):
        return self.plane_for(rtype).spec_for(rtype)

    def try_spec(self, rtype: str):
        """spec_for, or None for unknown types (planner convenience)."""
        try:
            return self.plane_for(rtype).spec_for(rtype)
        except CloudAPIError:
            return None

    def read_data(
        self, rtype: str, attrs: Dict[str, Any], region: str = ""
    ) -> Dict[str, Any]:
        """Resolve a data-source query; costs one read-class API call."""
        plane = self.plane_for(rtype)
        pending = plane.submit("read", "", attrs={})  # account for the call
        plane.clock.advance_to(pending.t_complete)
        pending.resolve()
        return plane.read_data(rtype, attrs, region)

    def mean_latency(self, rtype: str, operation: str) -> float:
        return self.plane_for(rtype).latency.mean(rtype, operation)

    # -- outages ------------------------------------------------------------

    def inject_outage(self, provider: str, outage: Any) -> None:
        """Schedule an :class:`~repro.cloud.faults.OutageSpec` on one
        provider's control plane."""
        self.planes[provider].faults.add_outage(outage)

    def dark_partitions(self, now: Optional[float] = None) -> Dict[tuple, float]:
        """Every (provider, region) currently in a hard outage, mapped
        to its expected recovery time. A provider-wide outage appears
        as ``(provider, "*")``."""
        now = self.clock.now if now is None else now
        out: Dict[tuple, float] = {}
        for name in sorted(self.planes):
            for region, horizon in self.planes[name].unavailable_regions(now).items():
                out[(name, region)] = horizon
        return out

    def partition_dark(
        self, provider: str, region: str, now: Optional[float] = None
    ) -> Optional[float]:
        """When (provider, region) is expected back, or None if it is
        reachable according to the status page."""
        plane = self.planes.get(provider)
        if plane is None:
            return None
        return plane.outage_horizon(region, now)

    # -- aggregate introspection ---------------------------------------------

    def total_api_calls(self) -> int:
        return sum(p.total_api_calls() for p in self.planes.values())

    def api_calls_by_class(self) -> Dict[str, int]:
        out = {"read": 0, "write": 0}
        for plane in self.planes.values():
            for klass, count in plane.api_calls.items():
                out[klass] = out.get(klass, 0) + count
        return out

    def all_records(self) -> List[Any]:
        out = []
        for plane in self.planes.values():
            out.extend(plane.records.values())
        return out

    def find_record(self, resource_id: str):
        for plane in self.planes.values():
            if resource_id in plane.records:
                return plane.records[resource_id]
        return None

    def find_record_by_token(self, token: str):
        """The live resource a create minted under ``token``, if any.

        This is recovery's probe: an open WAL intent whose token maps to
        a record means the crashed run's create landed cloud-side.
        """
        if not token:
            return None
        for name in sorted(self.planes):
            record = self.planes[name].find_by_token(token)
            if record is not None:
                return record
        return None

    def settle_inflight(self) -> int:
        """Resolve every accepted-but-unresolved write across all planes.

        Models the cloud outliving a crashed client: operations the
        providers accepted before the process died still complete (or
        fail) on their own schedule. Effects land in global
        ``t_complete`` order so cross-plane causality is preserved.
        Returns how many operations settled.
        """
        survivors: List[Any] = []
        for name in sorted(self.planes):
            plane = self.planes[name]
            survivors.extend(p for p in plane._inflight if not p.resolved)
            plane._inflight = []
        count = 0
        for pending in sorted(survivors, key=lambda p: p.t_complete):
            self.clock.advance_to(max(pending.t_complete, self.clock.now))
            try:
                pending.resolve()
            except CloudAPIError:
                pass
            count += 1
        return count
