"""Cloud API rate limiting (token bucket), in simulated time.

The paper repeatedly blames management-plane slowness on "cloud API rate
limiting" (3.3, 3.5); this token bucket is the mechanism every control
plane call flows through, so both deployment scheduling and drift
scanning feel the same pressure real tools do.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional


@dataclasses.dataclass
class RateLimitStats:
    """Counters describing bucket pressure over a run."""

    calls: int = 0
    throttled_calls: int = 0
    total_wait_s: float = 0.0
    #: simulated seconds of refill a noisy neighbor reserved away from
    #: this tenant (see :meth:`TokenBucket.preempt`)
    contended_s: float = 0.0


class TokenBucket:
    """Classic token bucket over simulated time.

    ``rate`` tokens/second refill, ``burst`` bucket capacity. Callers
    ask when their call *could* start, then commit to consuming a token
    at that time. Both steps are separated so schedulers can plan
    without consuming.
    """

    def __init__(self, rate: float, burst: int):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._updated_at = 0.0
        self.stats = RateLimitStats()

    def _refill(self, now: float) -> None:
        if now > self._updated_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated_at) * self.rate
            )
            self._updated_at = now

    def available_at(self, now: float, tokens: int = 1) -> float:
        """Earliest absolute time ``tokens`` tokens will be available.

        The bucket state may sit *ahead* of ``now`` (earlier consumers
        reserved start times in the future), so availability is computed
        from ``_updated_at``, never from ``now`` alone.
        """
        if tokens > self.burst:
            raise ValueError(f"cannot ever serve {tokens} tokens (burst={self.burst})")
        t_star = self._updated_at + max(0.0, tokens - self._tokens) / self.rate
        return max(now, t_star)

    def consume(self, now: float, tokens: int = 1) -> float:
        """Consume ``tokens`` at or after ``now``; returns the start time.

        If the bucket is empty the start time is pushed into the future
        -- the caller must model the wait (executors schedule the API
        call to begin then).
        """
        start = self.available_at(now, tokens)
        self._refill(start)
        self._tokens -= tokens
        self.stats.calls += 1
        if start > now + 1e-12:
            self.stats.throttled_calls += 1
            self.stats.total_wait_s += start - now
        return start

    def preempt(self, now: float, busy_s: float) -> float:
        """A noisy neighbor burns the bucket: drain every token and
        reserve the refill stream for ``busy_s`` further seconds.

        Models a co-tenant hammering the same provider API quota --
        the next ``consume`` cannot start before the returned time.
        The neighbor's own calls are not this tenant's calls, so only
        ``contended_s`` is accounted, never ``calls``.
        """
        if busy_s < 0:
            raise ValueError("busy_s must be >= 0")
        self._refill(now)
        self._tokens = 0.0
        self._updated_at = max(self._updated_at, now) + busy_s
        self.stats.contended_s += busy_s
        return self._updated_at


class RateLimiterBank:
    """Per-operation-class buckets for one provider.

    Real clouds throttle reads and writes separately (and some
    operations, like Azure Resource Manager writes, far more harshly).
    """

    def __init__(self, limits: Optional[Dict[str, tuple]] = None):
        limits = limits or {"read": (20.0, 40), "write": (5.0, 10)}
        self.buckets: Dict[str, TokenBucket] = {
            name: TokenBucket(rate, burst) for name, (rate, burst) in limits.items()
        }

    def bucket_for(self, op_class: str) -> TokenBucket:
        if op_class not in self.buckets:
            op_class = "write" if "write" in self.buckets else next(iter(self.buckets))
        return self.buckets[op_class]

    def consume(self, op_class: str, now: float) -> float:
        return self.bucket_for(op_class).consume(now)

    def available_at(self, op_class: str, now: float) -> float:
        return self.bucket_for(op_class).available_at(now)

    def preempt(self, op_class: str, now: float, busy_s: float) -> float:
        """Noisy-neighbor contention on one operation class's bucket."""
        return self.bucket_for(op_class).preempt(now, busy_s)

    @property
    def stats(self) -> Dict[str, RateLimitStats]:
        return {name: b.stats for name, b in self.buckets.items()}
