"""IaC program synthesis (paper 3.1)."""

from .generator import ErrorRates, NoisyGenerator
from .synthesizer import (
    RetrievalCorpus,
    SynthesisResult,
    TypeGuidedSynthesizer,
)
from .tasks import (
    STANDARD_TASKS,
    ResourceRequest,
    SynthesisTask,
    random_task,
)

__all__ = [
    "ErrorRates",
    "NoisyGenerator",
    "ResourceRequest",
    "RetrievalCorpus",
    "STANDARD_TASKS",
    "SynthesisResult",
    "SynthesisTask",
    "TypeGuidedSynthesizer",
    "random_task",
]
