"""Type-guided, retrieval-augmented IaC synthesis (3.1).

The paper proposes "decomposing the infrastructure into its component
elements to simplify synthesis, while jointly applying formal and
textual specifications (type-guided and ML-based search)". Here the
formal half is the semantic schema: the synthesizer walks the reference
closure of every requested type (a VM needs a NIC, which needs a
subnet, which needs a network), fills required attributes from their
types, and is therefore *valid by construction*. The retrieval half
(:class:`RetrievalCorpus`) personalizes output with the conventions
dominant in the user's existing configurations.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Any, Dict, List, Optional, Tuple

from ..cloud.resources import AttributeSpec, ResourceTypeSpec
from ..lang.config import Configuration
from ..porting.emitter import EmittedBlock, RawExpr, emit_config, resource_block
from ..types.schema import SchemaRegistry
from .tasks import ResourceRequest, SynthesisTask

_SCALAR = (str, int, float, bool)

#: reference targets that should be dedicated per consumer rather than
#: shared (a VM gets its own NIC; everything else is shared substrate)
_DEDICATED_TYPES = ("network_interface",)


@dataclasses.dataclass
class SynthesisResult:
    """Synthesized program + provenance."""

    task: SynthesisTask
    sources: Dict[str, str]
    block_count: int
    conventions_applied: List[str] = dataclasses.field(default_factory=list)
    injected_errors: List[str] = dataclasses.field(default_factory=list)

    @property
    def main_source(self) -> str:
        return self.sources["main.clc"]

    def parse(self) -> Configuration:
        return Configuration.parse(self.sources)


class RetrievalCorpus:
    """Conventions mined from the user's existing configurations.

    For each (rtype, attr): how often the attr is set, and its dominant
    literal value. Dominant, frequently-set optional attributes become
    conventions the synthesizer reproduces (the paper's RAG-style
    personalization, grounded instead of generative).
    """

    def __init__(self, min_usage: float = 0.6, min_dominance: float = 0.6):
        self.min_usage = min_usage
        self.min_dominance = min_dominance
        self.conventions: Dict[Tuple[str, str], Any] = {}
        self.known_attrs: Dict[str, set] = defaultdict(set)

    def fit(self, configs: List[Configuration]) -> "RetrievalCorpus":
        from ..validate.rules import ValidationContext

        usage: Dict[Tuple[str, str], int] = Counter()
        totals: Counter = Counter()
        values: Dict[Tuple[str, str], Counter] = defaultdict(Counter)
        for config in configs:
            ctx = ValidationContext.build(config)
            for node in ctx.instances():
                if node.address.mode != "managed":
                    continue
                rtype = node.address.type
                totals[rtype] += 1
                for attr in node.decl.body.attributes:
                    self.known_attrs[rtype].add(attr)
                    usage[(rtype, attr)] += 1
                    value = ctx.known_attr(node, attr)
                    if isinstance(value, _SCALAR):
                        values[(rtype, attr)][repr(value)] += 1
        for (rtype, attr), count in usage.items():
            if attr == "name" or totals[rtype] == 0:
                continue
            if count / totals[rtype] < self.min_usage:
                continue
            counter = values.get((rtype, attr))
            if not counter:
                continue
            value_repr, value_count = counter.most_common(1)[0]
            if value_count / sum(counter.values()) < self.min_dominance:
                continue
            self.conventions[(rtype, attr)] = eval(value_repr)  # repr of scalar
        return self

    def conventions_for(self, rtype: str) -> Dict[str, Any]:
        return {
            attr: value
            for (rt, attr), value in self.conventions.items()
            if rt == rtype
        }


class _CidrAllocator:
    """Hands out non-overlapping networks for synthesized estates."""

    def __init__(self) -> None:
        self._next_net = 0
        self._subnet_index: Dict[str, int] = defaultdict(int)

    def network(self) -> str:
        net = f"10.{self._next_net}.0.0/16"
        self._next_net += 1
        return net

    def subnet_expr(self, parent_ref: str, parent_attr: str, is_list: bool) -> RawExpr:
        index = self._subnet_index[parent_ref]
        self._subnet_index[parent_ref] += 1
        source = f"{parent_ref}.{parent_attr}"
        if is_list:
            source += "[0]"
        return RawExpr(f"cidrsubnet({source}, 8, {index})")


class TypeGuidedSynthesizer:
    """Valid-by-construction synthesis over the semantic schema."""

    def __init__(
        self,
        registry: Optional[SchemaRegistry] = None,
        corpus: Optional[RetrievalCorpus] = None,
    ):
        self.registry = registry or SchemaRegistry.default()
        self.corpus = corpus

    def synthesize(self, task: SynthesisTask) -> SynthesisResult:
        builder = _Builder(self.registry, task, self.corpus)
        for request in task.requests:
            for _ in range(request.count):
                builder.create(request.rtype, pinned=request.pinned, dedicated=True)
        blocks = builder.finish()
        return SynthesisResult(
            task=task,
            sources={"main.clc": emit_config(blocks)},
            block_count=len(blocks),
            conventions_applied=builder.conventions_applied,
        )


class _Builder:
    """Shared block-construction machinery (also used by the noisy
    generator, which corrupts its output afterwards)."""

    def __init__(
        self,
        registry: SchemaRegistry,
        task: SynthesisTask,
        corpus: Optional[RetrievalCorpus],
    ):
        self.registry = registry
        self.task = task
        self.corpus = corpus
        self.region = task.region or (
            registry.regions_of(task.provider)[0]
            if registry.regions_of(task.provider)
            else ""
        )
        self.blocks: List[EmittedBlock] = []
        self.shared: Dict[str, str] = {}  # rtype -> block name (shared substrate)
        self.counters: Dict[str, int] = defaultdict(int)
        self.conventions_applied: List[str] = []
        self.cidrs = _CidrAllocator()

    # -- public ----------------------------------------------------------------

    def create(
        self,
        rtype: str,
        pinned: Optional[Dict[str, Any]] = None,
        dedicated: bool = False,
    ) -> str:
        """Create one instance of rtype (plus its closure); returns name."""
        return self._instantiate(rtype, pinned or {}, force_new=dedicated)

    def ensure(self, rtype: str) -> str:
        """A shared instance of rtype, created on first use."""
        if rtype in self.shared:
            return self.shared[rtype]
        name = self._instantiate(rtype, {}, force_new=False)
        self.shared[rtype] = name
        return name

    def finish(self) -> List[EmittedBlock]:
        return sorted(self.blocks, key=lambda b: b.labels)

    # -- construction ------------------------------------------------------------

    def _fresh_name(self, rtype: str) -> str:
        short = rtype.split("_", 1)[-1]
        index = self.counters[rtype]
        self.counters[rtype] += 1
        return f"{short}_{index}" if index else short

    def _instantiate(
        self, rtype: str, pinned: Dict[str, Any], force_new: bool
    ) -> str:
        spec = self.registry.spec_for(rtype)
        if spec is None:
            raise ValueError(f"unknown resource type {rtype!r}")
        name = self._fresh_name(rtype)
        attrs: List[Tuple[str, Any]] = []
        for aspec in sorted(spec.attributes.values(), key=lambda a: a.name):
            if aspec.computed:
                continue
            if aspec.name in pinned:
                attrs.append((aspec.name, pinned[aspec.name]))
                continue
            value = self._fill(rtype, name, aspec)
            if value is not None:
                attrs.append((aspec.name, value))
        if self.corpus is not None:
            attrs = self._apply_conventions(rtype, spec, attrs, pinned)
        self.blocks.append(resource_block(rtype, name, attrs))
        return name

    def _fill(self, rtype: str, name: str, aspec: AttributeSpec) -> Any:
        semantic = aspec.semantic
        if aspec.name == "name":
            return f"{self.task.name}-{name}".replace("_", "-")
        if semantic == "region":
            return self.region
        if semantic.startswith("ref:") or semantic.startswith("ref_list:"):
            if not aspec.required:
                return None
            target_type = aspec.ref_target or ""
            dedicated = any(t in target_type for t in _DEDICATED_TYPES)
            target_name = (
                self.create(target_type)
                if dedicated
                else self.ensure(target_type)
            )
            ref = RawExpr(f"{target_type}.{target_name}.id")
            return [ref] if aspec.is_ref_list else ref
        if semantic == "cidr":
            parent = self._network_parent(rtype)
            if parent is not None:
                parent_ref, parent_attr, is_list = parent
                return self.cidrs.subnet_expr(parent_ref, parent_attr, is_list)
            return self.cidrs.network()
        if semantic == "cidr_list":
            return [self.cidrs.network()]
        if not aspec.required:
            return None
        enum = aspec.enum_values
        if enum:
            return enum[0]
        base = aspec.type.split("(")[0]
        if base == "number":
            return aspec.default if aspec.default is not None else 10
        if base == "bool":
            return aspec.default if aspec.default is not None else False
        if base == "list":
            return []
        if semantic == "password":
            return None
        if aspec.name == "peer_ip":
            return "192.0.2.1"
        return aspec.default if aspec.default is not None else f"{aspec.name}-value"

    def _network_parent(self, rtype: str) -> Optional[Tuple[str, str, bool]]:
        """For a subnet-like type: the parent network ref + cidr attr."""
        spec = self.registry.spec_for(rtype)
        assert spec is not None
        for aspec in spec.reference_attrs():
            target_type = aspec.ref_target or ""
            target_spec = self.registry.spec_for(target_type)
            if target_spec is None:
                continue
            for tattr in target_spec.attributes.values():
                if tattr.semantic in ("cidr", "cidr_list"):
                    parent_name = self.ensure(target_type)
                    return (
                        f"{target_type}.{parent_name}",
                        tattr.name,
                        tattr.semantic == "cidr_list",
                    )
        return None

    def _apply_conventions(
        self,
        rtype: str,
        spec: ResourceTypeSpec,
        attrs: List[Tuple[str, Any]],
        pinned: Dict[str, Any],
    ) -> List[Tuple[str, Any]]:
        assert self.corpus is not None
        existing = {k for k, _ in attrs}
        out = list(attrs)
        for attr, value in sorted(self.corpus.conventions_for(rtype).items()):
            aspec = spec.attr(attr)
            if aspec is None or aspec.computed or attr in pinned:
                continue
            if aspec.semantic.startswith("ref") or aspec.semantic in (
                "cidr",
                "cidr_list",
                "region",
            ):
                continue
            if attr in existing:
                out = [(k, value if k == attr else v) for k, v in out]
            else:
                out.append((attr, value))
            self.conventions_applied.append(f"{rtype}.{attr}={value!r}")
        return out

