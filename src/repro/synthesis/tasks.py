"""Synthesis task definitions (3.1).

A :class:`SynthesisTask` is the structured form of a user intent like
"give me two web VMs behind a load balancer on aws": the resource types
wanted, how many, where, and any pinned attribute values. Both the
noisy generator (the LLM stand-in) and the type-guided synthesizer
consume the same tasks, so E8 compares like for like.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Tuple


@dataclasses.dataclass
class ResourceRequest:
    """One requested resource kind."""

    rtype: str
    count: int = 1
    pinned: Dict[str, Any] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class SynthesisTask:
    """One synthesis intent."""

    name: str
    provider: str
    requests: List[ResourceRequest]
    region: str = ""
    description: str = ""

    def requested_types(self) -> List[str]:
        return sorted({r.rtype for r in self.requests})


#: intents modelled on the workloads the paper's introduction motivates
STANDARD_TASKS: List[SynthesisTask] = [
    SynthesisTask(
        name="web-vms",
        provider="aws",
        requests=[ResourceRequest("aws_virtual_machine", count=2)],
        description="two web VMs with networking",
    ),
    SynthesisTask(
        name="web-tier-lb",
        provider="aws",
        requests=[
            ResourceRequest("aws_virtual_machine", count=3),
            ResourceRequest("aws_load_balancer"),
        ],
        description="three VMs behind a load balancer",
    ),
    SynthesisTask(
        name="db-backend",
        provider="aws",
        requests=[
            ResourceRequest(
                "aws_database_instance", pinned={"engine": "postgres"}
            ),
            ResourceRequest("aws_s3_bucket"),
        ],
        description="a postgres database plus an object bucket",
    ),
    SynthesisTask(
        name="vpn-site",
        provider="aws",
        requests=[
            ResourceRequest("aws_vpn_gateway"),
            ResourceRequest(
                "aws_vpn_tunnel", count=2, pinned={"peer_ip": "203.0.113.10"}
            ),
        ],
        description="site-to-site VPN with two tunnels",
    ),
    SynthesisTask(
        name="azure-vm",
        provider="azure",
        requests=[ResourceRequest("azure_virtual_machine", count=2)],
        region="westeurope",
        description="two Azure VMs with networking",
    ),
    SynthesisTask(
        name="azure-db-storage",
        provider="azure",
        requests=[
            ResourceRequest("azure_database", pinned={"engine": "mysql"}),
            ResourceRequest("azure_storage_account"),
        ],
        region="eastus",
        description="an Azure database and a storage account",
    ),
    SynthesisTask(
        name="azure-gateway",
        provider="azure",
        requests=[
            ResourceRequest("azure_vpn_gateway"),
            ResourceRequest("azure_vpn_tunnel", pinned={"peer_ip": "198.51.100.7"}),
        ],
        region="eastus",
        description="an Azure VPN gateway with one connection",
    ),
    SynthesisTask(
        name="autoscaling-web",
        provider="aws",
        requests=[
            ResourceRequest(
                "aws_autoscaling_group", pinned={"min_size": 2, "max_size": 6}
            ),
            ResourceRequest("aws_load_balancer"),
        ],
        description="an autoscaled web tier",
    ),
]


def random_task(rng: random.Random, index: int = 0) -> SynthesisTask:
    """A randomized task over the simulated catalogs (for sweeps)."""
    provider = rng.choice(["aws", "azure"])
    pool = {
        "aws": [
            "aws_virtual_machine",
            "aws_load_balancer",
            "aws_database_instance",
            "aws_s3_bucket",
            "aws_vpn_tunnel",
            "aws_disk",
        ],
        "azure": [
            "azure_virtual_machine",
            "azure_database",
            "azure_storage_account",
            "azure_vpn_tunnel",
            "azure_disk",
        ],
    }[provider]
    k = rng.randint(1, 3)
    requests = [
        ResourceRequest(rtype, count=rng.randint(1, 3))
        for rtype in rng.sample(pool, k)
    ]
    return SynthesisTask(
        name=f"task-{index}",
        provider=provider,
        requests=requests,
        description="randomized sweep task",
    )
