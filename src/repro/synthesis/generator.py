"""Noisy IaC generation: the unguided-LLM stand-in (3.1).

The paper reports that existing LLM-based tools "frequently generate
invalid IaC code, even for small-scale templates... hallucinate basic
syntax... liable to introduce security vulnerabilities". This generator
reproduces those failure modes deterministically: it builds a plausible
program (reusing the type-guided builder, as an LLM reuses training
priors) and then corrupts it with calibrated error rates --
hallucinated attribute names, missing required attributes, wrong-type
references, invalid enum values, region typos, cross-region wiring, and
insecure settings.

With ``retrieval=True`` the error rates shrink (grounding in the
user's corpus suppresses hallucination), matching the paper's proposed
mitigation; the E8 benchmark sweeps both arms.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Tuple

from ..porting.emitter import EmittedBlock, RawExpr, emit_config
from ..types.schema import SchemaRegistry
from .synthesizer import RetrievalCorpus, _Builder
from .tasks import SynthesisTask


@dataclasses.dataclass
class ErrorRates:
    """Per-block corruption probabilities."""

    hallucinate_attr: float = 0.12
    drop_required: float = 0.10
    wrong_ref: float = 0.10
    bad_enum: float = 0.08
    bad_region: float = 0.06
    region_mismatch: float = 0.06
    insecure: float = 0.08

    def scaled(self, factor: float) -> "ErrorRates":
        return ErrorRates(
            **{
                field.name: getattr(self, field.name) * factor
                for field in dataclasses.fields(self)
            }
        )


#: plausible-but-wrong attribute names an ungrounded model produces
_HALLUCINATED_NAMES = {
    "nic_ids": "network_interfaces",
    "subnet_id": "subnet",
    "vpc_id": "vpc",
    "cidr_block": "cidr",
    "address_prefix": "address_prefixes",
    "address_spaces": "address_space",
    "location": "region",
    "size": "instance_type",
    "engine": "database_engine",
    "storage_gb": "allocated_storage",
    "gateway_id": "vpn_gateway_id",
}


class NoisyGenerator:
    """Generates mostly-right, sometimes-wrong IaC programs."""

    def __init__(
        self,
        registry: Optional[SchemaRegistry] = None,
        rates: Optional[ErrorRates] = None,
        retrieval: Optional[RetrievalCorpus] = None,
        retrieval_factor: float = 0.35,
        seed: int = 0,
    ):
        self.registry = registry or SchemaRegistry.default()
        base = rates or ErrorRates()
        self.retrieval = retrieval
        self.rates = base.scaled(retrieval_factor) if retrieval else base
        self.rng = random.Random(seed)

    def generate(self, task: SynthesisTask):
        from .synthesizer import SynthesisResult

        builder = _Builder(self.registry, task, self.retrieval)
        for request in task.requests:
            for _ in range(request.count):
                builder.create(request.rtype, pinned=request.pinned, dedicated=True)
        blocks = builder.finish()
        injected: List[str] = []
        for block in blocks:
            self._corrupt(block, injected)
        return SynthesisResult(
            task=task,
            sources={"main.clc": emit_config(blocks)},
            block_count=len(blocks),
            conventions_applied=builder.conventions_applied,
            injected_errors=injected,
        )

    # -- corruption passes ------------------------------------------------------

    def _corrupt(self, block: EmittedBlock, injected: List[str]) -> None:
        if block.kind != "resource":
            return
        rtype = block.labels[0]
        spec = self.registry.spec_for(rtype)
        label = f"{rtype}.{block.labels[1]}"
        rates = self.rates

        if self.rng.random() < rates.hallucinate_attr:
            for i, (key, value) in enumerate(block.attrs):
                if key in _HALLUCINATED_NAMES:
                    block.attrs[i] = (_HALLUCINATED_NAMES[key], value)
                    injected.append(f"{label}: hallucinated attr {key!r}")
                    break

        if self.rng.random() < rates.drop_required and spec is not None:
            required = [
                a.name
                for a in spec.required_attrs()
                if not a.computed and a.name != "name"
            ]
            present = [k for k, _ in block.attrs]
            droppable = [a for a in required if a in present]
            if droppable:
                victim = self.rng.choice(droppable)
                block.attrs = [(k, v) for k, v in block.attrs if k != victim]
                injected.append(f"{label}: dropped required attr {victim!r}")

        if self.rng.random() < rates.wrong_ref:
            for i, (key, value) in enumerate(block.attrs):
                if isinstance(value, RawExpr) and value.text.endswith(".id"):
                    block.attrs[i] = (
                        key,
                        RawExpr(self._wrong_ref(value.text)),
                    )
                    injected.append(f"{label}: wrong-type reference in {key!r}")
                    break
                if (
                    isinstance(value, list)
                    and value
                    and isinstance(value[0], RawExpr)
                ):
                    block.attrs[i] = (
                        key,
                        [RawExpr(self._wrong_ref(value[0].text))] + value[1:],
                    )
                    injected.append(f"{label}: wrong-type reference in {key!r}")
                    break

        if self.rng.random() < rates.bad_enum and spec is not None:
            for i, (key, value) in enumerate(block.attrs):
                aspec = spec.attr(key)
                if aspec is not None and aspec.enum_values and isinstance(value, str):
                    block.attrs[i] = (key, value + "-v2")
                    injected.append(f"{label}: invalid enum for {key!r}")
                    break

        if self.rng.random() < rates.bad_region:
            for i, (key, value) in enumerate(block.attrs):
                aspec = spec.attr(key) if spec else None
                if aspec is not None and aspec.semantic == "region":
                    block.attrs[i] = (key, str(value).replace("-", ""))
                    injected.append(f"{label}: region typo in {key!r}")
                    break

        if self.rng.random() < rates.region_mismatch:
            regions = self.registry.regions_of(
                self.registry.provider_of(rtype)
            )
            for i, (key, value) in enumerate(block.attrs):
                aspec = spec.attr(key) if spec else None
                if (
                    aspec is not None
                    and aspec.semantic == "region"
                    and isinstance(value, str)
                    and len(regions) > 1
                ):
                    others = [r for r in regions if r != value]
                    block.attrs[i] = (key, self.rng.choice(others))
                    injected.append(f"{label}: cross-region wiring via {key!r}")
                    break

        if self.rng.random() < rates.insecure and rtype == "azure_virtual_machine":
            block.attrs = [
                (k, v) for k, v in block.attrs if k != "admin_password"
            ] + [("admin_password", "Password123!")]
            injected.append(f"{label}: insecure hard-coded password")

    def _wrong_ref(self, expr: str) -> str:
        # point the reference at a different (wrong) resource type that
        # plausibly exists in the same program
        head = expr.split(".", 1)[0]
        provider = head.split("_", 1)[0]
        decoys = {
            "aws": ["aws_vpc.vpc", "aws_subnet.subnet", "aws_s3_bucket.bucket"],
            "azure": [
                "azure_virtual_network.virtual_network",
                "azure_subnet.subnet",
                "azure_resource_group.resource_group",
            ],
        }.get(provider, ["aws_vpc.vpc"])
        choice = self.rng.choice(decoys)
        return f"{choice}.id"
