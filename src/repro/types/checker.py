"""Semantic type checking of configurations (3.2).

Infers the semantic type every attribute expression *produces* and
checks it against what the resource schema *expects* -- catching, at
compile time, the class of errors the paper highlights: a reference to
the id of the wrong resource type, an enum value the cloud will reject,
a region that does not exist, an invalid CIDR.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, List, Optional, Set

from ..lang.ast_nodes import (
    AttrAccess,
    Conditional,
    Expr,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ObjectExpr,
    ScopeRef,
    SplatExpr,
    TemplateExpr,
)
from ..lang.config import Configuration, ResourceDecl
from ..lang.diagnostics import DiagnosticSink
from .schema import SchemaRegistry
from .semantic import ANY, SemanticType, compatible, literal_semantic

_CIDR_FUNCTIONS = {"cidrsubnet", "cidrhost", "cidrnetmask"}


class TypeChecker:
    """Checks one configuration against a schema registry."""

    def __init__(self, registry: SchemaRegistry, config: Configuration):
        self.registry = registry
        self.config = config
        self.sink = DiagnosticSink()
        self._local_cache: Dict[str, SemanticType] = {}
        self._local_stack: Set[str] = set()

    def check(self) -> DiagnosticSink:
        for decl in self.config.resources.values():
            self._check_resource(decl)
        return self.sink

    # -- per-resource checks ----------------------------------------------------

    def _check_resource(self, decl: ResourceDecl) -> None:
        spec = self.registry.spec_for(decl.type)
        if spec is None:
            if decl.mode == "managed":
                self.sink.error(
                    f"{decl.address}: unknown resource type {decl.type!r}",
                    decl.span,
                    "TYPE001",
                )
            return
        if decl.mode == "data":
            return  # data lookups have looser shapes
        declared = set(decl.body.attributes)
        for attr_name in declared:
            aspec = spec.attr(attr_name)
            attr = decl.body.attributes[attr_name]
            if aspec is None:
                self.sink.error(
                    f"{decl.address}: unsupported attribute {attr_name!r} "
                    f"for {decl.type}",
                    attr.span,
                    "TYPE002",
                )
                continue
            if aspec.computed:
                self.sink.error(
                    f"{decl.address}: attribute {attr_name!r} is read-only",
                    attr.span,
                    "TYPE003",
                )
                continue
            self._check_attr_value(decl, attr_name, attr.expr, aspec)
        for aspec in spec.required_attrs():
            if aspec.computed:
                continue
            if aspec.name not in declared:
                self.sink.error(
                    f"{decl.address}: missing required attribute "
                    f"{aspec.name!r}",
                    decl.span,
                    "TYPE004",
                )

    def _check_attr_value(
        self, decl: ResourceDecl, attr_name: str, expr: Expr, aspec
    ) -> None:
        from .semantic import expected_semantic

        expected = expected_semantic(aspec)
        base = aspec.type.split("(")[0]
        where = f"{decl.address}.{attr_name}"

        if base in ("list",) and isinstance(expr, ListExpr):
            for item in expr.items:
                self._check_single(where, item, expected)
            return
        if base in ("list",) and isinstance(expr, SplatExpr):
            produced = self._infer(expr)
            self._report_if_incompatible(where, expr, expected, produced)
            return
        self._check_single(where, expr, expected, base)

    def _check_single(
        self,
        where: str,
        expr: Expr,
        expected: SemanticType,
        base: str = "",
    ) -> None:
        produced = self._infer(expr)
        # literal-specific precision checks
        if isinstance(expr, Literal):
            self._check_literal(where, expr, expected, base)
        self._report_if_incompatible(where, expr, expected, produced)

    def _check_literal(
        self, where: str, expr: Literal, expected: SemanticType, base: str
    ) -> None:
        value = expr.value
        if value is None:
            return
        if base == "number" and (
            isinstance(value, bool) or not isinstance(value, (int, float))
        ):
            self.sink.error(
                f"{where}: expected a number, got {value!r}", expr.span, "TYPE005"
            )
            return
        if base == "bool" and not isinstance(value, bool):
            self.sink.error(
                f"{where}: expected a bool, got {value!r}", expr.span, "TYPE005"
            )
            return
        if expected.kind == "enum" and isinstance(value, str):
            allowed = expected.detail.split("|")
            if value not in allowed:
                self.sink.error(
                    f"{where}: {value!r} is not one of "
                    f"{', '.join(allowed)}",
                    expr.span,
                    "TYPE006",
                )
        if expected.kind == "cidr" and isinstance(value, str):
            try:
                ipaddress.ip_network(value, strict=True)
            except ValueError:
                self.sink.error(
                    f"{where}: {value!r} is not a valid CIDR block",
                    expr.span,
                    "TYPE007",
                )
        if expected.kind == "region" and isinstance(value, str):
            provider = self.registry.provider_of(where.split(".", 1)[0])
            regions = self.registry.regions_of(provider)
            if regions and value not in regions:
                self.sink.error(
                    f"{where}: {value!r} is not a known {provider} region",
                    expr.span,
                    "TYPE008",
                )

    def _report_if_incompatible(
        self, where: str, expr: Expr, expected: SemanticType, produced: SemanticType
    ) -> None:
        if not compatible(expected, produced):
            self.sink.error(
                f"{where}: expected {expected}, but expression produces "
                f"{produced}",
                expr.span,
                "TYPE009",
            )

    # -- semantic inference over expressions ---------------------------------------

    def _infer(self, expr: Expr) -> SemanticType:
        if isinstance(expr, Literal):
            return literal_semantic(expr.value)
        if isinstance(expr, TemplateExpr):
            return SemanticType("plain", base="string")
        if isinstance(expr, FunctionCall):
            if expr.name in _CIDR_FUNCTIONS:
                return SemanticType("cidr")
            return ANY
        if isinstance(expr, Conditional):
            then = self._infer(expr.then)
            other = self._infer(expr.otherwise)
            return then if then == other else ANY
        if isinstance(expr, ListExpr):
            return SemanticType("plain", base="list")
        if isinstance(expr, ObjectExpr):
            return SemanticType("plain", base="map")
        parts = _traversal(expr)
        if parts is not None:
            return self._infer_traversal(parts)
        if isinstance(expr, SplatExpr):
            parts = _traversal(expr.obj)
            if parts is not None and expr.attrs:
                return self._infer_traversal(parts + list(expr.attrs))
        return ANY

    def _infer_traversal(self, parts: List[str]) -> SemanticType:
        root = parts[0]
        if root == "local" and len(parts) >= 2:
            return self._infer_local(parts[1])
        if root == "var":
            return ANY
        if root == "data" and len(parts) >= 4:
            return self.registry.produced(parts[1], parts[3])
        if root in ("count", "each", "module", "path", "data"):
            return ANY
        # resource traversal: TYPE.NAME.attr
        if len(parts) >= 3 and self.registry.spec_for(root) is not None:
            return self.registry.produced(root, parts[2])
        if len(parts) >= 3 and self.config.resource(root, parts[1]) is not None:
            # declared but unknown to the registry
            return ANY
        return ANY

    def _infer_local(self, name: str) -> SemanticType:
        if name in self._local_cache:
            return self._local_cache[name]
        if name in self._local_stack:
            return ANY
        attr = self.config.locals.get(name)
        if attr is None:
            return ANY
        self._local_stack.add(name)
        try:
            result = self._infer(attr.expr)
        finally:
            self._local_stack.discard(name)
        self._local_cache[name] = result
        return result


def _traversal(expr: Expr) -> Optional[List[str]]:
    """Flatten attr/index accesses into name parts (indices skipped)."""
    parts: List[str] = []
    node = expr
    while True:
        if isinstance(node, AttrAccess):
            parts.append(node.name)
            node = node.obj
        elif isinstance(node, IndexAccess):
            node = node.obj
        elif isinstance(node, ScopeRef):
            parts.append(node.name)
            return list(reversed(parts))
        else:
            return None


def check_types(config: Configuration, registry: Optional[SchemaRegistry] = None):
    """Convenience: type-check ``config``, returning the diagnostics."""
    registry = registry or SchemaRegistry.default()
    return TypeChecker(registry, config).check()
