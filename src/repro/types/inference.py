"""Type discovery from usage corpora (3.2).

The paper proposes deriving semantic types "from IaC usage examples,
IaC documentation, and cloud-level API specifications" so the knowledge
base can track cloud evolution. This module implements the
usage-example half: given a corpus of known-good configurations, it
observes which resource types flow into which attributes and promotes
consistent observations into semantic annotations.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from ..cloud.resources import AttributeSpec, ResourceTypeSpec
from ..lang.ast_nodes import Expr, ListExpr
from ..lang.config import Configuration
from .checker import _traversal
from .schema import SchemaRegistry


@dataclasses.dataclass
class Observation:
    """One witnessed value flow: attr of rtype received an id of src."""

    rtype: str
    attr: str
    source_type: str
    as_list: bool


@dataclasses.dataclass
class InferredAnnotation:
    """A learned semantic annotation with its evidence."""

    rtype: str
    attr: str
    semantic: str
    support: int
    confidence: float


@dataclasses.dataclass
class InferenceReport:
    annotations: List[InferredAnnotation]
    observations: int

    def annotation_for(self, rtype: str, attr: str) -> Optional[InferredAnnotation]:
        for ann in self.annotations:
            if ann.rtype == rtype and ann.attr == attr:
                return ann
        return None


class SemanticInferencer:
    """Learns ``ref:`` semantics from example configurations."""

    def __init__(self, min_support: int = 2, min_confidence: float = 0.9):
        self.min_support = min_support
        self.min_confidence = min_confidence

    # -- observation collection -----------------------------------------------

    def observe(self, configs: List[Configuration]) -> List[Observation]:
        out: List[Observation] = []
        for config in configs:
            known_decls = {
                (decl.type, decl.name): decl
                for decl in config.resources.values()
                if decl.mode == "managed"
            }
            for decl in config.resources.values():
                if decl.mode != "managed":
                    continue
                for attr_name, attr in decl.body.attributes.items():
                    out.extend(
                        self._observe_expr(
                            decl.type, attr_name, attr.expr, known_decls
                        )
                    )
        return out

    def _observe_expr(
        self,
        rtype: str,
        attr: str,
        expr: Expr,
        known_decls: Dict[Tuple[str, str], object],
    ) -> List[Observation]:
        out: List[Observation] = []
        items: List[Tuple[Expr, bool]]
        if isinstance(expr, ListExpr):
            items = [(item, True) for item in expr.items]
        else:
            items = [(expr, False)]
        for item, as_list in items:
            parts = _traversal(item)
            if parts is None or len(parts) < 3:
                continue
            src_type, src_name, accessed = parts[0], parts[1], parts[2]
            if accessed != "id":
                continue
            if (src_type, src_name) not in known_decls:
                continue
            out.append(
                Observation(
                    rtype=rtype, attr=attr, source_type=src_type, as_list=as_list
                )
            )
        return out

    # -- rule promotion -----------------------------------------------------------

    def infer(self, configs: List[Configuration]) -> InferenceReport:
        observations = self.observe(configs)
        grouped: Dict[Tuple[str, str], List[Observation]] = defaultdict(list)
        for obs in observations:
            grouped[(obs.rtype, obs.attr)].append(obs)
        annotations: List[InferredAnnotation] = []
        for (rtype, attr), group in sorted(grouped.items()):
            counts = Counter(obs.source_type for obs in group)
            top_type, top_count = counts.most_common(1)[0]
            confidence = top_count / len(group)
            if top_count < self.min_support or confidence < self.min_confidence:
                continue
            as_list = sum(1 for o in group if o.as_list) > len(group) / 2
            prefix = "ref_list:" if as_list else "ref:"
            annotations.append(
                InferredAnnotation(
                    rtype=rtype,
                    attr=attr,
                    semantic=prefix + top_type,
                    support=top_count,
                    confidence=confidence,
                )
            )
        return InferenceReport(annotations=annotations, observations=len(observations))

    # -- registry enrichment --------------------------------------------------------

    def enrich(
        self, registry: SchemaRegistry, report: InferenceReport
    ) -> SchemaRegistry:
        """A new registry with learned annotations merged in.

        Learned semantics never *overwrite* authoritative catalog
        entries -- they fill gaps (attrs with no semantic, or resource
        types the registry has never seen).
        """
        out = SchemaRegistry()
        for provider, regions in registry._regions.items():
            out.set_regions(provider, regions)
        by_type: Dict[str, List[InferredAnnotation]] = defaultdict(list)
        for ann in report.annotations:
            by_type[ann.rtype].append(ann)

        for rtype in registry.known_types():
            spec = registry.spec_for(rtype)
            assert spec is not None
            new_attrs = dict(spec.attributes)
            for ann in by_type.get(rtype, []):
                existing = new_attrs.get(ann.attr)
                if existing is None:
                    new_attrs[ann.attr] = AttributeSpec(
                        ann.attr,
                        type="list" if ann.semantic.startswith("ref_list") else "string",
                        semantic=ann.semantic,
                    )
                elif not existing.semantic:
                    new_attrs[ann.attr] = dataclasses.replace(
                        existing, semantic=ann.semantic
                    )
            out.register(dataclasses.replace(spec, attributes=new_attrs))

        # brand-new resource types witnessed only in the corpus
        for rtype, anns in sorted(by_type.items()):
            if registry.spec_for(rtype) is not None:
                continue
            attrs = {
                ann.attr: AttributeSpec(
                    ann.attr,
                    type="list" if ann.semantic.startswith("ref_list") else "string",
                    semantic=ann.semantic,
                )
                for ann in anns
            }
            attrs["id"] = AttributeSpec("id", computed=True)
            out.register(
                ResourceTypeSpec(
                    name=rtype,
                    provider=rtype.split("_", 1)[0],
                    attributes=attrs,
                    latency=_default_latency(),
                    id_prefix=f"{rtype[:3]}-",
                    description="learned from usage corpus",
                )
            )
        return out


def _default_latency():
    from ..cloud.latency import DEFAULT_PROFILE

    return DEFAULT_PROFILE
