"""Semantic types for IaC values (3.2).

Today's IaC treats most attributes as plain strings; "one string may
specifically represent a virtual machine and another specifically a
subnet". A :class:`SemanticType` recovers that meaning so the checker
can reject a VM wired to a VPC id where a subnet id belongs -- at
compile time instead of minutes into a deployment.
"""

from __future__ import annotations

import dataclasses
import ipaddress
from typing import Any, Optional


@dataclasses.dataclass(frozen=True)
class SemanticType:
    """The meaning of a value, beyond its base type.

    ``kind`` is one of:

    * ``any`` -- nothing known
    * ``plain`` -- an ordinary value of ``base`` type
    * ``resource_id`` -- the id of a resource of type ``detail``
    * ``cidr`` -- a network prefix
    * ``region`` -- a provider region/location name
    * ``password`` -- secret material
    * ``enum`` -- closed vocabulary, values in ``detail`` ("a|b|c")
    """

    kind: str
    detail: str = ""
    base: str = "string"

    def __str__(self) -> str:
        if self.detail:
            return f"{self.kind}<{self.detail}>"
        return self.kind


ANY = SemanticType("any")


def expected_semantic(attr_spec: Any) -> SemanticType:
    """The semantic type an attribute *expects*, from its cloud schema."""
    semantic = getattr(attr_spec, "semantic", "") or ""
    base = getattr(attr_spec, "type", "string")
    if semantic.startswith("ref:"):
        return SemanticType("resource_id", semantic[4:], base)
    if semantic.startswith("ref_list:"):
        return SemanticType("resource_id", semantic[9:], base)
    if semantic in ("cidr", "cidr_list"):
        return SemanticType("cidr", base=base)
    if semantic == "region":
        return SemanticType("region", base=base)
    if semantic == "password":
        return SemanticType("password", base=base)
    if semantic.startswith("enum:"):
        return SemanticType("enum", semantic[5:], base)
    return SemanticType("plain", base=base)


def produced_by_attr(rtype: str, attr_name: str, attr_spec: Any) -> SemanticType:
    """The semantic type a traversal like ``T.N.<attr>`` produces."""
    if attr_name == "id":
        return SemanticType("resource_id", rtype)
    if attr_spec is None:
        return ANY
    return expected_semantic(attr_spec)


def literal_semantic(value: Any) -> SemanticType:
    """Best-effort semantic classification of a literal value."""
    if isinstance(value, bool):
        return SemanticType("plain", base="bool")
    if isinstance(value, (int, float)):
        return SemanticType("plain", base="number")
    if isinstance(value, list):
        return SemanticType("plain", base="list")
    if isinstance(value, dict):
        return SemanticType("plain", base="map")
    if isinstance(value, str):
        if _looks_like_cidr(value):
            return SemanticType("cidr")
        return SemanticType("plain", base="string")
    return ANY


def _looks_like_cidr(value: str) -> bool:
    if "/" not in value:
        return False
    try:
        ipaddress.ip_network(value, strict=False)
        return True
    except ValueError:
        return False


def compatible(expected: SemanticType, produced: SemanticType) -> bool:
    """Could a ``produced`` value legally flow into an ``expected`` slot?

    Conservative: only *provable* mismatches return False, so the
    checker never rejects a valid configuration.
    """
    if expected.kind in ("any", "plain") or produced.kind == "any":
        return True
    if expected.kind == "resource_id":
        if produced.kind == "resource_id":
            return expected.detail == produced.detail
        # a plain string could be a hand-written id; allow
        return produced.kind == "plain" and produced.base == "string"
    if expected.kind == "cidr":
        return produced.kind in ("cidr", "plain")
    if expected.kind == "region":
        return produced.kind in ("region", "plain")
    if expected.kind == "enum":
        return produced.kind in ("enum", "plain")
    if expected.kind == "password":
        return produced.kind in ("password", "plain")
    return True
