"""Semantic type system for IaC values (paper 3.2)."""

from .checker import TypeChecker, check_types
from .inference import (
    InferenceReport,
    InferredAnnotation,
    Observation,
    SemanticInferencer,
)
from .schema import SchemaRegistry
from .semantic import (
    ANY,
    SemanticType,
    compatible,
    expected_semantic,
    literal_semantic,
    produced_by_attr,
)

__all__ = [
    "ANY",
    "InferenceReport",
    "InferredAnnotation",
    "Observation",
    "SchemaRegistry",
    "SemanticInferencer",
    "SemanticType",
    "TypeChecker",
    "check_types",
    "compatible",
    "expected_semantic",
    "literal_semantic",
    "produced_by_attr",
]
