"""Schema registry: the IaC-level knowledge base of resource types.

Aggregates per-provider catalogs into one lookup surface for semantic
validation. The paper proposes deriving and *updating* this knowledge
base from documentation and examples as clouds evolve (3.2);
:mod:`repro.types.inference` feeds learned entries into the same
registry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..cloud.resources import AttributeSpec, ResourceTypeSpec
from .semantic import SemanticType, expected_semantic, produced_by_attr


class SchemaRegistry:
    """Maps resource types to their attribute schemas and semantics."""

    def __init__(self, specs: Optional[Iterable[ResourceTypeSpec]] = None):
        self._specs: Dict[str, ResourceTypeSpec] = {}
        self._regions: Dict[str, List[str]] = {}
        for spec in specs or []:
            self.register(spec)

    @classmethod
    def default(cls) -> "SchemaRegistry":
        """Registry preloaded with both simulated provider catalogs."""
        from ..cloud.aws.provider import AWS_REGIONS, aws_catalog
        from ..cloud.azure.provider import AZURE_LOCATIONS, azure_catalog

        registry = cls()
        for spec in aws_catalog():
            registry.register(spec)
        for spec in azure_catalog():
            registry.register(spec)
        registry.set_regions("aws", AWS_REGIONS)
        registry.set_regions("azure", AZURE_LOCATIONS)
        return registry

    # -- registration ------------------------------------------------------

    def register(self, spec: ResourceTypeSpec) -> None:
        self._specs[spec.name] = spec

    def set_regions(self, provider: str, regions: List[str]) -> None:
        self._regions[provider] = list(regions)

    # -- lookups --------------------------------------------------------------

    def spec_for(self, rtype: str) -> Optional[ResourceTypeSpec]:
        return self._specs.get(rtype)

    def known_types(self) -> List[str]:
        return sorted(self._specs)

    def attr_spec(self, rtype: str, attr: str) -> Optional[AttributeSpec]:
        spec = self._specs.get(rtype)
        return spec.attr(attr) if spec else None

    def provider_of(self, rtype: str) -> str:
        spec = self._specs.get(rtype)
        if spec is not None:
            return spec.provider
        return rtype.split("_", 1)[0]

    def regions_of(self, provider: str) -> List[str]:
        return list(self._regions.get(provider, []))

    # -- semantic helpers ----------------------------------------------------------

    def expected(self, rtype: str, attr: str) -> SemanticType:
        aspec = self.attr_spec(rtype, attr)
        if aspec is None:
            return SemanticType("any")
        return expected_semantic(aspec)

    def produced(self, rtype: str, attr: str) -> SemanticType:
        return produced_by_attr(rtype, attr, self.attr_spec(rtype, attr))
