"""Concurrent update coordination (3.4).

Multiple DevOps teams submit updates against one shared infrastructure.
The coordinator arbitrates through a :class:`LockManager` -- the global
lock models today's Terraform state locking; per-resource locks are the
cloudless design -- executes each update's mutations inside a
transaction, and records the wait/makespan statistics E3 reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Set

from ..cloud.base import CloudAPIError
from ..cloud.clock import EventQueue, SimClock
from ..cloud.resilience import ResilientGateway, RetryPolicy
from ..state.document import StateDocument
from ..state.locks import LockManager
from ..state.transactions import (
    SerializabilityChecker,
    StateDatabase,
    StateTransaction,
)


@dataclasses.dataclass
class UpdateRequest:
    """One team's update batch.

    ``keys`` is the set of state addresses the update touches (its lock
    set); ``duration_s`` is how long the cloud-side work takes once the
    locks are held; ``mutate`` applies the logical state change inside
    the transaction when the work completes. ``cloud_ops``, when set,
    performs the update's real cloud mutations through the
    coordinator's resilient gateway at completion time (retried on
    transient faults); if it still fails, ``mutate`` is skipped so
    state never records work the cloud rejected.
    """

    team: str
    submitted_at: float
    keys: Set[str]
    duration_s: float
    mutate: Optional[Callable[[StateTransaction], None]] = None
    cloud_ops: Optional[Callable[[Any], None]] = None


@dataclasses.dataclass
class UpdateOutcome:
    """Timing record for one completed update."""

    team: str
    submitted_at: float
    acquired_at: float
    completed_at: float
    conflicts_seen: int

    @property
    def wait_s(self) -> float:
        return self.acquired_at - self.submitted_at

    @property
    def total_s(self) -> float:
        return self.completed_at - self.submitted_at


@dataclasses.dataclass
class CoordinationResult:
    """Aggregate outcome of a concurrent-update run."""

    outcomes: List[UpdateOutcome]
    makespan_s: float
    serializable: bool
    #: cloud-side failures ("team: error"); the matching logical mutate
    #: was skipped, so state and cloud stay consistent
    errors: List[str] = dataclasses.field(default_factory=list)

    @property
    def mean_wait_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.wait_s for o in self.outcomes) / len(self.outcomes)

    @property
    def max_wait_s(self) -> float:
        return max((o.wait_s for o in self.outcomes), default=0.0)

    @property
    def throughput_per_hour(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return len(self.outcomes) / (self.makespan_s / 3600.0)


#: waiting-queue orderings (paper 3.4: "different lock scheduling
#: strategies can be developed for different update goals")
SCHEDULING_POLICIES = ("fifo", "shortest-job", "fewest-locks")


class UpdateCoordinator:
    """Discrete-event scheduler for concurrent update requests.

    ``scheduling`` orders the waiting queue each time locks free up:

    * ``fifo`` -- fairness: first blocked, first admitted;
    * ``shortest-job`` -- minimize mean wait: cheapest update first;
    * ``fewest-locks`` -- maximize parallelism: narrowest lock set first.
    """

    def __init__(
        self,
        state: StateDocument,
        lock_manager: LockManager,
        clock: Optional[SimClock] = None,
        scheduling: str = "fifo",
        gateway: Optional[Any] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if scheduling not in SCHEDULING_POLICIES:
            raise ValueError(
                f"scheduling must be one of {SCHEDULING_POLICIES}"
            )
        self.gateway = (
            ResilientGateway.wrap(gateway, retry=retry)
            if gateway is not None
            else None
        )
        self.clock = clock or (
            self.gateway.clock if self.gateway is not None else SimClock()
        )
        self.scheduling = scheduling
        self.database = StateDatabase(state, lock_manager)

    def _order_waiting(self, waiting: List[UpdateRequest]) -> List[UpdateRequest]:
        if self.scheduling == "shortest-job":
            return sorted(waiting, key=lambda r: (r.duration_s, r.submitted_at))
        if self.scheduling == "fewest-locks":
            return sorted(waiting, key=lambda r: (len(r.keys), r.submitted_at))
        return waiting  # fifo: preserve arrival order

    def run(self, requests: List[UpdateRequest]) -> CoordinationResult:
        """Execute every request to completion, honouring lock conflicts."""
        if self.gateway is None and any(r.cloud_ops for r in requests):
            raise ValueError(
                "requests carry cloud_ops but the coordinator has no gateway"
            )
        events = EventQueue(self.clock)
        for request in requests:
            events.schedule(request.submitted_at, ("submit", request))
        waiting: List[UpdateRequest] = []
        errors: List[str] = []
        conflicts: Dict[str, int] = {r.team: 0 for r in requests}
        active: Dict[str, tuple] = {}  # team -> (request, txn, acquired_at)
        outcomes: List[UpdateOutcome] = []
        start = self.clock.now

        def try_start(request: UpdateRequest) -> bool:
            txn = self.database.begin(request.team, request.keys, self.clock.now)
            if txn is None:
                conflicts[request.team] += 1
                return False
            active[request.team] = (request, txn, self.clock.now)
            events.schedule(
                self.clock.now + request.duration_s, ("complete", request.team)
            )
            return True

        while events:
            popped = events.pop()
            assert popped is not None
            _, (kind, payload) = popped
            if kind == "submit":
                request = payload
                if not try_start(request):
                    waiting.append(request)
            elif kind == "complete":
                team = payload
                request, txn, acquired_at = active.pop(team)
                cloud_failed = False
                if request.cloud_ops is not None:
                    # the real cloud work, behind the resilience layer;
                    # retry backoff advances the shared clock, so the
                    # outcome's completion time includes it
                    try:
                        request.cloud_ops(self.gateway)
                    except CloudAPIError as exc:
                        cloud_failed = True
                        errors.append(f"{team}: {exc}")
                if request.mutate is not None and not cloud_failed:
                    request.mutate(txn)
                txn.commit(self.clock.now)
                outcomes.append(
                    UpdateOutcome(
                        team=team,
                        submitted_at=request.submitted_at,
                        acquired_at=acquired_at,
                        completed_at=self.clock.now,
                        conflicts_seen=conflicts[team],
                    )
                )
                # a release may unblock waiters; admit per the
                # configured scheduling policy
                still_waiting: List[UpdateRequest] = []
                for waiter in self._order_waiting(waiting):
                    if not try_start(waiter):
                        still_waiting.append(waiter)
                waiting = still_waiting
        serializable = SerializabilityChecker.is_serializable(
            self.database.history
        )
        return CoordinationResult(
            outcomes=sorted(outcomes, key=lambda o: o.team),
            makespan_s=self.clock.now - start,
            serializable=serializable,
            errors=errors,
        )
