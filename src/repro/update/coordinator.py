"""Concurrent update coordination (3.4).

Multiple DevOps teams submit updates against one shared infrastructure.
The coordinator arbitrates through a :class:`LockManager` -- the global
lock models today's Terraform state locking; per-resource locks are the
cloudless design -- executes each update's mutations inside a
transaction, and records the wait/makespan statistics E3 reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Set

from ..cloud.base import CloudAPIError, WRITE_OPS
from ..cloud.clock import EventQueue, SimClock
from ..cloud.resilience import HealthMonitor, ResilientGateway, RetryPolicy
from ..state.document import StateDocument
from ..state.locks import LockManager
from ..state.transactions import (
    SerializabilityChecker,
    StaleLeaseError,
    StateDatabase,
    StateTransaction,
)


class FencedGateway:
    """A gateway proxy that applies lease fencing to every mutating call.

    The distributed-systems pattern: the *storage side* checks the
    fencing token, not the client's own belief about its lease. A team
    whose lease expired mid-update (a "zombie") still thinks it holds
    the locks; its writes arrive here carrying a stale token and are
    rejected with HTTP 412 before they can clobber the new holder's
    work. Reads pass through unchecked.
    """

    def __init__(
        self,
        gateway: Any,
        locks: LockManager,
        holder: str,
        fencing_token: int,
        clock: SimClock,
    ):
        self._gateway = gateway
        self._locks = locks
        self._holder = holder
        self._token = fencing_token
        self._clock = clock

    def _check(self, operation: str) -> None:
        if operation not in WRITE_OPS:
            return
        if not self._locks.check_fence(
            self._holder, self._token, self._clock.now
        ):
            raise CloudAPIError(
                "StaleLeaseFence",
                f"Lock lease for '{self._holder}' has expired; fencing "
                f"token {self._token} is stale. The mutation was rejected "
                f"to protect the current lease holder.",
                http_status=412,
                operation=operation,
            )

    def execute(self, operation: str, rtype: str = "", **kwargs: Any) -> Any:
        self._check(operation)
        return self._gateway.execute(operation, rtype, **kwargs)

    def submit(self, operation: str, rtype: str = "", **kwargs: Any) -> Any:
        self._check(operation)
        return self._gateway.submit(operation, rtype, **kwargs)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._gateway, name)


@dataclasses.dataclass
class UpdateRequest:
    """One team's update batch.

    ``keys`` is the set of state addresses the update touches (its lock
    set); ``duration_s`` is how long the cloud-side work takes once the
    locks are held; ``mutate`` applies the logical state change inside
    the transaction when the work completes. ``cloud_ops``, when set,
    performs the update's real cloud mutations through the
    coordinator's resilient gateway at completion time (retried on
    transient faults); if it still fails, ``mutate`` is skipped so
    state never records work the cloud rejected.
    """

    team: str
    submitted_at: float
    keys: Set[str]
    duration_s: float
    mutate: Optional[Callable[[StateTransaction], None]] = None
    cloud_ops: Optional[Callable[[Any], None]] = None
    #: chaos knob: the operator process dies right after acquiring its
    #: locks -- it never completes, never heartbeats, and (with leases
    #: enabled) its grant expires instead of deadlocking everyone else
    crashes: bool = False
    #: (provider, region) partitions the update's cloud work targets.
    #: When any of them is dark (status-page outage or open breaker),
    #: the coordinator defers admission until the partition is expected
    #: back instead of letting the team burn its lock window on fast-
    #: fails. Empty set = partition-agnostic (historical behaviour).
    partitions: Set[tuple] = dataclasses.field(default_factory=set)


@dataclasses.dataclass
class UpdateOutcome:
    """Timing record for one completed update."""

    team: str
    submitted_at: float
    acquired_at: float
    completed_at: float
    conflicts_seen: int

    @property
    def wait_s(self) -> float:
        return self.acquired_at - self.submitted_at

    @property
    def total_s(self) -> float:
        return self.completed_at - self.submitted_at


@dataclasses.dataclass
class CoordinationResult:
    """Aggregate outcome of a concurrent-update run."""

    outcomes: List[UpdateOutcome]
    makespan_s: float
    serializable: bool
    #: cloud-side failures ("team: error"); the matching logical mutate
    #: was skipped, so state and cloud stay consistent
    errors: List[str] = dataclasses.field(default_factory=list)
    #: outage deferrals ("team: partition ... deferred to t=...s") --
    #: admission pushed past a dark partition's expected recovery
    deferrals: List[str] = dataclasses.field(default_factory=list)

    @property
    def mean_wait_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.wait_s for o in self.outcomes) / len(self.outcomes)

    @property
    def max_wait_s(self) -> float:
        return max((o.wait_s for o in self.outcomes), default=0.0)

    @property
    def throughput_per_hour(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return len(self.outcomes) / (self.makespan_s / 3600.0)


#: waiting-queue orderings (paper 3.4: "different lock scheduling
#: strategies can be developed for different update goals")
SCHEDULING_POLICIES = ("fifo", "shortest-job", "fewest-locks")


class UpdateCoordinator:
    """Discrete-event scheduler for concurrent update requests.

    ``scheduling`` orders the waiting queue each time locks free up:

    * ``fifo`` -- fairness: first blocked, first admitted;
    * ``shortest-job`` -- minimize mean wait: cheapest update first;
    * ``fewest-locks`` -- maximize parallelism: narrowest lock set first.
    """

    def __init__(
        self,
        state: StateDocument,
        lock_manager: LockManager,
        clock: Optional[SimClock] = None,
        scheduling: str = "fifo",
        gateway: Optional[Any] = None,
        retry: Optional[RetryPolicy] = None,
        lease_ttl: Optional[float] = None,
        heartbeat_every: Optional[float] = None,
        health: Optional[HealthMonitor] = None,
    ):
        if scheduling not in SCHEDULING_POLICIES:
            raise ValueError(
                f"scheduling must be one of {SCHEDULING_POLICIES}"
            )
        self.gateway = (
            ResilientGateway.wrap(gateway, retry=retry, health=health)
            if gateway is not None
            else None
        )
        self.health = (
            self.gateway.health if self.gateway is not None else health
        )
        self.clock = clock or (
            self.gateway.clock if self.gateway is not None else SimClock()
        )
        self.scheduling = scheduling
        #: leases off (None) keeps the historical event stream exactly:
        #: no heartbeat events, no expiry events, no fencing
        self.lease_ttl = lease_ttl
        self.heartbeat_every = heartbeat_every or (
            lease_ttl / 3.0 if lease_ttl else None
        )
        self.database = StateDatabase(state, lock_manager, lease_ttl=lease_ttl)

    def _dark_until(self, request: UpdateRequest) -> Optional[float]:
        """When every partition the request targets is expected back,
        or None if all of them are reachable right now.

        Two darkness sources, best horizon wins: the provider status
        page (an active hard outage knows its end time) and the circuit
        breakers (an open breaker knows its next probe time).
        """
        now = self.clock.now
        resume_at: Optional[float] = None
        for provider, region in sorted(request.partitions):
            candidates: List[float] = []
            if self.gateway is not None:
                horizon = self.gateway.partition_dark(provider, region, now)
                if horizon is not None:
                    candidates.append(horizon)
            if self.health is not None and self.health.blocked(
                provider, region, now
            ):
                probe_at = self.health.next_probe_at(provider, region)
                if probe_at is not None:
                    candidates.append(probe_at)
            for at in candidates:
                resume_at = at if resume_at is None else max(resume_at, at)
        if resume_at is None:
            return None
        # strictly in the future: an outage's horizon is its end time
        # (> now while active) and a blocked breaker's probe is > now,
        # but guard against degenerate specs so deferral cannot spin
        return max(resume_at, now + 1.0)

    def _order_waiting(self, waiting: List[UpdateRequest]) -> List[UpdateRequest]:
        if self.scheduling == "shortest-job":
            return sorted(waiting, key=lambda r: (r.duration_s, r.submitted_at))
        if self.scheduling == "fewest-locks":
            return sorted(waiting, key=lambda r: (len(r.keys), r.submitted_at))
        return waiting  # fifo: preserve arrival order

    def run(self, requests: List[UpdateRequest]) -> CoordinationResult:
        """Execute every request to completion, honouring lock conflicts."""
        if self.gateway is None and any(r.cloud_ops for r in requests):
            raise ValueError(
                "requests carry cloud_ops but the coordinator has no gateway"
            )
        events = EventQueue(self.clock)
        for request in requests:
            events.schedule(request.submitted_at, ("submit", request))
        waiting: List[UpdateRequest] = []
        errors: List[str] = []
        deferrals: List[str] = []
        conflicts: Dict[str, int] = {r.team: 0 for r in requests}
        active: Dict[str, tuple] = {}  # team -> (request, txn, acquired_at)
        outcomes: List[UpdateOutcome] = []
        start = self.clock.now

        def try_start(request: UpdateRequest) -> bool:
            resume_at = self._dark_until(request)
            if resume_at is not None:
                # the update targets a dark partition: re-submit when it
                # is expected back rather than holding locks against a
                # wall of fast-fails (returns True: the request is
                # scheduled, not queued on locks)
                events.schedule(resume_at, ("submit", request))
                deferrals.append(
                    f"{request.team}: partition dark at t={self.clock.now:.0f}s; "
                    f"deferred to t={resume_at:.0f}s"
                )
                return True
            txn = self.database.begin(request.team, request.keys, self.clock.now)
            if txn is None:
                conflicts[request.team] += 1
                return False
            active[request.team] = (request, txn, self.clock.now)
            if request.crashes:
                # the operator dies here: no completion, no heartbeats.
                # With leases the grant lapses on its own; the expiry
                # event is when the coordinator notices and re-admits
                # waiters. Without leases the keys stay locked forever
                # (the Terraform force-unlock failure mode).
                if self.lease_ttl is not None:
                    events.schedule(
                        self.clock.now + self.lease_ttl,
                        ("lease-expiry", request.team),
                    )
                return True
            events.schedule(
                self.clock.now + request.duration_s, ("complete", request.team)
            )
            if self.heartbeat_every is not None:
                events.schedule(
                    self.clock.now + self.heartbeat_every,
                    ("renew", request.team),
                )
            return True

        def admit_waiters() -> None:
            # a release may unblock waiters; admit per the configured
            # scheduling policy
            nonlocal waiting
            still_waiting: List[UpdateRequest] = []
            for waiter in self._order_waiting(waiting):
                if not try_start(waiter):
                    still_waiting.append(waiter)
            waiting = still_waiting

        while events:
            popped = events.pop()
            assert popped is not None
            _, (kind, payload) = popped
            if kind == "submit":
                request = payload
                if not try_start(request):
                    waiting.append(request)
            elif kind == "renew":
                team = payload
                if team in active and self.heartbeat_every is not None:
                    self.database.renew(team, self.clock.now)
                    events.schedule(
                        self.clock.now + self.heartbeat_every, ("renew", team)
                    )
            elif kind == "lease-expiry":
                team = payload
                entry = active.pop(team, None)
                if entry is None:
                    continue
                request, txn, acquired_at = entry
                # the grant already lapsed; abort releases nothing but
                # cleans up the transaction bookkeeping
                txn.abort()
                errors.append(
                    f"{team}: operator crashed while holding locks; lease "
                    f"expired after {self.lease_ttl}s and waiters proceed"
                )
                admit_waiters()
            elif kind == "complete":
                team = payload
                request, txn, acquired_at = active.pop(team)
                cloud_failed = False
                if request.cloud_ops is not None:
                    # the real cloud work, behind the resilience layer;
                    # retry backoff advances the shared clock, so the
                    # outcome's completion time includes it. With leases
                    # on, writes also pass the fencing check.
                    cloud_gateway = self.gateway
                    if self.lease_ttl is not None and txn.grant is not None:
                        cloud_gateway = FencedGateway(
                            self.gateway,
                            self.database.locks,
                            team,
                            txn.grant.fencing_token,
                            self.clock,
                        )
                    try:
                        request.cloud_ops(cloud_gateway)
                    except CloudAPIError as exc:
                        cloud_failed = True
                        errors.append(f"{team}: {exc}")
                if request.mutate is not None and not cloud_failed:
                    request.mutate(txn)
                try:
                    txn.commit(self.clock.now)
                except StaleLeaseError as exc:
                    errors.append(f"{team}: {exc}")
                else:
                    outcomes.append(
                        UpdateOutcome(
                            team=team,
                            submitted_at=request.submitted_at,
                            acquired_at=acquired_at,
                            completed_at=self.clock.now,
                            conflicts_seen=conflicts[team],
                        )
                    )
                admit_waiters()
        # anything still waiting or active is stranded: a crashed holder
        # without a lease keeps its keys forever (the force-unlock
        # failure mode), so the run ends with the estate deadlocked
        for team in sorted(active):
            errors.append(
                f"{team}: operator crashed while holding locks and no "
                f"lease was configured; locks are held forever"
            )
        for request in waiting:
            holders = self.database.locks.holders()
            errors.append(
                f"{request.team}: deadlocked waiting on locks held by "
                f"{holders} when the run ended"
            )
        serializable = SerializabilityChecker.is_serializable(
            self.database.history
        )
        return CoordinationResult(
            outcomes=sorted(outcomes, key=lambda o: o.team),
            makespan_s=self.clock.now - start,
            serializable=serializable,
            errors=errors,
            deferrals=deferrals,
        )
