"""Rollback planning (3.4).

"Simply applying a previous configuration doesn't always roll back the
infrastructure to its intended previous state." Two planners:

* :class:`NaiveRollback` -- today's practice: diff the *state file*
  against the target snapshot and re-apply. Blind to out-of-band
  modifications (shadow attributes a VM picked up from a script) and to
  attributes the cloud cannot change in place.
* :class:`ReversibilityAwareRollback` -- the cloudless design: reads the
  *actual cloud records*, classifies every divergence as reversible
  in-place (update) or irreversible (destroy + recreate), cascades
  replacements through dependents, and executes in phases (update ->
  destroy dependents-first -> recreate dependencies-first with id
  remapping) so the estate provably converges.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, List, Optional, Set, Tuple

from ..addressing import ResourceAddress
from ..cloud.base import CloudAPIError
from ..cloud.gateway import CloudGateway
from ..cloud.resilience import ResilientGateway, RetryPolicy
from ..state.document import ResourceState, StateDocument
from ..state.snapshots import Snapshot


class RollbackKind(enum.Enum):
    UPDATE = "update"  # in-place attribute reset
    REPLACE = "replace"  # destroy + recreate (irreversible divergence)
    RECREATE = "recreate"  # resource vanished; create it again
    DELETE = "delete"  # resource did not exist at the snapshot

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass
class RollbackAction:
    address: ResourceAddress
    kind: RollbackKind
    reasons: List[str]
    target_attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    dependencies: List[str] = dataclasses.field(default_factory=list)
    cascaded: bool = False


@dataclasses.dataclass
class RollbackPlan:
    actions: List[RollbackAction]

    def count(self, kind: RollbackKind) -> int:
        return sum(1 for a in self.actions if a.kind is kind)

    @property
    def redeployments(self) -> int:
        """Resources that must be destroyed and rebuilt."""
        return self.count(RollbackKind.REPLACE) + self.count(RollbackKind.RECREATE)

    def __len__(self) -> int:
        return len(self.actions)


@dataclasses.dataclass
class RollbackResult:
    plan: RollbackPlan
    state: StateDocument
    duration_s: float
    api_calls: int
    errors: List[str]
    #: addresses whose rebuild is unfinished (destroy failed, or destroy
    #: landed but the recreate did not) -- state is checkpointed after
    #: each successful cloud call, so re-planning against the same
    #: snapshot resumes exactly this work
    remainder: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def _remap_ids(value: Any, remap: Dict[str, str]) -> Any:
    """Rewrite old resource ids to their replacements, recursively."""
    if isinstance(value, str):
        return remap.get(value, value)
    if isinstance(value, list):
        return [_remap_ids(v, remap) for v in value]
    if isinstance(value, dict):
        return {k: _remap_ids(v, remap) for k, v in value.items()}
    return value


def _configurable_diff(
    gateway: CloudGateway,
    rtype: str,
    live_attrs: Dict[str, Any],
    target_attrs: Dict[str, Any],
) -> Tuple[Dict[str, Any], List[str], List[str]]:
    """Split live-vs-target divergence into (updates, immutable, shadow)."""
    spec = gateway.try_spec(rtype)
    updates: Dict[str, Any] = {}
    immutable: List[str] = []
    shadow: List[str] = []
    keys = set(live_attrs) | set(target_attrs)
    for key in sorted(keys):
        live = live_attrs.get(key)
        want = target_attrs.get(key)
        if live == want:
            continue
        if spec is not None:
            aspec = spec.attr(key)
            if aspec is None:
                # the cloud holds an attribute IaC cannot even express:
                # an out-of-band (shadow) modification
                shadow.append(key)
                continue
            if aspec.computed:
                continue
            if key in spec.immutable_attrs or aspec.forces_replacement:
                immutable.append(key)
                continue
        if want is None:
            shadow.append(key)
            continue
        updates[key] = want
    return updates, immutable, shadow


class ReversibilityAwareRollback:
    """The cloudless rollback planner + phased executor.

    All cloud calls route through the resilience layer (retry with
    backoff on transient/throttled faults); the phased executor
    checkpoints state after every successful call so a terminal
    mid-sequence fault leaves a precise resumable remainder instead of
    silent corruption.
    """

    def __init__(
        self, gateway: CloudGateway, retry: Optional[RetryPolicy] = None
    ):
        self.gateway = ResilientGateway.wrap(gateway, retry=retry)

    # -- planning --------------------------------------------------------------

    def plan(
        self, snapshot: Snapshot, current_state: StateDocument
    ) -> RollbackPlan:
        actions: List[RollbackAction] = []
        target = snapshot.state
        target_addrs = {str(a) for a in target.addresses()}
        for entry in target.resources():
            current = current_state.get(entry.address)
            live = (
                self.gateway.find_record(current.resource_id)
                if current is not None
                else None
            )
            if live is None:
                actions.append(
                    RollbackAction(
                        address=entry.address,
                        kind=RollbackKind.RECREATE,
                        reasons=["resource no longer exists in the cloud"],
                        target_attrs=dict(entry.attrs),
                        dependencies=list(entry.dependencies),
                    )
                )
                continue
            updates, immutable, shadow = _configurable_diff(
                self.gateway, entry.address.type, live.snapshot(), entry.attrs
            )
            if immutable or shadow:
                reasons = [
                    f"immutable attribute {name!r} diverged" for name in immutable
                ] + [
                    f"out-of-band modification {name!r} cannot be reverted "
                    f"in place"
                    for name in shadow
                ]
                actions.append(
                    RollbackAction(
                        address=entry.address,
                        kind=RollbackKind.REPLACE,
                        reasons=reasons,
                        target_attrs=dict(entry.attrs),
                        dependencies=list(entry.dependencies),
                    )
                )
            elif updates:
                actions.append(
                    RollbackAction(
                        address=entry.address,
                        kind=RollbackKind.UPDATE,
                        reasons=[f"attribute {n!r} diverged" for n in updates],
                        target_attrs=updates,
                        dependencies=list(entry.dependencies),
                    )
                )
        for entry in current_state.resources():
            if str(entry.address) not in target_addrs:
                actions.append(
                    RollbackAction(
                        address=entry.address,
                        kind=RollbackKind.DELETE,
                        reasons=["resource did not exist at the snapshot"],
                        dependencies=list(entry.dependencies),
                    )
                )
        actions = self._with_cascades(actions, snapshot, current_state)
        return RollbackPlan(actions=sorted(actions, key=lambda a: str(a.address)))

    def _with_cascades(
        self,
        actions: List[RollbackAction],
        snapshot: Snapshot,
        current_state: StateDocument,
    ) -> List[RollbackAction]:
        """Replacing X forces replacing everything that references X."""
        by_addr = {str(a.address): a for a in actions}
        dependents: Dict[str, List[ResourceState]] = {}
        for entry in current_state.resources():
            for dep in entry.dependencies:
                dependents.setdefault(dep, []).append(entry)

        frontier = [
            str(a.address)
            for a in actions
            if a.kind in (RollbackKind.REPLACE, RollbackKind.RECREATE)
        ]
        while frontier:
            addr = frontier.pop()
            for entry in dependents.get(addr, []):
                dep_addr = str(entry.address)
                existing = by_addr.get(dep_addr)
                if existing is not None and existing.kind in (
                    RollbackKind.REPLACE,
                    RollbackKind.RECREATE,
                    RollbackKind.DELETE,
                ):
                    continue
                target_entry = snapshot.state.get(entry.address)
                target_attrs = dict(
                    target_entry.attrs if target_entry else entry.attrs
                )
                action = RollbackAction(
                    address=entry.address,
                    kind=RollbackKind.REPLACE,
                    reasons=[f"depends on replaced resource {addr}"],
                    target_attrs=target_attrs,
                    dependencies=list(entry.dependencies),
                    cascaded=True,
                )
                by_addr[dep_addr] = action
                frontier.append(dep_addr)
        return list(by_addr.values())

    # -- execution -----------------------------------------------------------------

    def execute(
        self, plan: RollbackPlan, current_state: StateDocument
    ) -> RollbackResult:
        gateway = self.gateway
        started = gateway.clock.now
        calls_before = gateway.total_api_calls()
        errors: List[str] = []
        remainder: List[str] = []
        remap: Dict[str, str] = {}

        replaced_addrs = {
            str(a.address)
            for a in plan.actions
            if a.kind in (RollbackKind.REPLACE, RollbackKind.RECREATE)
        }
        updates = [
            a
            for a in plan.actions
            if a.kind is RollbackKind.UPDATE
            and str(a.address) not in replaced_addrs
        ]
        deletes = [a for a in plan.actions if a.kind is RollbackKind.DELETE]
        rebuilds = [
            a
            for a in plan.actions
            if a.kind in (RollbackKind.REPLACE, RollbackKind.RECREATE)
        ]

        # phase A: in-place resets (also drops references to resources
        # about to be deleted, e.g. an LB shedding extra VMs)
        for action in updates:
            entry = current_state.get(action.address)
            if entry is None:
                continue
            payload = {
                k: v
                for k, v in action.target_attrs.items()
                if v is not None and k != "id" and self._settable(action, k)
            }
            try:
                response = gateway.execute(
                    "update",
                    action.address.type,
                    resource_id=entry.resource_id,
                    attrs=payload,
                )
                current_state.set(
                    entry.replace(
                        attrs=dict(response), updated_at=gateway.clock.now
                    )
                )
            except CloudAPIError as exc:
                errors.append(f"{action.address}: {exc}")

        # phase B: destroy -- deletes + the destroy half of replaces,
        # dependents before their dependencies. After each successful
        # destroy the state entry is checkpointed (resource id cleared)
        # so a later fault can never strand a dead id in golden state;
        # destroys that *fail* are remembered so phase C skips their
        # rebuild instead of creating a duplicate twin.
        destroy = deletes + [
            a for a in rebuilds if current_state.get(a.address) is not None
        ]
        failed_destroys: Set[str] = set()
        destroyed_ids: Dict[str, str] = {}  # address -> pre-destroy live id
        for action in _dependents_first(destroy):
            entry = current_state.get(action.address)
            if entry is None:
                continue
            if gateway.find_record(entry.resource_id) is None:
                if action.kind is RollbackKind.DELETE:
                    current_state.remove(action.address)
                continue
            try:
                gateway.execute(
                    "delete", action.address.type, resource_id=entry.resource_id
                )
                if action.kind is RollbackKind.DELETE:
                    current_state.remove(action.address)
                else:
                    destroyed_ids[str(action.address)] = entry.resource_id
                    # checkpoint: old resource gone
                    current_state.set(entry.replace(resource_id=""))
                    current_state.bump()
            except CloudAPIError as exc:
                errors.append(f"{action.address}: {exc}")
                if action.kind is not RollbackKind.DELETE:
                    failed_destroys.add(str(action.address))

        # phase C: recreate -- dependencies before dependents, rewriting
        # references to replaced resources as we learn their new ids
        for action in _dependencies_first(rebuilds):
            rtype = action.address.type
            addr = str(action.address)
            if addr in failed_destroys:
                # the old resource is still live; recreating now would
                # put two resources under one address
                errors.append(
                    f"{action.address}: recreate skipped -- destroy half "
                    f"failed; resolve and re-run rollback"
                )
                remainder.append(addr)
                continue
            entry = current_state.get(action.address)
            old_id = (
                action.target_attrs.get("id")
                or destroyed_ids.get(addr)
                or (entry.resource_id if entry else "")
            )
            payload = {
                k: _remap_ids(v, remap)
                for k, v in action.target_attrs.items()
                if v is not None and k != "id" and self._settable(action, k)
            }
            region = (
                action.target_attrs.get("location")
                or (entry.region if entry else "")
                or gateway.default_region(rtype)
            )
            try:
                response = gateway.execute(
                    "create", rtype, attrs=payload, region=region
                )
            except CloudAPIError as exc:
                errors.append(f"{action.address}: {exc}")
                remainder.append(addr)
                continue
            if old_id:
                remap[str(old_id)] = response["id"]
            live_old = destroyed_ids.get(addr)
            if live_old and live_old != old_id:
                # dependents' live attrs reference the pre-rollback id;
                # map it to the twin as well
                remap[live_old] = response["id"]
            current_state.set(
                ResourceState(
                    address=action.address,
                    resource_id=response["id"],
                    provider=gateway.provider_of(rtype),
                    attrs=dict(response),
                    region=region,
                    created_at=gateway.clock.now,
                    updated_at=gateway.clock.now,
                    dependencies=list(action.dependencies),
                )
            )

        return RollbackResult(
            plan=plan,
            state=current_state,
            duration_s=gateway.clock.now - started,
            api_calls=gateway.total_api_calls() - calls_before,
            errors=errors,
            remainder=sorted(set(remainder)),
        )

    def _settable(self, action: RollbackAction, attr: str) -> bool:
        spec = self.gateway.try_spec(action.address.type)
        if spec is None:
            return attr != "id"
        aspec = spec.attr(attr)
        return aspec is not None and not aspec.computed


class NaiveRollback:
    """Baseline: re-apply the snapshot by diffing the *state file* only.

    Never consults the live cloud, so out-of-band modifications are
    invisible and immutable-attribute divergence surfaces as runtime
    API errors instead of planned replacements.
    """

    def __init__(
        self, gateway: CloudGateway, retry: Optional[RetryPolicy] = None
    ):
        self.gateway = ResilientGateway.wrap(gateway, retry=retry)

    def plan(self, snapshot: Snapshot, current_state: StateDocument) -> RollbackPlan:
        actions: List[RollbackAction] = []
        target = snapshot.state
        target_addrs = {str(a) for a in target.addresses()}
        for entry in target.resources():
            current = current_state.get(entry.address)
            if current is None:
                actions.append(
                    RollbackAction(
                        entry.address,
                        RollbackKind.RECREATE,
                        ["missing from state"],
                        dict(entry.attrs),
                        dependencies=list(entry.dependencies),
                    )
                )
                continue
            changed = {
                k: v
                for k, v in entry.attrs.items()
                if current.attrs.get(k) != v and k != "id"
            }
            if changed:
                actions.append(
                    RollbackAction(
                        entry.address,
                        RollbackKind.UPDATE,
                        [f"state diff on {n!r}" for n in changed],
                        changed,
                        dependencies=list(entry.dependencies),
                    )
                )
        for entry in current_state.resources():
            if str(entry.address) not in target_addrs:
                actions.append(
                    RollbackAction(
                        entry.address,
                        RollbackKind.DELETE,
                        ["not in snapshot"],
                        dependencies=list(entry.dependencies),
                    )
                )
        return RollbackPlan(actions=sorted(actions, key=lambda a: str(a.address)))

    def execute(
        self, plan: RollbackPlan, current_state: StateDocument
    ) -> RollbackResult:
        gateway = self.gateway
        started = gateway.clock.now
        calls_before = gateway.total_api_calls()
        errors: List[str] = []
        remap: Dict[str, str] = {}
        updates = [a for a in plan.actions if a.kind is RollbackKind.UPDATE]
        deletes = [a for a in plan.actions if a.kind is RollbackKind.DELETE]
        recreates = [a for a in plan.actions if a.kind is RollbackKind.RECREATE]
        ordered = (
            updates
            + _dependents_first(deletes)
            + _dependencies_first(recreates)
        )
        for action in ordered:
            entry = current_state.get(action.address)
            rtype = action.address.type
            try:
                if action.kind is RollbackKind.DELETE and entry is not None:
                    gateway.execute("delete", rtype, resource_id=entry.resource_id)
                    current_state.remove(action.address)
                elif action.kind is RollbackKind.UPDATE and entry is not None:
                    payload = {
                        k: v
                        for k, v in action.target_attrs.items()
                        if v is not None and k != "id"
                    }
                    response = gateway.execute(
                        "update",
                        rtype,
                        resource_id=entry.resource_id,
                        attrs=payload,
                    )
                    current_state.set(entry.replace(attrs=dict(response)))
                elif action.kind is RollbackKind.RECREATE:
                    payload = {
                        k: _remap_ids(v, remap)
                        for k, v in action.target_attrs.items()
                        if v is not None and k != "id"
                    }
                    old_id = action.target_attrs.get("id", "")
                    region = action.target_attrs.get(
                        "location"
                    ) or gateway.default_region(rtype)
                    response = gateway.execute(
                        "create", rtype, attrs=payload, region=region
                    )
                    if old_id:
                        remap[str(old_id)] = response["id"]
                    current_state.set(
                        ResourceState(
                            address=action.address,
                            resource_id=response["id"],
                            provider=gateway.provider_of(rtype),
                            attrs=dict(response),
                            region=region,
                            dependencies=list(action.dependencies),
                        )
                    )
            except CloudAPIError as exc:
                errors.append(f"{action.address}: {exc}")
        return RollbackResult(
            plan=plan,
            state=current_state,
            duration_s=gateway.clock.now - started,
            api_calls=gateway.total_api_calls() - calls_before,
            errors=errors,
        )


# -- ordering helpers -----------------------------------------------------------


def _dependents_first(actions: List[RollbackAction]) -> List[RollbackAction]:
    """Destroy order: a resource before anything it depends on."""
    return _topo(actions, dependents_first=True)


def _dependencies_first(actions: List[RollbackAction]) -> List[RollbackAction]:
    """Create order: a resource after everything it depends on."""
    return _topo(actions, dependents_first=False)


def _topo(actions: List[RollbackAction], dependents_first: bool) -> List[
    RollbackAction
]:
    from ..graph.dag import Dag

    in_set = {str(a.address) for a in actions}
    dag: Dag = Dag()
    for action in actions:
        addr = str(action.address)
        dag.add_node(addr)
        for dep in action.dependencies:
            if dep in in_set and dep != addr:
                if dependents_first:
                    dag.add_edge(addr, dep)  # dependent runs first
                else:
                    dag.add_edge(dep, addr)  # dependency runs first
    by_addr = {str(a.address): a for a in actions}
    try:
        return [by_addr[n] for n in dag.topological_order()]
    except Exception:
        return sorted(actions, key=lambda a: str(a.address))


def measure_divergence(
    gateway: CloudGateway, snapshot: Snapshot, state: StateDocument
) -> int:
    """How many resources still differ from the snapshot's intent.

    The E4 convergence metric: compares *live cloud records* against the
    snapshot attribute-by-attribute (ignoring computed identity attrs,
    and following id replacements made by a rollback: reference attrs
    count as converged when they point at the recreated twin of the
    snapshot target).
    """
    # map snapshot resource ids to the ids now recorded in state for the
    # same address (identity across replacement)
    id_map: Dict[str, str] = {}
    for entry in snapshot.state.resources():
        current = state.get(entry.address)
        if current is not None:
            id_map[entry.resource_id] = current.resource_id

    divergent = 0
    for entry in snapshot.state.resources():
        current = state.get(entry.address)
        live = (
            gateway.find_record(current.resource_id) if current is not None else None
        )
        if live is None:
            divergent += 1
            continue
        spec = gateway.try_spec(entry.address.type)
        computed = {a.name for a in spec.computed_attrs()} if spec else {"id"}
        keys = (set(entry.attrs) | set(live.attrs)) - computed
        for key in keys:
            want = _remap_ids(entry.attrs.get(key), id_map)
            if want != live.attrs.get(key):
                divergent += 1
                break
    snapshot_addrs = {str(e.address) for e in snapshot.state.resources()}
    for entry in state.resources():
        if str(entry.address) not in snapshot_addrs:
            divergent += 1
    return divergent
