"""Concurrent updates, transactions, and rollback (paper 3.4)."""

from .coordinator import (
    CoordinationResult,
    SCHEDULING_POLICIES,
    UpdateCoordinator,
    UpdateOutcome,
    UpdateRequest,
)
from .rollback import (
    NaiveRollback,
    ReversibilityAwareRollback,
    RollbackAction,
    RollbackKind,
    RollbackPlan,
    RollbackResult,
    measure_divergence,
)

__all__ = [
    "CoordinationResult",
    "SCHEDULING_POLICIES",
    "NaiveRollback",
    "ReversibilityAwareRollback",
    "RollbackAction",
    "RollbackKind",
    "RollbackPlan",
    "RollbackResult",
    "UpdateCoordinator",
    "UpdateOutcome",
    "UpdateRequest",
    "measure_divergence",
]
