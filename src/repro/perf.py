"""Lightweight wall-clock instrumentation for the hot paths.

The deploy/DAG layers report counters and timings here so benchmarks
(``benchmarks/bench_p1_scale.py``) can attribute wall-clock cost to
individual mechanisms (dispatch selection, topological sorts, skip
propagation) without a profiler run.

Instrumentation is off by default and costs one attribute check per
probe site when disabled. Enable explicitly with :func:`enable` or by
setting the ``REPRO_PERF`` environment variable.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator


class PerfRegistry:
    """Counters, accumulated timers, and per-event maxima.

    Three probe kinds:

    * ``count(name)`` -- how many times something happened.
    * ``observe(name, seconds)`` -- accumulate a duration; tracks the
      sum, the event count, and the maximum single observation (the
      "peak dispatch cost" the scale benchmark reports).
    * ``timed(name)`` -- context manager sugar over ``observe``.
    """

    __slots__ = ("enabled", "counters", "timer_total", "timer_count", "timer_max")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.counters: Dict[str, int] = {}
        self.timer_total: Dict[str, float] = {}
        self.timer_count: Dict[str, int] = {}
        self.timer_max: Dict[str, float] = {}

    # -- switches ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self.timer_total.clear()
        self.timer_count.clear()
        self.timer_max.clear()

    # -- probes ------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        self.timer_total[name] = self.timer_total.get(name, 0.0) + seconds
        self.timer_count[name] = self.timer_count.get(name, 0) + 1
        if seconds > self.timer_max.get(name, 0.0):
            self.timer_max[name] = seconds

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly dump of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "timers": {
                name: {
                    "total_s": self.timer_total[name],
                    "count": self.timer_count.get(name, 0),
                    "max_s": self.timer_max.get(name, 0.0),
                }
                for name in self.timer_total
            },
        }


#: process-wide default registry; hot-path probe sites use this.
PERF = PerfRegistry(enabled=bool(os.environ.get("REPRO_PERF")))


def enable() -> None:
    PERF.enable()


def disable() -> None:
    PERF.disable()


def reset() -> None:
    PERF.reset()


def snapshot() -> Dict[str, Any]:
    return PERF.snapshot()
