"""Lightweight wall-clock instrumentation for the hot paths.

The deploy/DAG layers report counters and timings here so benchmarks
(``benchmarks/bench_p1_scale.py``) can attribute wall-clock cost to
individual mechanisms (dispatch selection, topological sorts, skip
propagation) without a profiler run.

Instrumentation is off by default and costs one attribute check per
probe site when disabled. Enable explicitly with :func:`enable` or by
setting the ``REPRO_PERF`` environment variable.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator


#: canonical probe names subsystems register here, so benchmarks and
#: campaign reports can assert on stable spellings instead of grepping
#: call sites. The service tier's ``service.*`` family is the contract
#: the tenant-storm chaos scenario checks in its ``CampaignReport``.
KNOWN_PROBES: Dict[str, str] = {
    # -- persistence (PR 3/4) ---------------------------------------------
    "persist.journal_appends": "count: delta appends to a journal store",
    "persist.compactions": "count: journal foldings into a keyframe",
    "persist.torn_tail_recoveries": "count: torn journal tails truncated",
    "persist.keyframe_fallbacks": "count: keyframe reads served by .bak",
    # -- multi-tenant service tier (PR 10) --------------------------------
    "service.admitted": "count: requests accepted past the admission tier",
    "service.shed": "count: requests rejected with a typed shed",
    "service.queued_ms": (
        "timer: milliseconds a dispatched request waited in the "
        "admission queue (observe() takes ms here, not seconds)"
    ),
    "service.active_tenants": "gauge: tenants with an open session",
    "service.fairness_ratio": (
        "gauge: max/min per-tenant goodput among tenants that "
        "completed at least one request"
    ),
}


class PerfRegistry:
    """Counters, accumulated timers, gauges, and per-event maxima.

    Four probe kinds:

    * ``count(name)`` -- how many times something happened.
    * ``observe(name, seconds)`` -- accumulate a duration; tracks the
      sum, the event count, and the maximum single observation (the
      "peak dispatch cost" the scale benchmark reports).
    * ``timed(name)`` -- context manager sugar over ``observe``.
    * ``gauge(name, value)`` -- a last-value-wins level (queue depth,
      active tenants, a fairness ratio).
    """

    __slots__ = (
        "enabled",
        "counters",
        "timer_total",
        "timer_count",
        "timer_max",
        "gauges",
    )

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.counters: Dict[str, int] = {}
        self.timer_total: Dict[str, float] = {}
        self.timer_count: Dict[str, int] = {}
        self.timer_max: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    # -- switches ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self.timer_total.clear()
        self.timer_count.clear()
        self.timer_max.clear()
        self.gauges.clear()

    # -- probes ------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        self.timer_total[name] = self.timer_total.get(name, 0.0) + seconds
        self.timer_count[name] = self.timer_count.get(name, 0) + 1
        if seconds > self.timer_max.get(name, 0.0):
            self.timer_max[name] = seconds

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly dump of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "timers": {
                name: {
                    "total_s": self.timer_total[name],
                    "count": self.timer_count.get(name, 0),
                    "max_s": self.timer_max.get(name, 0.0),
                }
                for name in self.timer_total
            },
            "gauges": dict(self.gauges),
        }


#: process-wide default registry; hot-path probe sites use this.
PERF = PerfRegistry(enabled=bool(os.environ.get("REPRO_PERF")))


def enable() -> None:
    PERF.enable()


def disable() -> None:
    PERF.disable()


def reset() -> None:
    PERF.reset()


def snapshot() -> Dict[str, Any]:
    return PERF.snapshot()
