"""The on-disk compiled-artifact store.

One artifact file per workload key, where the key is content-free --
sha256 over the sorted source *filenames* plus the variables and
schema fingerprints -- so an edited file maps to the *same* artifact
(and a partial hit reuses its unchanged chunk ASTs) while a different
workload, variable set, or provider catalog maps elsewhere.

File layout (torn-write-safe, modelled on the state journal)::

    {"version": 2, "meta_sha": ..., "meta_len": M,
     "payload_sha": ..., "payload_len": N}\\n
    <M bytes: pickled _ArtifactMeta>
    <N bytes: pickled _ArtifactPayload envelope>

The artifact is split so that a warm exact hit is O(changed), not
O(estate): the *meta* part (file digests, fingerprints, the journaled
plan render text) is small and unpickled eagerly; the *payload* part
(the config, expanded graph, and plan object web -- millions of
objects at 1M resources) is read and digest-verified eagerly but
unpickled only when a consumer actually needs the object graph
(validate, apply, re-plan). The payload envelope is a thin wrapper
whose only field is the inner pickle bytes, so the eager load
validates the file is semantically ours without materializing.

A torn tail, header corruption, version skew, or digest mismatch on
*either* part classifies as a miss (counted in
:attr:`CompileCache.corrupt_rejects`), never an error. Exactness is
decided by whole-file sha256 -- same bytes parse to the same chunks,
so there is no separate chunk-fingerprint rescan on the hit path (the
chunker is pure, and chunker changes bump ``FORMAT_VERSION``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import zlib
from typing import Any, Dict, List, Optional

FORMAT_VERSION = 2

#: artifact filename suffix (one workload key per file)
SUFFIX = ".clcc"


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def variables_fingerprint(variables: Optional[Dict[str, Any]]) -> str:
    """Stable digest of the variable values a compile ran under."""
    try:
        blob = json.dumps(
            variables or {}, sort_keys=True, default=repr
        ).encode()
    except (TypeError, ValueError):
        blob = repr(sorted((variables or {}).items())).encode()
    return _sha(blob)


def schema_fingerprint(gateway: Any) -> str:
    """Digest of the provider catalogs a compile resolved against.

    A schema change (new attribute, different id prefix, added
    provider) invalidates every artifact: the expanded graph bakes in
    spec-derived decisions, so replaying it against a different
    catalog would be silently wrong.
    """
    parts: List[str] = []
    for provider in sorted(gateway.planes):
        plane = gateway.planes[provider]
        for rtype in sorted(plane.specs):
            tspec = plane.specs[rtype]
            attrs = ",".join(
                f"{a.name}:{a.type}:{int(a.computed)}:{int(a.required)}"
                for a in sorted(
                    tspec.attributes.values(), key=lambda a: a.name
                )
            )
            parts.append(f"{provider}|{rtype}|{tspec.id_prefix}|{attrs}")
    return _sha("\n".join(parts).encode())


@dataclasses.dataclass
class _ArtifactMeta:
    """The small, eagerly-unpickled half of one journaled compile."""

    format_version: int
    #: filename -> sha256 of the full source text (exactness test)
    source_sha: Dict[str, str]
    variables_fp: str
    schema_fp: str
    #: state/data fingerprints the journaled plan is valid for
    plan_state_fp: Optional[str] = None
    plan_data_fp: Optional[str] = None
    #: zlib-compressed ``plan.render()`` text, so an exact hit can
    #: serve byte-identical plan output without touching the payload
    plan_render_z: Optional[bytes] = None


@dataclasses.dataclass
class _ArtifactPayload:
    """Envelope around the big object-web pickle.

    The outer pickle (this class) is cheap to load -- one bytes field
    -- which lets :meth:`CompileCache._read` semantically validate the
    payload eagerly while deferring the expensive inner
    ``pickle.loads`` (config + graph + plan) until a consumer needs
    the objects.
    """

    objects: bytes  # pickle of (config, graph, plan)


class CacheLookup:
    """Outcome of :meth:`CompileCache.load`.

    ``kind`` is ``"exact"`` (every file byte-identical: config *and*
    graph reusable, plan too if its state fingerprint matches) or
    ``"partial"`` (something changed: only the chunk-AST table is
    reusable, via ``Configuration.parse_streaming(reuse=...)``).

    ``config`` / ``graph`` / ``plan`` are lazy: the first access
    unpickles the payload's object web (O(estate)); until then an
    exact hit costs only the meta. ``plan_render`` serves the
    journaled plan text from the meta without materializing anything.
    """

    def __init__(self, kind: str, meta: _ArtifactMeta, objects_pickle: bytes):
        self.kind = kind
        self.plan_state_fp = meta.plan_state_fp
        self.plan_data_fp = meta.plan_data_fp
        self._meta = meta
        self._objects_pickle: Optional[bytes] = objects_pickle
        self._objects: Optional[tuple] = None

    @property
    def exact(self) -> bool:
        return self.kind == "exact"

    @property
    def materialized(self) -> bool:
        """Whether the payload's object web has been unpickled."""
        return self._objects is not None

    def _materialize(self) -> tuple:
        if self._objects is None:
            blob = self._objects_pickle
            assert blob is not None
            objects = pickle.loads(blob)
            if not (isinstance(objects, tuple) and len(objects) == 3):
                raise RuntimeError(
                    "corrupt compile-cache payload: expected a "
                    "(config, graph, plan) triple"
                )
            self._objects = objects
            self._objects_pickle = None  # the bytes are no longer needed
        return self._objects

    @property
    def config(self) -> Any:
        return self._materialize()[0]

    @property
    def graph(self) -> Any:
        return self._materialize()[1]

    @property
    def plan(self) -> Any:
        return self._materialize()[2]

    @property
    def plan_render(self) -> Optional[str]:
        """The journaled ``plan.render()`` text, or None if the
        artifact was stored without a plan."""
        if self._meta.plan_render_z is None:
            return None
        return zlib.decompress(self._meta.plan_render_z).decode()


class CompileCache:
    """Content-addressed, versioned, torn-write-safe artifact store."""

    def __init__(self, cache_dir: str):
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)
        # perf counters (benchmarks and tests read these)
        self.exact_hits = 0
        self.partial_hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0
        self.corrupt_rejects = 0

    # -- keys ----------------------------------------------------------------

    def key_for(
        self,
        sources: Dict[str, str],
        variables_fp: str,
        schema_fp: str,
    ) -> str:
        ident = "|".join(sorted(sources)) + "|" + variables_fp + "|" + schema_fp
        return _sha(ident.encode())[:32]

    def path_for(
        self,
        sources: Dict[str, str],
        variables_fp: str,
        schema_fp: str,
    ) -> str:
        return os.path.join(
            self.cache_dir, self.key_for(sources, variables_fp, schema_fp) + SUFFIX
        )

    # -- load ----------------------------------------------------------------

    def load(
        self,
        sources: Dict[str, str],
        variables_fp: str,
        schema_fp: str,
    ) -> Optional[CacheLookup]:
        """Look the workload up; ``None`` means cold build."""
        path = self.path_for(sources, variables_fp, schema_fp)
        parts = self._read(path)
        if parts is None:
            self.misses += 1
            return None
        meta, objects_pickle = parts
        if (
            meta.format_version != FORMAT_VERSION
            or meta.variables_fp != variables_fp
            or meta.schema_fp != schema_fp
        ):
            self.corrupt_rejects += 1
            self.misses += 1
            return None
        kind = self._classify(meta, sources)
        if kind == "exact":
            self.exact_hits += 1
        else:
            self.partial_hits += 1
        return CacheLookup(kind=kind, meta=meta, objects_pickle=objects_pickle)

    def _classify(self, meta: _ArtifactMeta, sources: Dict[str, str]) -> str:
        if set(meta.source_sha) != set(sources):
            return "partial"
        for fname, text in sources.items():
            if meta.source_sha.get(fname) != _sha(text.encode()):
                return "partial"
        return "exact"

    def _read(self, path: str) -> Optional[tuple]:
        """Read + digest-verify both parts eagerly (a torn write is
        caught *here*, not at first use), unpickle only the cheap ones
        (meta, payload envelope). Returns ``(meta, objects_pickle)``."""
        try:
            with open(path, "rb") as fh:
                header = json.loads(fh.readline())
                if header.get("version") != FORMAT_VERSION:
                    self.corrupt_rejects += 1
                    return None
                meta_blob = fh.read(int(header.get("meta_len")))
                payload_blob = fh.read()
            if len(meta_blob) != header.get("meta_len"):
                self.corrupt_rejects += 1
                return None
            if _sha(meta_blob) != header.get("meta_sha"):
                self.corrupt_rejects += 1
                return None
            if len(payload_blob) != header.get("payload_len"):
                self.corrupt_rejects += 1
                return None
            if _sha(payload_blob) != header.get("payload_sha"):
                self.corrupt_rejects += 1
                return None
            meta = pickle.loads(meta_blob)
            envelope = pickle.loads(payload_blob)
        except FileNotFoundError:
            return None
        except Exception:
            # torn header, bad json, truncated parts, unpicklable
            # bytes, unknown classes: all of it is just a cold build
            self.corrupt_rejects += 1
            return None
        if not isinstance(meta, _ArtifactMeta) or not isinstance(
            envelope, _ArtifactPayload
        ):
            self.corrupt_rejects += 1
            return None
        return meta, envelope.objects

    # -- store ---------------------------------------------------------------

    def store(
        self,
        sources: Dict[str, str],
        variables_fp: str,
        schema_fp: str,
        config: Any,
        graph: Any,
        plan: Any = None,
        plan_state_fp: Optional[str] = None,
        plan_data_fp: Optional[str] = None,
    ) -> bool:
        """Journal one compile. Returns False if anything refused to
        pickle (the cache is strictly best-effort)."""
        render_z: Optional[bytes] = None
        if plan is not None:
            try:
                # level 1: the render text is large and repetitive;
                # write speed matters more than ratio here
                render_z = zlib.compress(plan.render().encode(), 1)
            except Exception:
                return False
        meta = _ArtifactMeta(
            format_version=FORMAT_VERSION,
            source_sha={f: _sha(t.encode()) for f, t in sources.items()},
            variables_fp=variables_fp,
            schema_fp=schema_fp,
            plan_state_fp=plan_state_fp,
            plan_data_fp=plan_data_fp,
            plan_render_z=render_z,
        )
        try:
            meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
            inner = pickle.dumps(
                (config, graph, plan), protocol=pickle.HIGHEST_PROTOCOL
            )
            payload_blob = pickle.dumps(
                _ArtifactPayload(objects=inner),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            return False
        header = (
            json.dumps(
                {
                    "version": FORMAT_VERSION,
                    "meta_sha": _sha(meta_blob),
                    "meta_len": len(meta_blob),
                    "payload_sha": _sha(payload_blob),
                    "payload_len": len(payload_blob),
                },
                sort_keys=True,
            )
            + "\n"
        ).encode()
        path = self.path_for(sources, variables_fp, schema_fp)
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(header)
                fh.write(meta_blob)
                fh.write(payload_blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stores += 1
        return True

    # -- invalidate ----------------------------------------------------------

    def invalidate(
        self,
        sources: Dict[str, str],
        variables_fp: str,
        schema_fp: str,
    ) -> bool:
        """Drop one workload's artifact."""
        try:
            os.unlink(self.path_for(sources, variables_fp, schema_fp))
        except FileNotFoundError:
            return False
        self.invalidations += 1
        return True

    def clear(self) -> int:
        """Drop every artifact (the rebuild-fallback hook calls this:
        a graph journaled before the rebuild must never be served)."""
        dropped = 0
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(SUFFIX):
                continue
            try:
                os.unlink(os.path.join(self.cache_dir, name))
                dropped += 1
            except OSError:
                continue
        self.invalidations += dropped
        return dropped
