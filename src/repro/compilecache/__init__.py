"""Persistent compiled-artifact cache for cold-start elimination.

Parsing and expanding a 1M-resource estate dominates cold-start wall
time; none of that work depends on anything but the source text, the
variable values, and the provider schemas. This package journals the
compiled artifacts -- the parsed :class:`Configuration` (with its
chunk-AST table), the expanded :class:`ResourceGraph`, and optionally
the :class:`Plan` keyed by the state it was computed against -- to
disk, so a second ``plan``/``apply``/``watch`` of the same workload
loads them in O(changed) instead of rebuilding the DAG from scratch.

Robustness mirrors :class:`~repro.state.persist.JournalStateStore`: a
versioned header carries the payload digest, writes go through a
temp-file + fsync + rename, and *any* mismatch (torn file, version
skew, fingerprint drift, unpicklable payload) falls back to a cold
build -- a cache can be deleted at any time without losing anything
but warm-up time.
"""

from .store import (
    CacheLookup,
    CompileCache,
    schema_fingerprint,
    variables_fingerprint,
)

__all__ = [
    "CacheLookup",
    "CompileCache",
    "schema_fingerprint",
    "variables_fingerprint",
]
