"""Resource addressing.

Every configuration object and deployed resource instance is identified
by a :class:`ResourceAddress` -- the CLC analogue of a Terraform address
like ``module.net.aws_subnet.front[2]``. Addresses are the join key
between configuration, plans, state, locks, drift events, and policies.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional, Tuple, Union

InstanceKey = Optional[Union[int, str]]

MANAGED = "managed"
DATA = "data"

_INDEX_RE = re.compile(r"^(?P<base>.+?)\[(?P<key>[^\]]+)\]$")


@dataclasses.dataclass(frozen=True)
class ResourceAddress:
    """Fully-qualified address of one resource instance.

    ``module_path`` is the chain of module call names from the root.
    ``instance_key`` is ``None`` for single resources, an ``int`` under
    ``count``, or a ``str`` under ``for_each``.
    """

    type: str
    name: str
    module_path: Tuple[str, ...] = ()
    mode: str = MANAGED
    instance_key: InstanceKey = None

    def __post_init__(self) -> None:
        if self.mode not in (MANAGED, DATA):
            raise ValueError(f"invalid mode {self.mode!r}")

    # -- derived forms ---------------------------------------------------

    @property
    def config_address(self) -> "ResourceAddress":
        """The declaration this instance came from (no instance key)."""
        if self.instance_key is None:
            return self
        return dataclasses.replace(self, instance_key=None)

    @property
    def is_data(self) -> bool:
        return self.mode == DATA

    def in_module(self, name: str) -> "ResourceAddress":
        """This address re-rooted one module deeper."""
        return dataclasses.replace(self, module_path=(name,) + self.module_path)

    def with_key(self, key: InstanceKey) -> "ResourceAddress":
        return dataclasses.replace(self, instance_key=key)

    # -- text form --------------------------------------------------------

    def __str__(self) -> str:
        # Addresses are immutable and their text form is the join key
        # hashed all over the planner/executor/state hot paths; build it
        # once per instance instead of re-deriving on every use.
        cached = self.__dict__.get("_str")
        if cached is not None:
            return cached
        parts = []
        for mod in self.module_path:
            parts.append(f"module.{mod}")
        if self.mode == DATA:
            parts.append("data")
        parts.append(self.type)
        parts.append(self.name)
        text = ".".join(parts)
        if self.instance_key is not None:
            if isinstance(self.instance_key, int):
                text += f"[{self.instance_key}]"
            else:
                text += f'["{self.instance_key}"]'
        object.__setattr__(self, "_str", text)
        return text

    def __lt__(self, other: "ResourceAddress") -> bool:
        return self._sort_key() < other._sort_key()

    def _sort_key(self):
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        key = self.instance_key
        if key is None:
            key_tuple = (0, "")
        elif isinstance(key, int):
            key_tuple = (1, f"{key:012d}")
        else:
            key_tuple = (2, key)
        result = (self.module_path, self.mode, self.type, self.name, key_tuple)
        object.__setattr__(self, "_key", result)
        return result

    @classmethod
    def parse(cls, text: str) -> "ResourceAddress":
        """Parse the string form produced by ``__str__``."""
        instance_key: InstanceKey = None
        match = _INDEX_RE.match(text)
        if match:
            text = match.group("base")
            raw = match.group("key")
            if raw.startswith('"') and raw.endswith('"'):
                instance_key = raw[1:-1]
            else:
                try:
                    instance_key = int(raw)
                except ValueError:
                    raise ValueError(f"invalid instance key {raw!r}")
        parts = text.split(".")
        module_path = []
        i = 0
        while i + 1 < len(parts) and parts[i] == "module":
            module_path.append(parts[i + 1])
            i += 2
        mode = MANAGED
        if i < len(parts) and parts[i] == "data":
            mode = DATA
            i += 1
        remainder = parts[i:]
        if len(remainder) != 2:
            raise ValueError(f"cannot parse resource address {text!r}")
        rtype, rname = remainder
        return cls(
            type=rtype,
            name=rname,
            module_path=tuple(module_path),
            mode=mode,
            instance_key=instance_key,
        )


def managed(rtype: str, name: str, key: InstanceKey = None) -> ResourceAddress:
    """Shorthand for a root-module managed resource address."""
    return ResourceAddress(type=rtype, name=name, instance_key=key)


def data(rtype: str, name: str, key: InstanceKey = None) -> ResourceAddress:
    """Shorthand for a root-module data source address."""
    return ResourceAddress(type=rtype, name=name, mode=DATA, instance_key=key)
