"""The ``cloudless`` command-line interface.

A terraform-shaped CLI over the cloudless engine. Configuration lives
in ``*.clc`` files in the working directory; the simulated clouds, the
golden state, and the snapshot history persist in ``cloudless.world``
between invocations, so the workflow feels real::

    python -m repro init
    python -m repro validate
    python -m repro plan
    python -m repro apply
    python -m repro show
    python -m repro watch          # one drift poll
    python -m repro history
    python -m repro rollback 1
    python -m repro import         # adopt a hand-built estate
    python -m repro destroy

``--var name=value`` passes input variables (repeatable); ``--chdir``
selects the project directory; ``--world`` the world file.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Dict, List, Optional

from .core.engine import CloudlessEngine, EngineError
from .persist import load_world, save_world

WORLD_FILE = "cloudless.world"


class CliError(RuntimeError):
    """User-facing CLI failure (exit code 1)."""


def _world_path(args) -> str:
    return os.path.join(args.chdir, args.world)


def _load_engine(args) -> CloudlessEngine:
    path = _world_path(args)
    if not os.path.exists(path):
        raise CliError(
            f"no world file at {path}; run `python -m repro init` first"
        )
    return load_world(path)


def _save_engine(args, engine: CloudlessEngine) -> None:
    # the cache context pins the whole compiled graph; never let it
    # (or the cache handle's counters) ride along in the world pickle
    engine._cache_ctx = None
    engine.compile_cache = None
    save_world(engine, _world_path(args))


def _attach_cache(args, engine: CloudlessEngine) -> None:
    """Wire the compiled-artifact cache onto a (possibly old) world.

    Worlds persisted by earlier versions predate ``compile_cache``;
    set the attributes unconditionally rather than trusting the
    pickle. ``--no-cache`` forces every compile cold."""
    engine._cache_ctx = None
    if getattr(args, "no_cache", False):
        engine.compile_cache = None
        return
    from .compilecache import CompileCache

    cache_dir = getattr(args, "cache_dir", None) or os.path.join(
        args.chdir, ".clc-cache"
    )
    engine.compile_cache = CompileCache(cache_dir)


def _read_sources(args) -> Dict[str, str]:
    pattern = os.path.join(args.chdir, "*.clc")
    files = sorted(glob.glob(pattern))
    if not files:
        raise CliError(f"no *.clc files in {args.chdir}")
    out: Dict[str, str] = {}
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            out[os.path.basename(path)] = handle.read()
    return out


def _parse_vars(pairs: List[str]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise CliError(f"--var wants name=value, got {pair!r}")
        name, raw = pair.split("=", 1)
        try:
            out[name] = json.loads(raw)
        except json.JSONDecodeError:
            out[name] = raw
    return out


def _print_quarantine(result) -> None:
    """Summarize a degraded-mode (partial) apply: what converged, what
    was parked, and when the dark partitions are expected back."""
    apply_result = result.apply
    print(
        f"\napply DEGRADED: {len(apply_result.succeeded)} resource(s) "
        f"converged, {len(apply_result.quarantined)} parked behind "
        f"unreachable partitions"
    )
    for part in apply_result.quarantined_partitions():
        held = sorted(
            cid
            for cid, q in apply_result.quarantined.items()
            if q.partition == part
        )
        print(f"  partition {part} unreachable:")
        for cid in held:
            print(f"    quarantined: {cid}")
    print(
        "run `python -m repro resume` once the partition recovers to "
        "drain the quarantined work"
    )


# -- subcommands ------------------------------------------------------------------


def cmd_init(args) -> int:
    path = _world_path(args)
    if os.path.exists(path) and not args.force:
        raise CliError(f"{path} already exists (use --force to reset)")
    engine = CloudlessEngine(seed=args.seed)
    save_world(engine, path)
    print(f"initialized simulated multi-cloud world at {path}")
    print(f"providers: {', '.join(sorted(engine.gateway.planes))}")
    return 0


def cmd_validate(args) -> int:
    engine = _load_engine(args)
    _attach_cache(args, engine)
    report = engine.validate(_read_sources(args), variables=_parse_vars(args.var))
    print(report)
    return 0 if report.ok else 1


def cmd_plan(args) -> int:
    engine = _load_engine(args)
    _attach_cache(args, engine)
    sources = _read_sources(args)
    report = engine.validate(sources, variables=_parse_vars(args.var))
    if not report.ok:
        print(report)
        return 1
    plan = engine.plan(sources, variables=_parse_vars(args.var))
    print(plan.render())
    return 0


def cmd_apply(args) -> int:
    engine = _load_engine(args)
    _attach_cache(args, engine)
    engine.wal_path = _world_path(args) + ".wal"
    if getattr(args, "shards", None) is not None:
        # worlds persisted by older versions lack the shard attrs;
        # set them unconditionally rather than trusting the pickle
        engine.executor_name = "sharded"
        engine.shards = args.shards or None
        engine.shard_workers = getattr(args, "shard_workers", 1)
    sources = _read_sources(args)
    try:
        result = engine.apply(sources, variables=_parse_vars(args.var))
    except BaseException:
        # the apply died mid-run (Ctrl-C, crash hook, hard error). The
        # clouds outlive the client: settle the operations they already
        # accepted, then persist the world so `python -m repro resume`
        # can replay the intent journal and adopt the orphans.
        engine.gateway.settle_inflight()
        _save_engine(args, engine)
        raise
    if result.validation is not None and not result.validation.ok:
        print(result.validation)
        return 1
    if result.admission is not None and not result.admission.allowed:
        print(result.admission)
        return 1
    assert result.plan is not None and result.apply is not None
    print(result.plan.render())
    _save_engine(args, engine)
    if result.apply.partial:
        _print_quarantine(result)
        return 2
    if not result.apply.ok:
        print("\napply FAILED:")
        for diagnosis in result.diagnoses:
            print(diagnosis.render())
        return 1
    print(
        f"\napply complete in {result.apply.makespan_s:.1f} simulated "
        f"seconds ({result.apply.api_calls} API calls); snapshot "
        f"v{result.snapshot_version}"
    )
    if engine.state.outputs:
        print("outputs:")
        for name, value in sorted(engine.state.outputs.items()):
            print(f"  {name} = {value!r}")
    return 0


def cmd_resume(args) -> int:
    engine = _load_engine(args)
    engine.wal_path = _world_path(args) + ".wal"
    # the crashed run's cloud-side operations may still be unresolved
    # in the persisted world; settle them before probing
    engine.gateway.settle_inflight()
    try:
        sources: Any = _read_sources(args)
    except CliError:
        sources = None  # fall back to the sources of the crashed apply
    variables = _parse_vars(args.var) if args.var else None
    outcome = engine.resume(sources, variables=variables)
    if outcome.recovery is not None:
        summary = outcome.recovery.summary()
        print(
            f"recovered run {outcome.recovery.run_id}: "
            + ", ".join(f"{k}={v}" for k, v in sorted(summary.items()))
        )
        for address in outcome.recovery.adopted:
            print(f"  adopted orphan: {address}")
        for address in outcome.recovery.removed:
            print(f"  delete had landed: {address}")
    else:
        print("journal clean: nothing to recover; applying normally")
    result = outcome.result
    if result.validation is not None and not result.validation.ok:
        print(result.validation)
        return 1
    if result.admission is not None and not result.admission.allowed:
        print(result.admission)
        return 1
    _save_engine(args, engine)
    if result.apply is not None and result.apply.partial:
        _print_quarantine(result)
        return 2
    if result.apply is None or not result.apply.ok:
        print("\nresume FAILED:")
        for diagnosis in result.diagnoses:
            print(diagnosis.render())
        return 1
    print(
        f"\nresume complete in {result.apply.makespan_s:.1f} simulated "
        f"seconds ({result.apply.api_calls} API calls)"
    )
    return 0


def cmd_destroy(args) -> int:
    engine = _load_engine(args)
    result = engine.destroy()
    _save_engine(args, engine)
    if result.apply is None or not result.apply.ok:
        print("destroy failed")
        return 1
    print(f"destroyed; {len(engine.state)} resources remain in state")
    return 0


def cmd_show(args) -> int:
    engine = _load_engine(args)
    if not len(engine.state):
        print("state is empty")
        return 0
    print(f"state serial {engine.state.serial}, {len(engine.state)} resources:")
    for entry in engine.state.resources():
        print(
            f"  {str(entry.address):45s} {entry.resource_id:16s} "
            f"{entry.region}"
        )
    if engine.state.outputs:
        print("outputs:")
        for name, value in sorted(engine.state.outputs.items()):
            print(f"  {name} = {value!r}")
    return 0


def cmd_watch(args) -> int:
    """Event-driven drift watch. Exit codes mirror ``apply``:

    0 -- every partition observed, every actionable finding repaired
         (or merely observed, without ``--reconcile``);
    2 -- DEGRADED: dark/stale partitions, deferred repairs, or
         interrupted-but-resumable repairs (re-run to converge);
    1 -- a repair failed terminally.
    """
    engine = _load_engine(args)
    cycles = engine.watch_continuously(
        cycles=max(1, args.cycles),
        interval_s=args.interval,
        cursor_path=_world_path(args) + ".cursors",
        max_lag_s=args.max_lag,
        auto_reconcile=args.reconcile,
    )
    _save_engine(args, engine)
    total = 0
    for index, cycle in enumerate(cycles):
        if args.cycles > 1:
            print(
                f"cycle {index + 1}/{args.cycles} "
                f"t={cycle.run.finished_at:.1f}: "
                f"{len(cycle.findings)} finding(s)"
            )
        total += len(cycle.findings)
        by_key = {id(d.finding): d for d in cycle.decisions}
        for finding in cycle.findings:
            where = (
                str(finding.address) if finding.address else finding.resource_id
            )
            attrs = (
                f" ({', '.join(finding.changed_attrs)})"
                if finding.changed_attrs
                else ""
            )
            burst = (
                f" [{finding.event_count} events]"
                if finding.event_count > 1
                else ""
            )
            print(f"  [{finding.kind}] {where}{attrs} by {finding.actor}{burst}")
            decision = by_key.get(id(finding))
            if decision is None:
                continue
            if decision.action is not None:
                print(
                    f"  -> {decision.action.policy}: "
                    f"{decision.action.performed}"
                )
            else:
                print(f"  -> {decision.decision}: {decision.reason}")
        for provider in cycle.stale:
            print(
                f"  stale partition: {provider} unobserved for "
                f"{cycle.lag_s[provider]:.0f}s (bound {args.max_lag:.0f}s)"
            )
    last = cycles[-1]
    if total == 0:
        print("no drift detected")
    if any(c.hard_failed for c in cycles):
        print("watch FAILED: a repair failed terminally")
        return 1
    if last.degraded:
        parked = last.pending
        labels = ", ".join(
            sorted(set(last.run.unreachable) | set(last.stale))
        ) or "none"
        print(
            f"watch DEGRADED: {parked} repair(s) parked, "
            f"unreachable/stale partitions: {labels}; re-run to converge"
        )
        return 2
    return 0


def cmd_history(args) -> int:
    engine = _load_engine(args)
    if not len(engine.history):
        print("no snapshots yet")
        return 0
    for version in engine.history.versions():
        snap = engine.history.get(version)
        print(
            f"  v{snap.version}  t={snap.timestamp:10.1f}  "
            f"{len(snap.state):3d} resources  {snap.description}"
        )
    return 0


def cmd_rollback(args) -> int:
    engine = _load_engine(args)
    result = engine.rollback(args.version)
    _save_engine(args, engine)
    print(
        f"rollback to v{args.version}: {len(result.plan)} actions, "
        f"{result.plan.redeployments} redeployments, "
        f"{len(result.errors)} errors"
    )
    for error in result.errors:
        print(f"  error: {error}")
    return 0 if not result.errors else 1


def cmd_import(args) -> int:
    engine = _load_engine(args)
    project = engine.import_estate(adopt=True)
    _save_engine(args, engine)
    for fname, text in sorted(project.sources.items()):
        path = os.path.join(args.chdir, fname)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {path}")
    for source, files in sorted(project.module_sources.items()):
        directory = os.path.join(args.chdir, source)
        os.makedirs(directory, exist_ok=True)
        for fname, text in sorted(files.items()):
            path = os.path.join(directory, fname)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {path}")
    print(f"adopted {len(engine.state)} resources into state")
    return 0


def cmd_outputs(args) -> int:
    engine = _load_engine(args)
    for name, value in sorted(engine.state.outputs.items()):
        print(f"{name} = {value!r}")
    return 0


def cmd_providers(args) -> int:
    engine = _load_engine(args)
    for name, plane in sorted(engine.gateway.planes.items()):
        print(f"{name} (regions: {', '.join(plane.regions)})")
        for rtype in sorted(plane.specs):
            spec = plane.specs[rtype]
            required = ", ".join(
                a.name for a in spec.required_attrs() if not a.computed
            )
            print(f"  {rtype:32s} create~{spec.latency.create_s:6.0f}s  "
                  f"required: {required}")
    return 0


def cmd_graph(args) -> int:
    engine = _load_engine(args)
    sources = _read_sources(args)
    plan = engine.plan(sources, variables=_parse_vars(args.var))
    print(plan.to_dot())
    return 0


def cmd_state_mv(args) -> int:
    from .core.engine import EngineError

    engine = _load_engine(args)
    try:
        engine.state_move(args.src, args.dst)
    except (EngineError, ValueError) as exc:
        raise CliError(str(exc))
    _save_engine(args, engine)
    print(f"moved {args.src} -> {args.dst}")
    return 0


def cmd_state_rm(args) -> int:
    engine = _load_engine(args)
    try:
        removed = engine.state_forget(args.address)
    except ValueError as exc:
        raise CliError(str(exc))
    if not removed:
        raise CliError(f"no state entry at {args.address}")
    _save_engine(args, engine)
    print(f"forgot {args.address} (the cloud resource still exists)")
    return 0


def cmd_chaos(args) -> int:
    """Run (or list) chaos campaigns. Standalone: campaigns build their
    own simulated worlds, so no ``cloudless.world`` file is involved.

    Exit codes: 0 -- every trial converged and coverage holds; 1 -- an
    invariant was violated, a trial failed, or coverage regressed below
    the baseline.
    """
    from .chaos import CampaignRunner, CampaignSpec, SpecValidationError
    from .chaos.library import library as chaos_library

    specs = chaos_library()
    if args.list:
        print(f"{len(specs)} scenario(s) in the library:")
        coverage: Dict[str, List[str]] = {}
        for name, spec in sorted(specs.items()):
            classes = spec.defect_classes()
            print(f"  {name:32s} {spec.description}")
            print(f"  {'':32s} covers: {', '.join(classes)}")
            for cls in classes:
                coverage.setdefault(cls, []).append(name)
        print(f"\ndefect-taxonomy coverage ({len(coverage)} classes):")
        for cls, names in sorted(coverage.items()):
            print(f"  {cls:36s} {len(names)} scenario(s)")
        return 0

    if args.campaign:
        try:
            with open(os.path.join(args.chdir, args.campaign)) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CliError(f"cannot read campaign file: {exc}")
        try:
            campaign = CampaignSpec.from_dict(data, library=specs)
        except SpecValidationError as exc:
            raise CliError(f"invalid campaign: {exc}")
    elif args.scenario:
        try:
            chosen = []
            for name in args.scenario:
                if name not in specs:
                    raise CliError(
                        f"unknown scenario {name!r} (see `chaos --list`)"
                    )
                chosen.append(specs[name])
            campaign = CampaignSpec(name="adhoc", scenarios=chosen)
        except SpecValidationError as exc:
            raise CliError(f"invalid campaign: {exc}")
    else:
        raise CliError(
            "nothing to do: pass --campaign <file>, --scenario <name>, "
            "or --list"
        )
    if args.trials is not None:
        campaign = CampaignSpec(
            name=campaign.name,
            description=campaign.description,
            scenarios=campaign.scenarios,
            trials=args.trials,
        )

    report = CampaignRunner(campaign).run()
    trials = sum(len(s.trials) for s in report.results)
    coverage = report.coverage()
    print(
        f"campaign {report.campaign}: {len(report.results)} scenario(s), "
        f"{trials} trial(s), pass rate {report.pass_rate:.0%}, "
        f"{len(coverage)} defect class(es) covered"
    )
    for result in report.results:
        ok = all(t.passed for t in result.trials)
        print(f"  [{'ok' if ok else 'FAIL'}] {result.name}")
        for trial in result.trials:
            for violation in trial.violations:
                print(f"        trial {trial.trial}: {violation}")

    if args.report:
        out = os.path.join(args.chdir, args.report)
        with open(out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"report written to {out}")

    failed = not report.passed
    if args.baseline:
        try:
            with open(os.path.join(args.chdir, args.baseline)) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CliError(f"cannot read coverage baseline: {exc}")
        missing_classes = sorted(
            set(baseline.get("classes", [])) - set(coverage)
        )
        ran = {r.name for r in report.results}
        missing_scenarios = sorted(
            set(baseline.get("scenarios", [])) - ran
        )
        for cls in missing_classes:
            print(f"coverage REGRESSION: defect class {cls} no longer covered")
        for name in missing_scenarios:
            print(f"coverage REGRESSION: scenario {name} no longer ran")
        if missing_classes or missing_scenarios:
            failed = True
        else:
            print(
                f"coverage holds: >={len(baseline.get('classes', []))} "
                f"classes, >={len(baseline.get('scenarios', []))} scenarios"
            )

    if failed:
        print("chaos campaign FAILED")
        return 1
    print("chaos campaign PASSED")
    return 0


def cmd_serve(args) -> int:
    """Run the multi-tenant control-plane service.

    Default mode binds the HTTP front end and serves until interrupted.
    ``--selftest`` instead drives a seeded synthetic tenant mix through
    the service in-process and gates on the typed-response contract:
    exit 0 when every request got a typed answer and no steady tenant
    was starved, 1 otherwise.
    """
    import asyncio

    from .service import ControlPlaneService, ServiceHTTPD, ServicePolicy

    root = os.path.join(args.chdir, args.root)
    policy = ServicePolicy(
        apply_pool=args.apply_pool, max_queue_depth=args.max_queue
    )
    service = ControlPlaneService(root, instance=args.instance, policy=policy)

    if args.selftest:
        return asyncio.run(_serve_selftest(service, args))

    async def _serve() -> int:
        await service.start()
        httpd = ServiceHTTPD(service, host=args.host, port=args.port)
        await httpd.start()
        host, port = httpd.address
        print(f"serving {args.root} on http://{host}:{port} (ctrl-c to stop)")
        try:
            while True:
                await asyncio.sleep(3600)
        except asyncio.CancelledError:
            pass
        finally:
            await httpd.stop()
            await service.stop()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0


async def _serve_selftest(service, args) -> int:
    """A seeded one-process load test: steady tenants plus one noisy."""
    import asyncio

    from .workloads import mixed_arrivals, tenant_mix, web_tier

    profiles = tenant_mix(
        steady=3, noisy=1, base_rate_rps=6.0, noisy_factor=8.0, seed=7
    )
    schedule = mixed_arrivals(profiles, duration_s=args.duration, seed=7)
    sources = web_tier(web_vms=1, app_vms=0, with_lb=False, with_db=False)
    await service.start()
    started = service.clock()
    futures = []
    for arrival in schedule:
        delay = arrival.t - (service.clock() - started)
        if delay > 0:
            await asyncio.sleep(delay)
        futures.append(
            await service.submit(
                arrival.tenant,
                arrival.op,
                payload={"sources": sources},
                priority=arrival.priority,
            )
        )
    responses = await asyncio.gather(*futures)
    stats = service.stats()
    await service.stop()
    print(json.dumps(stats, indent=1, sort_keys=True))
    untyped = sum(1 for r in responses if r.status not in (200,) and not r.reason)
    answered = len(responses) == len(schedule)
    steady = [p.tenant for p in profiles if p.kind == "steady"]
    starved = [t for t in steady if stats["goodput"].get(t, 0) == 0]
    ok = answered and untyped == 0 and not starved
    print(
        f"selftest: {len(responses)}/{len(schedule)} answered, "
        f"{untyped} untyped, starved steady tenants: {starved or 'none'}"
    )
    print(f"selftest {'PASSED' if ok else 'FAILED'}")
    return 0 if ok else 1


# -- wiring -------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cloudless",
        description="Cloudless Computing: IaC lifecycle over simulated clouds",
    )
    parser.add_argument(
        "--chdir", default=".", help="project directory (default: cwd)"
    )
    parser.add_argument(
        "--world", default=WORLD_FILE, help=f"world file (default: {WORLD_FILE})"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create a fresh simulated world")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--force", action="store_true")
    p.set_defaults(fn=cmd_init)

    for name, fn, with_vars in (
        ("validate", cmd_validate, True),
        ("plan", cmd_plan, True),
        ("apply", cmd_apply, True),
    ):
        p = sub.add_parser(name, help=f"{name} the *.clc configuration")
        if with_vars:
            p.add_argument("--var", action="append", default=[])
        p.add_argument(
            "--cache-dir",
            default=None,
            dest="cache_dir",
            help="compiled-artifact cache directory "
            "(default: <chdir>/.clc-cache)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            dest="no_cache",
            help="skip the compiled-artifact cache (every compile cold)",
        )
        if name == "apply":
            p.add_argument(
                "--shards",
                type=int,
                default=None,
                help="sharded apply: cap on shard count "
                "(0 = one shard per provider/region partition)",
            )
            p.add_argument(
                "--shard-workers",
                type=int,
                default=1,
                dest="shard_workers",
                help="process-pool workers for sharded apply "
                "(>1 runs independent provider planes in parallel)",
            )
        p.set_defaults(fn=fn)

    p = sub.add_parser(
        "resume", help="recover a crashed apply from the intent journal"
    )
    p.add_argument("--var", action="append", default=[])
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser("destroy", help="tear down everything in state")
    p.set_defaults(fn=cmd_destroy)

    p = sub.add_parser("show", help="list state")
    p.set_defaults(fn=cmd_show)

    p = sub.add_parser("watch", help="tail the activity logs for drift")
    p.add_argument(
        "--reconcile",
        action="store_true",
        help="auto-repair findings (enforce/adopt/notify/defer-dark)",
    )
    p.add_argument(
        "--cycles",
        type=int,
        default=1,
        help="watcher cycles to run (default 1)",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=60.0,
        help="simulated seconds between cycles (default 60)",
    )
    p.add_argument(
        "--max-lag",
        type=float,
        default=900.0,
        help="staleness bound per partition in seconds (default 900)",
    )
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("history", help="list snapshots (the time machine)")
    p.set_defaults(fn=cmd_history)

    p = sub.add_parser("rollback", help="roll back to a snapshot version")
    p.add_argument("version", type=int)
    p.set_defaults(fn=cmd_rollback)

    p = sub.add_parser("import", help="adopt the live estate into IaC")
    p.set_defaults(fn=cmd_import)

    p = sub.add_parser("outputs", help="print stored outputs")
    p.set_defaults(fn=cmd_outputs)

    p = sub.add_parser("providers", help="list simulated resource types")
    p.set_defaults(fn=cmd_providers)

    p = sub.add_parser("graph", help="emit the plan's dependency graph as DOT")
    p.add_argument("--var", action="append", default=[])
    p.set_defaults(fn=cmd_graph)

    p = sub.add_parser("state", help="state surgery (mv/rm)")
    state_sub = p.add_subparsers(dest="state_command", required=True)
    mv = state_sub.add_parser("mv", help="rename an address in state")
    mv.add_argument("src")
    mv.add_argument("dst")
    mv.set_defaults(fn=cmd_state_mv)
    rm = state_sub.add_parser(
        "rm", help="forget a resource (cloud resource survives)"
    )
    rm.add_argument("address")
    rm.set_defaults(fn=cmd_state_rm)

    p = sub.add_parser(
        "chaos", help="run chaos campaigns against simulated estates"
    )
    p.add_argument(
        "--campaign",
        default=None,
        help="campaign file (JSON; scenario entries may name library "
        "scenarios)",
    )
    p.add_argument(
        "--scenario",
        action="append",
        default=[],
        help="run a library scenario ad hoc (repeatable)",
    )
    p.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the trial count for every scenario",
    )
    p.add_argument(
        "--report",
        default=None,
        help="write the structured campaign report (JSON) here",
    )
    p.add_argument(
        "--baseline",
        default=None,
        help="coverage baseline file (JSON with 'classes'/'scenarios'); "
        "regressions fail the run",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="print the scenario catalog and its taxonomy coverage",
    )
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant control-plane service (HTTP front end)",
    )
    p.add_argument(
        "--root",
        default="service-root",
        help="directory holding per-tenant estates (default: service-root)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8787, help="bind port")
    p.add_argument(
        "--instance",
        default="svc-0",
        help="service instance id (session-lease holder name)",
    )
    p.add_argument(
        "--apply-pool",
        type=int,
        default=4,
        help="concurrent engine executions (worker slots)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="global admission-queue bound",
    )
    p.add_argument(
        "--selftest",
        action="store_true",
        help="drive a seeded synthetic tenant mix in-process and exit "
        "0/1 on the typed-response and no-starvation gates",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=1.5,
        help="selftest traffic duration in seconds",
    )
    p.set_defaults(fn=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`); exit quietly
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - module runner
    sys.exit(main())
