"""repro: Cloudless Computing.

A complete, from-scratch reproduction of *"Simplifying Cloud Management
with Cloudless Computing"* (HotNets 2023): a principled
Infrastructure-as-Code framework covering the full lifecycle the paper
describes -- development (synthesis + porting), validation (semantic
types + cloud-specific rules + specification mining), deployment
(critical-path scheduling, incremental updates), updating (fine-grained
locking, transactions, reversibility-aware rollback), diagnosing (drift
detection, error correlation, repair), and policing (the infrastructure
controller) -- over a simulated multi-cloud substrate.

Quickstart::

    from repro import CloudlessEngine

    engine = CloudlessEngine()
    result = engine.apply('''
    resource "aws_vpc" "main" {
      name       = "main"
      cidr_block = "10.0.0.0/16"
    }
    ''')
    assert result.ok
"""

from .addressing import ResourceAddress, data, managed
from .cloud import CloudAPIError, CloudGateway, SimClock
from .core import CloudlessEngine, EngineApplyResult, EngineError
from .deploy import (
    BestEffortExecutor,
    CriticalPathExecutor,
    SequentialExecutor,
)
from .graph import Action, Plan, Planner, build_graph
from .lang import Configuration, ModuleContext
from .state import StateDocument
from .types import SchemaRegistry
from .validate import ValidationPipeline, validate

__version__ = "1.0.0"

__all__ = [
    "Action",
    "BestEffortExecutor",
    "CloudAPIError",
    "CloudGateway",
    "CloudlessEngine",
    "Configuration",
    "CriticalPathExecutor",
    "EngineApplyResult",
    "EngineError",
    "ModuleContext",
    "Plan",
    "Planner",
    "ResourceAddress",
    "SchemaRegistry",
    "SequentialExecutor",
    "SimClock",
    "StateDocument",
    "ValidationPipeline",
    "build_graph",
    "data",
    "managed",
    "validate",
    "__version__",
]
