"""Per-tenant estates: isolated engines, durable homes, fenced sessions.

Every tenant the service knows gets a *home* under the service root:

    <root>/tenants/<tenant>/world.json   -- full engine world (persist)
    <root>/tenants/<tenant>/state.json   -- journal-mirrored golden state
    <root>/tenants/<tenant>/state.json.owner  -- advisory store owner
    <root>/tenants/<tenant>/wal          -- intent journal for resume

A :class:`TenantSession` is one service instance's live handle on that
home: a private :class:`~repro.core.engine.CloudlessEngine` (no shared
mutable state with any other tenant -- the isolation property the bench
checks byte-for-byte) plus a TTL session lease on the process-wide
*coordination plane*, a :class:`~repro.state.ResourceLockManager`
keyed by the service root. The lease's fencing token is the zombie
detector: a service instance that was killed and superseded still holds
an engine object, but every mutating op re-validates its token first
and comes back ``stale-session`` instead of corrupting the estate a
newer instance now owns. This is the PR 4 lease-fencing machinery
reused one level up -- sessions instead of transactions.

Crash realism: ``kill()`` persists the world but deliberately leaves
the session lease and the store's owner marker in place, exactly the
debris a SIGKILL'd process leaves. The restarting instance takes over
with ``preempt=True`` (bumps the fencing token past the zombie's) and
``steal=True`` on the store marker, then runs ``resume`` to adopt
whatever the dead instance's in-flight applies had provisioned.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ..core.engine import CloudlessEngine
from ..persist import load_world, save_world
from ..state.locks import LockGrant, ResourceLockManager
from ..state.store import JournalStateStore

#: default session-lease TTL; long against op latency, short against
#: operator reaction time -- the window a zombie can linger unfenced
SESSION_TTL_S = 30.0

#: simulated coordination planes, one per service root. Module-level so
#: two ControlPlaneService instances over the same root (an old one and
#: its restart) contend on the same lock table, the way two real
#: replicas contend on one etcd.
_COORDINATION_PLANES: Dict[str, ResourceLockManager] = {}


def coordination_plane(root: str) -> ResourceLockManager:
    key = os.path.realpath(root)
    plane = _COORDINATION_PLANES.get(key)
    if plane is None:
        plane = ResourceLockManager()
        _COORDINATION_PLANES[key] = plane
    return plane


class SessionFencedError(RuntimeError):
    """The tenant's session lease is held by (or lost to) another instance."""


class TenantHome:
    """Path bookkeeping for one tenant's durable estate."""

    def __init__(self, root: str, tenant: str):
        if not tenant or any(ch in tenant for ch in "/\\.:"):
            raise ValueError(f"invalid tenant id {tenant!r}")
        self.tenant = tenant
        self.path = os.path.join(root, "tenants", tenant)
        self.world_path = os.path.join(self.path, "world.json")
        self.state_path = os.path.join(self.path, "state.json")
        self.wal_path = os.path.join(self.path, "wal")

    def exists(self) -> bool:
        return os.path.exists(self.world_path)


class TenantSession:
    """One service instance's fenced, persistent handle on a tenant."""

    def __init__(
        self,
        home: TenantHome,
        engine: CloudlessEngine,
        store: JournalStateStore,
        plane: ResourceLockManager,
        grant: LockGrant,
        ttl_s: float,
    ):
        self.home = home
        self.engine = engine
        self.store = store
        self.plane = plane
        self.grant = grant
        self.ttl_s = ttl_s
        self.closed = False

    # -- construction -------------------------------------------------------

    @classmethod
    def open(
        cls,
        root: str,
        tenant: str,
        instance: str,
        now: float,
        seed: int = 0,
        ttl_s: float = SESSION_TTL_S,
        preempt: bool = False,
    ) -> "TenantSession":
        """Acquire the session lease and load (or create) the estate.

        ``preempt=True`` is the restart path: evict whatever holder the
        coordination plane still records (a dead instance's lease
        debris) and take over with a strictly higher fencing token.
        """
        home = TenantHome(root, tenant)
        plane = coordination_plane(root)
        key = f"session/{tenant}"
        holder = f"{tenant}@{instance}"
        grant = plane.try_acquire(holder, {key}, now, ttl=ttl_s)
        if grant is None and preempt:
            for conflicting in plane.conflicts_with({key}, now):
                plane.release(conflicting)
            grant = plane.try_acquire(holder, {key}, now, ttl=ttl_s)
        if grant is None:
            blockers = sorted(plane.conflicts_with({key}, now))
            raise SessionFencedError(
                f"tenant {tenant!r} session held by {blockers}"
            )
        try:
            store = JournalStateStore(
                home.state_path, owner=holder, steal=preempt
            )
        except BaseException:
            plane.release(holder, grant.fencing_token)
            raise
        if home.exists():
            engine = load_world(home.world_path)
        else:
            os.makedirs(home.path, exist_ok=True)
            engine = CloudlessEngine(seed=seed)
        # load_world does not restore wal_path (the CLI re-points it per
        # invocation); a session always journals into the tenant home.
        engine.wal_path = home.wal_path
        return cls(home, engine, store, plane, grant, ttl_s)

    # -- fencing ------------------------------------------------------------

    def live(self, now: float) -> bool:
        return not self.closed and self.plane.check_fence(
            self.grant.holder, self.grant.fencing_token, now
        )

    def ensure_live(self, now: float) -> None:
        """Zombie gate: every mutating op calls this before touching state."""
        if not self.live(now):
            raise SessionFencedError(
                f"session for {self.home.tenant!r} lost its lease "
                f"(token {self.grant.fencing_token})"
            )

    def renew(self, now: float) -> bool:
        if self.closed:
            return False
        return self.plane.renew(self.grant.holder, now, self.ttl_s) is not None

    # -- persistence --------------------------------------------------------

    def persist(self) -> None:
        save_world(self.engine, self.home.world_path)
        self.store.write(self.engine.state)

    def close(self, now: float) -> None:
        """Graceful shutdown: persist, then surrender lease and marker."""
        if self.closed:
            return
        self.persist()
        self.store.release_owner()
        self.plane.release(self.grant.holder, self.grant.fencing_token)
        self.closed = True

    def kill(self) -> None:
        """Simulated crash: persist the world, abandon lease and marker.

        Mirrors what a SIGKILL leaves behind -- the coordination plane
        still shows this instance holding the session, the store's
        owner marker still names it. Only a ``preempt``/``steal``
        takeover (or lease expiry) clears the debris.
        """
        if self.closed:
            return
        self.engine.gateway.settle_inflight()
        save_world(self.engine, self.home.world_path)
        self.closed = True

    # -- introspection ------------------------------------------------------

    @property
    def tenant(self) -> str:
        return self.home.tenant

    def describe(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "holder": self.grant.holder,
            "fencing_token": self.grant.fencing_token,
            "resources": len(self.engine.state),
        }


def reset_coordination_planes() -> None:
    """Test hook: forget every in-process coordination plane."""
    _COORDINATION_PLANES.clear()
