"""The multi-tenant control-plane service.

``ControlPlaneService`` is a long-running asyncio front end over many
per-tenant :class:`~repro.service.tenants.TenantSession` engines. The
lifecycle of one request:

1. **admission** (synchronous, on the event loop): service state ->
   degradation mode -> tenant circuit breaker -> token bucket -> tenant
   quota -> global queue bound. Any failure returns a *typed* rejection
   immediately -- under overload the service sheds, it never hangs.
2. **queueing**: admitted requests enter the weighted-fair queue keyed
   by tenant; stride scheduling guarantees a flooding tenant cannot
   starve the others past its weight share.
3. **dispatch**: worker slots (``apply_pool``) pull from the fair
   queue. A request whose deadline lapsed while queued is answered
   ``deadline-exceeded`` without executing. Engine work runs in a
   thread pool (the engines are synchronous), one request per tenant
   at a time -- a tenant's session is single-threaded by construction.
4. **execution**: the session re-validates its lease fence, runs the
   op, persists the world, and feeds the breaker/ladder/perf probes.

Degradation is re-evaluated on every admission and dispatch from queue
pressure, climbing normal -> brownout -> read-only with hysteresis
(:mod:`repro.service.degradation`). Entering brownout also evicts
already-queued sub-floor requests (typed ``brownout-shed``), so the
valve acts on the backlog, not just new arrivals.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from ..deploy import SimulatedCrash
from ..perf import PERF
from ..workloads.traffic import LatencyHistogram, goodput_fairness_ratio
from . import admission as adm
from .admission import AdmissionController, TenantQuota
from .breakers import TenantBreakerBank
from .degradation import DegradationLadder
from .fairness import WeightedFairQueue
from .tenants import SessionFencedError, TenantSession


@dataclasses.dataclass
class ServicePolicy:
    """Every tunable of the service tier in one bag."""

    apply_pool: int = 4  # concurrent engine executions
    max_queue_depth: int = 64  # global admission queue bound
    default_deadline_s: float = 30.0
    session_ttl_s: float = 30.0
    default_quota: TenantQuota = dataclasses.field(default_factory=TenantQuota)
    quotas: Dict[str, TenantQuota] = dataclasses.field(default_factory=dict)
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 10.0
    brownout_up: float = 0.70
    brownout_down: float = 0.40
    read_only_up: float = 0.90
    read_only_down: float = 0.60
    persist_every_op: bool = True


@dataclasses.dataclass
class ServiceResponse:
    """The typed answer every submitted request gets -- no exceptions
    escape to callers, no request is silently dropped."""

    tenant: str
    op: str
    status: int  # 200, or a STATUS_OF code
    reason: Optional[str] = None  # typed rejection reason when not 200
    body: Optional[Dict[str, Any]] = None
    queued_s: float = 0.0
    service_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == 200


@dataclasses.dataclass
class _Request:
    tenant: str
    op: str
    payload: Dict[str, Any]
    priority: int
    enqueued_at: float
    deadline_at: float
    future: "asyncio.Future[ServiceResponse]"


class ControlPlaneService:
    """Admission-controlled, fair, degradation-aware multi-tenant host."""

    def __init__(
        self,
        root: str,
        instance: str = "svc-0",
        policy: Optional[ServicePolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.root = root
        self.instance = instance
        self.policy = policy or ServicePolicy()
        self.clock = clock
        self.admission = AdmissionController(
            default_quota=self.policy.default_quota,
            quotas=self.policy.quotas,
            max_queue_depth=self.policy.max_queue_depth,
        )
        self.breakers = TenantBreakerBank(
            self.policy.breaker_threshold, self.policy.breaker_cooldown_s
        )
        self.ladder = DegradationLadder(
            brownout_up=self.policy.brownout_up,
            brownout_down=self.policy.brownout_down,
            read_only_up=self.policy.read_only_up,
            read_only_down=self.policy.read_only_down,
        )
        self.queue = WeightedFairQueue()
        self.sessions: Dict[str, TenantSession] = {}
        self._tenant_locks: Dict[str, asyncio.Lock] = {}
        self._inflight: Dict[str, int] = {}
        self._workers: List[asyncio.Task] = []
        self._wakeup: Optional[asyncio.Condition] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._state = "new"  # new | running | draining | stopped | killed
        # -- stats ----------------------------------------------------------
        self.started_at = 0.0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.shed: Dict[str, int] = {}
        self.goodput: Dict[str, int] = {}
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._state == "running":
            return
        self._wakeup = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=self.policy.apply_pool,
            thread_name_prefix=f"clc-{self.instance}",
        )
        self._state = "running"
        self.started_at = self.clock()
        self._workers = [
            asyncio.ensure_future(self._worker_loop(i))
            for i in range(self.policy.apply_pool)
        ]

    async def drain(self) -> None:
        """Stop admitting, finish the backlog, keep sessions open."""
        if self._state != "running":
            return
        self._state = "draining"
        assert self._wakeup is not None
        async with self._wakeup:
            self._wakeup.notify_all()
        while len(self.queue) or any(self._inflight.values()):
            await asyncio.sleep(0.005)

    async def stop(self) -> None:
        """Graceful shutdown: drain, close sessions, release leases."""
        if self._state in ("stopped", "killed"):
            return
        await self.drain()
        self._state = "stopped"
        await self._retire_workers()
        now = self.clock()
        for session in self.sessions.values():
            session.close(now)
        self.sessions.clear()
        PERF.gauge("service.active_tenants", 0)

    async def kill(self) -> None:
        """Simulated crash: abandon the queue, leave lease/marker debris.

        Queued and in-flight requests are answered ``shutting-down``
        (the connection-reset analog -- still typed, still no hang);
        sessions persist their worlds but keep their leases and owner
        markers, exactly what a SIGKILL leaves for the next instance to
        preempt.
        """
        if self._state in ("stopped", "killed"):
            return
        self._state = "killed"
        for tenant, item in self.queue.drain_all():
            self._finish_rejected(item, adm.REJECT_SHUTDOWN)
        await self._retire_workers()
        for session in self.sessions.values():
            session.kill()
        self.sessions.clear()

    async def _retire_workers(self) -> None:
        if self._wakeup is not None:
            async with self._wakeup:
                self._wakeup.notify_all()
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- submission ---------------------------------------------------------

    async def submit(
        self,
        tenant: str,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        priority: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> "asyncio.Future[ServiceResponse]":
        """Admit-or-shed; returns a future that ALWAYS resolves typed."""
        loop = asyncio.get_event_loop()
        future: "asyncio.Future[ServiceResponse]" = loop.create_future()
        now = self.clock()
        quota = self.admission.quota_of(tenant)
        if priority is None:
            priority = quota.priority
        request = _Request(
            tenant=tenant,
            op=op,
            payload=dict(payload or {}),
            priority=priority,
            enqueued_at=now,
            deadline_at=now
            + (deadline_s if deadline_s is not None
               else self.policy.default_deadline_s),
            future=future,
        )
        reason = self._admit(request, now)
        if reason is not None:
            self._reject(request, reason)
            return future
        self.admitted += 1
        PERF.count("service.admitted")
        self.queue.push(tenant, request, weight=quota.weight)
        assert self._wakeup is not None
        async with self._wakeup:
            self._wakeup.notify()
        return future

    async def request(self, tenant: str, op: str, **kwargs: Any) -> ServiceResponse:
        """Submit and await -- the convenience most callers want."""
        return await (await self.submit(tenant, op, **kwargs))

    def _admit(self, request: _Request, now: float) -> Optional[str]:
        """The admission ladder; a reason string sheds, None admits."""
        if self._state != "running":
            return adm.REJECT_SHUTDOWN
        if request.op not in adm.SERVICE_OPS:
            return adm.REJECT_UNKNOWN_OP
        self._update_ladder()
        if self.ladder.read_only and request.op not in adm.READ_ONLY_OPS:
            return adm.REJECT_READ_ONLY
        if self.ladder.sheds_priority(request.priority):
            return adm.REJECT_BROWNOUT
        if not self.breakers.of(request.tenant).allow(now):
            return adm.REJECT_CIRCUIT_OPEN
        pending = self.queue.pending(request.tenant) + self._inflight.get(
            request.tenant, 0
        )
        return self.admission.check(
            request.tenant, now, len(self.queue), pending
        )

    def _update_ladder(self) -> str:
        pressure = len(self.queue) / max(1, self.policy.max_queue_depth)
        before = self.ladder.mode
        mode = self.ladder.update(pressure)
        if mode != before and mode != "normal":
            # entering a shed mode evicts sub-floor backlog immediately,
            # leaving everything at or above the floor untouched
            victims = self.queue.shed_lowest_priority(
                count=len(self.queue),
                priority_of=lambda item: item.priority,
                below=self.ladder.brownout_priority_floor,
            )
            for _tenant, item in victims:
                self._finish_rejected(item, adm.REJECT_BROWNOUT)
        return mode

    def _reject(self, request: _Request, reason: str) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        PERF.count("service.shed")
        if not request.future.done():
            request.future.set_result(
                ServiceResponse(
                    tenant=request.tenant,
                    op=request.op,
                    status=adm.STATUS_OF[reason],
                    reason=reason,
                )
            )

    def _finish_rejected(self, item: object, reason: str) -> None:
        assert isinstance(item, _Request)
        self._reject(item, reason)

    # -- dispatch -----------------------------------------------------------

    async def _worker_loop(self, slot: int) -> None:
        assert self._wakeup is not None
        while True:
            async with self._wakeup:
                while len(self.queue) == 0:
                    if self._state in ("stopped", "killed"):
                        return
                    if self._state == "draining" and not any(
                        self._inflight.values()
                    ):
                        return
                    await self._wakeup.wait()
                popped = self.queue.pop()
            if popped is None:
                continue
            tenant, item = popped
            assert isinstance(item, _Request)
            self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
            try:
                await self._dispatch(item)
            finally:
                self._inflight[tenant] -= 1
            self._update_ladder()

    async def _dispatch(self, request: _Request) -> None:
        now = self.clock()
        queued = now - request.enqueued_at
        self.queue_wait.observe(queued)
        PERF.observe("service.queued_ms", queued * 1000.0)
        if now >= request.deadline_at:
            self._reject(request, adm.REJECT_DEADLINE)
            return
        request_lock = self._tenant_locks.setdefault(
            request.tenant, asyncio.Lock()
        )
        async with request_lock:
            if self._state == "killed":
                self._reject(request, adm.REJECT_SHUTDOWN)
                return
            loop = asyncio.get_event_loop()
            assert self._executor is not None
            try:
                body = await loop.run_in_executor(
                    self._executor, self._execute, request
                )
            except SessionFencedError as exc:
                self._reject_with(
                    request, adm.REJECT_STALE_SESSION, str(exc)
                )
                self.breakers.of(request.tenant).record_failure(self.clock())
                return
            except (KeyboardInterrupt, SystemExit, SimulatedCrash) as exc:
                # a chaos crash hook fired mid-apply: this tenant's
                # engine just "died". Leave SIGKILL debris (world saved,
                # lease and owner marker abandoned) and answer typed --
                # the restarting instance preempts and resumes.
                session = self.sessions.pop(request.tenant, None)
                if session is not None and not session.closed:
                    session.kill()
                self.failed += 1
                self.breakers.of(request.tenant).record_failure(self.clock())
                if not request.future.done():
                    request.future.set_result(
                        ServiceResponse(
                            tenant=request.tenant,
                            op=request.op,
                            status=500,
                            reason="crashed",
                            body={"error": str(exc)},
                            queued_s=queued,
                        )
                    )
                return
            except Exception as exc:  # engine bug: typed 500, not a hang
                self.failed += 1
                self.breakers.of(request.tenant).record_failure(self.clock())
                if not request.future.done():
                    request.future.set_result(
                        ServiceResponse(
                            tenant=request.tenant,
                            op=request.op,
                            status=500,
                            reason="internal-error",
                            body={"error": str(exc)},
                            queued_s=queued,
                        )
                    )
                return
        done = self.clock()
        self.completed += 1
        self.goodput[request.tenant] = self.goodput.get(request.tenant, 0) + 1
        self.latency.observe(done - request.enqueued_at)
        self.breakers.of(request.tenant).record_success()
        if not request.future.done():
            request.future.set_result(
                ServiceResponse(
                    tenant=request.tenant,
                    op=request.op,
                    status=200,
                    body=body,
                    queued_s=queued,
                    service_s=done - now,
                )
            )

    def _reject_with(self, request: _Request, reason: str, detail: str) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        PERF.count("service.shed")
        if not request.future.done():
            request.future.set_result(
                ServiceResponse(
                    tenant=request.tenant,
                    op=request.op,
                    status=adm.STATUS_OF[reason],
                    reason=reason,
                    body={"detail": detail},
                )
            )

    # -- execution (thread pool; one thread per request, one request
    # per tenant at a time via the per-tenant asyncio lock) ---------------

    def _session(self, tenant: str) -> TenantSession:
        session = self.sessions.get(tenant)
        if session is None or session.closed:
            session = TenantSession.open(
                self.root,
                tenant,
                self.instance,
                now=self.clock(),
                seed=_tenant_seed(tenant),
                ttl_s=self.policy.session_ttl_s,
                preempt=True,
            )
            self.sessions[tenant] = session
            PERF.gauge("service.active_tenants", len(self.sessions))
        return session

    def _execute(self, request: _Request) -> Dict[str, Any]:
        session = self._session(request.tenant)
        now = self.clock()
        op = request.op
        mutating = op not in adm.READ_ONLY_OPS
        if mutating:
            session.ensure_live(now)
            session.renew(now)
        engine = session.engine
        payload = request.payload
        if op == "plan":
            plan = engine.plan(
                payload.get("sources", engine.last_sources or ""),
                variables=payload.get("variables"),
            )
            body: Dict[str, Any] = {"summary": plan.summary()}
        elif op == "apply":
            result = engine.apply(
                payload["sources"],
                variables=payload.get("variables"),
                crash_hook=payload.get("crash_hook"),
            )
            body = {
                "ok": result.ok,
                "partial": result.partial,
                "summary": result.plan.summary() if result.plan else {},
            }
            if not result.ok and not result.partial:
                raise RuntimeError(f"apply failed for {request.tenant}")
        elif op == "drift":
            run = engine.watch()
            body = {
                "findings": len(run.findings),
                "unreachable": list(run.unreachable),
            }
        elif op == "resume":
            # a crash before the apply recorded last_sources would make
            # a bare resume re-plan against the wrong (older) config;
            # callers that know the intended config pass it explicitly
            resumed = engine.resume(
                sources=payload.get("sources"),
                variables=payload.get("variables"),
            )
            recovery = resumed.recovery
            body = {
                "ok": resumed.ok,
                "adopted": len(recovery.adopted) if recovery else 0,
            }
        elif op == "chaos":
            # fault injection scoped to this tenant's private planes
            rate = float(payload.get("transient_rate", 0.0))
            providers = payload.get("providers") or sorted(
                engine.gateway.planes
            )
            for name in providers:
                plane = engine.gateway.planes.get(name)
                if plane is not None:
                    plane.faults.set_transient_rate(rate)
            body = {"transient_rate": rate, "providers": list(providers)}
        elif op == "stats":
            body = {"resources": len(engine.state), **session.describe()}
        else:  # unreachable: admission filters unknown ops
            raise RuntimeError(f"unknown op {op!r}")
        if mutating and self.policy.persist_every_op:
            session.persist()
        return body

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        fairness = goodput_fairness_ratio(self.goodput)
        PERF.gauge("service.fairness_ratio", fairness)
        PERF.gauge("service.active_tenants", len(self.sessions))
        return {
            "state": self._state,
            "mode": self.ladder.mode,
            "mode_transitions": self.ladder.transitions,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": dict(sorted(self.shed.items())),
            "shed_total": sum(self.shed.values()),
            "queue_depth": len(self.queue),
            "active_tenants": len(self.sessions),
            "goodput": dict(sorted(self.goodput.items())),
            "fairness_ratio": fairness,
            "latency": self.latency.to_dict(),
            "queue_wait": self.queue_wait.to_dict(),
            "breakers": self.breakers.states(),
        }


def _tenant_seed(tenant: str) -> int:
    """Deterministic per-tenant engine seed (stable across restarts)."""
    seed = 0
    for ch in tenant:
        seed = (seed * 131 + ord(ch)) & 0x7FFFFFFF
    return seed
