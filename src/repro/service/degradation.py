"""The graceful-degradation ladder: normal -> brownout -> read-only.

Overload policy in one place, driven by queue pressure (queued depth as
a fraction of capacity):

* **normal** -- everything admitted that clears rate/quota checks.
* **brownout** -- requests below the priority floor are shed at
  admission, and already-queued low-priority work may be evicted. The
  adversarial (priority 0) tier pays first.
* **read-only** -- the apply pool is saturated past recovery at current
  demand; only non-mutating ops (``plan``/``drift``/``stats``) are
  admitted so observability stays up while the backlog drains. This is
  the "drift watching stays available during an apply storm" guarantee.

Transitions use hysteresis: the ladder climbs at ``*_up`` thresholds
and only descends after pressure falls below the matching ``*_down``
threshold, so a queue oscillating around a boundary does not flap the
mode (and with it, the shed behavior) every scheduler tick.
"""

from __future__ import annotations

MODE_NORMAL = "normal"
MODE_BROWNOUT = "brownout"
MODE_READ_ONLY = "read-only"

_LADDER = (MODE_NORMAL, MODE_BROWNOUT, MODE_READ_ONLY)


class DegradationLadder:
    """Hysteretic overload-mode state machine."""

    def __init__(
        self,
        brownout_up: float = 0.70,
        brownout_down: float = 0.40,
        read_only_up: float = 0.90,
        read_only_down: float = 0.60,
        brownout_priority_floor: int = 1,
    ):
        if not (0.0 < brownout_down < brownout_up <= 1.0):
            raise ValueError("brownout thresholds must satisfy 0 < down < up <= 1")
        if not (brownout_up <= read_only_up <= 1.0):
            raise ValueError("read-only trip must be at or above brownout trip")
        if not (0.0 < read_only_down < read_only_up):
            raise ValueError("read-only release must sit below its trip")
        self.brownout_up = brownout_up
        self.brownout_down = brownout_down
        self.read_only_up = read_only_up
        self.read_only_down = read_only_down
        self.brownout_priority_floor = brownout_priority_floor
        self.mode = MODE_NORMAL
        self.transitions = 0

    def update(self, pressure: float) -> str:
        """Advance the ladder for the current queue ``pressure`` (0..1+)."""
        previous = self.mode
        if self.mode == MODE_NORMAL:
            if pressure >= self.read_only_up:
                self.mode = MODE_READ_ONLY
            elif pressure >= self.brownout_up:
                self.mode = MODE_BROWNOUT
        elif self.mode == MODE_BROWNOUT:
            if pressure >= self.read_only_up:
                self.mode = MODE_READ_ONLY
            elif pressure < self.brownout_down:
                self.mode = MODE_NORMAL
        else:  # read-only
            if pressure < self.read_only_down:
                # Step down one rung, never straight to normal -- the
                # backlog that tripped read-only is still draining.
                self.mode = (
                    MODE_NORMAL
                    if pressure < self.brownout_down
                    else MODE_BROWNOUT
                )
        if self.mode != previous:
            self.transitions += 1
        return self.mode

    def sheds_priority(self, priority: int) -> bool:
        """Does the current mode shed a request at this priority?"""
        return (
            self.mode != MODE_NORMAL
            and priority < self.brownout_priority_floor
        )

    @property
    def read_only(self) -> bool:
        return self.mode == MODE_READ_ONLY

    def rung(self) -> int:
        return _LADDER.index(self.mode)
