"""A minimal stdlib-asyncio HTTP front end for the service.

Just enough HTTP/1.1 to drive :class:`ControlPlaneService` from curl or
a load generator -- no framework, no dependency, one connection per
request (``Connection: close``):

    GET  /healthz                  -> 200 {"state": ..., "mode": ...}
    GET  /stats                    -> 200 full service stats
    POST /v1/<tenant>/<op>         -> typed ServiceResponse as JSON

The POST body (optional) is a JSON object passed through as the op
payload; ``priority`` and ``deadline_s`` ride as top-level keys. The
HTTP status code IS the typed admission answer (200/400/409/429/503/
504), so a load balancer's retry policy can read shed-vs-retry straight
off the wire.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from .core import ControlPlaneService

_MAX_BODY = 1 << 20  # 1 MiB request-body cap


class ServiceHTTPD:
    """asyncio.start_server wrapper around one ControlPlaneService."""

    def __init__(
        self,
        service: ControlPlaneService,
        host: str = "127.0.0.1",
        port: int = 8787,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None and self._server.sockets
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    # -- request handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body = await self._respond(reader)
        except Exception as exc:
            status, body = 500, {"error": str(exc)}
        payload = json.dumps(body).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + payload)
            await writer.drain()
        finally:
            writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any]]:
        request_line = (await reader.readline()).decode("ascii", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0], parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("ascii", "replace")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = min(int(value.strip()), _MAX_BODY)
                except ValueError:
                    return 400, {"error": "bad content-length"}
        if method == "GET" and path == "/healthz":
            stats = self.service.stats()
            return 200, {"state": stats["state"], "mode": stats["mode"]}
        if method == "GET" and path == "/stats":
            return 200, self.service.stats()
        if method == "POST" and path.startswith("/v1/"):
            segments = path.strip("/").split("/")
            if len(segments) != 3:
                return 404, {"error": "expected /v1/<tenant>/<op>"}
            _, tenant, op = segments
            raw = await reader.readexactly(content_length)
            try:
                payload = json.loads(raw) if raw else {}
            except ValueError:
                return 400, {"error": "body is not JSON"}
            if not isinstance(payload, dict):
                return 400, {"error": "body must be a JSON object"}
            priority = payload.pop("priority", None)
            deadline_s = payload.pop("deadline_s", None)
            response = await self.service.request(
                tenant, op, payload=payload,
                priority=priority, deadline_s=deadline_s,
            )
            return response.status, {
                "tenant": response.tenant,
                "op": response.op,
                "status": response.status,
                "reason": response.reason,
                "body": response.body,
                "queued_s": round(response.queued_s, 6),
                "service_s": round(response.service_s, 6),
            }
        return 404, {"error": f"no route for {method} {path}"}


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}
