"""Per-tenant circuit breakers for the service tier.

A tenant whose operations keep failing (broken estate config, a cloud
partition that dooms its region, a poisoned workload) should fast-fail
at admission instead of burning apply-pool slots on doomed work. The
breaker is the classic three-state machine:

* **closed** -- requests flow; consecutive failures count up.
* **open** -- requests shed with ``circuit-open`` until the cooldown
  elapses.
* **half-open** -- one probe request is let through; success closes the
  breaker, failure re-opens it with the cooldown reset.

These compose with the per-partition breakers inside the engine's cloud
resilience layer (PR 5): the engine breaker protects a *provider
partition* shared by everyone, this one protects the *pool* from a
single tenant. A tenant can also trip here simply because its partition
breaker keeps failing its applies -- the two tiers reinforce each other.
"""

from __future__ import annotations

from typing import Dict

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown and half-open probe."""

    __slots__ = ("threshold", "cooldown_s", "state", "failures", "opened_at")

    def __init__(self, threshold: int = 5, cooldown_s: float = 10.0):
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self.state = STATE_CLOSED
        self.failures = 0
        self.opened_at = 0.0

    def allow(self, now: float) -> bool:
        if self.state == STATE_CLOSED:
            return True
        if self.state == STATE_OPEN:
            if now - self.opened_at >= self.cooldown_s:
                self.state = STATE_HALF_OPEN
                return True
            return False
        # half-open: the single probe is already in flight
        return False

    def record_success(self) -> None:
        self.state = STATE_CLOSED
        self.failures = 0

    def record_failure(self, now: float) -> None:
        if self.state == STATE_HALF_OPEN:
            self.state = STATE_OPEN
            self.opened_at = now
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self.state = STATE_OPEN
            self.opened_at = now


class TenantBreakerBank:
    """Lazy per-tenant breakers sharing one threshold/cooldown policy."""

    def __init__(self, threshold: int = 5, cooldown_s: float = 10.0):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._breakers: Dict[str, CircuitBreaker] = {}

    def of(self, tenant: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(self.threshold, self.cooldown_s)
            self._breakers[tenant] = breaker
        return breaker

    def states(self) -> Dict[str, str]:
        return {t: b.state for t, b in self._breakers.items()}
