"""The admission tier: typed rejection, rate limits, quotas.

Every request either clears admission and enters the bounded queue, or
leaves immediately with a *typed* rejection -- the 429/503/504 family a
real control plane returns instead of hanging. The distinction matters
under overload: a shed request costs the service almost nothing, while
an accepted request is a promise (it will either execute or come back
with a deadline rejection, never vanish).

Admission composes, in order:

1. **service state** -- a stopped/killed service sheds everything;
2. **degradation mode** -- read-only mode sheds mutating ops, brownout
   sheds below the priority floor (:mod:`repro.service.degradation`);
3. **per-tenant circuit breaker** -- a tenant whose ops keep failing is
   fast-failed while the breaker cools (:mod:`repro.service.breakers`);
4. **per-tenant token bucket** -- sustained request rate;
5. **per-tenant concurrency quota** -- queued + in-flight ceiling;
6. **global queue bound** -- the backstop that keeps queueing delay
   (and memory) finite.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

# -- typed rejection reasons ---------------------------------------------------

REJECT_QUEUE_FULL = "queue-full"  # global admission queue at capacity
REJECT_RATE_LIMITED = "rate-limited"  # tenant token bucket empty
REJECT_TENANT_QUOTA = "tenant-quota"  # tenant queued+inflight ceiling
REJECT_CIRCUIT_OPEN = "circuit-open"  # tenant breaker cooling down
REJECT_READ_ONLY = "read-only"  # degradation: mutating op shed
REJECT_BROWNOUT = "brownout-shed"  # degradation: priority below floor
REJECT_DEADLINE = "deadline-exceeded"  # expired while queued
REJECT_STALE_SESSION = "stale-session"  # zombie fenced out by a newer lease
REJECT_SHUTDOWN = "shutting-down"  # service stopping/killed
REJECT_UNKNOWN_OP = "unknown-op"

#: rejection reason -> HTTP-style status code (the typed contract the
#: zero-hangs gate checks: every response carries one of these or 200)
STATUS_OF: Dict[str, int] = {
    REJECT_QUEUE_FULL: 429,
    REJECT_RATE_LIMITED: 429,
    REJECT_TENANT_QUOTA: 429,
    REJECT_CIRCUIT_OPEN: 503,
    REJECT_READ_ONLY: 503,
    REJECT_BROWNOUT: 503,
    REJECT_SHUTDOWN: 503,
    REJECT_DEADLINE: 504,
    REJECT_STALE_SESSION: 409,
    REJECT_UNKNOWN_OP: 400,
}

#: ops servable in read-only degradation (no estate mutation)
READ_ONLY_OPS = frozenset({"plan", "drift", "stats"})

#: every op the service serves
SERVICE_OPS = frozenset(
    {"plan", "apply", "drift", "resume", "chaos", "stats"}
)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def allow(self, now: float, cost: float = 1.0) -> bool:
        if now > self.stamp:
            self.tokens = min(
                self.burst, self.tokens + (now - self.stamp) * self.rate
            )
            self.stamp = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


@dataclasses.dataclass
class TenantQuota:
    """Per-tenant admission knobs (the default applies to everyone)."""

    rate_rps: float = 200.0  # token-bucket refill
    burst: float = 50.0  # token-bucket capacity
    max_pending: int = 8  # queued + in-flight ceiling
    priority: int = 1  # brownout sheds below the floor first
    weight: float = 1.0  # weighted-fair scheduler share


class AdmissionController:
    """Stateless checks 4-6 of the admission ladder (rate/quota/queue)."""

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        max_queue_depth: int = 256,
    ):
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.max_queue_depth = max_queue_depth
        self._buckets: Dict[str, TokenBucket] = {}

    def quota_of(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def check(
        self,
        tenant: str,
        now: float,
        queue_depth: int,
        tenant_pending: int,
    ) -> Optional[str]:
        """The typed rejection reason, or ``None`` to admit."""
        quota = self.quota_of(tenant)
        bucket = self._buckets.get(tenant)
        if bucket is None or bucket.rate != quota.rate_rps:
            bucket = TokenBucket(quota.rate_rps, quota.burst, now)
            self._buckets[tenant] = bucket
        if not bucket.allow(now):
            return REJECT_RATE_LIMITED
        if tenant_pending >= quota.max_pending:
            return REJECT_TENANT_QUOTA
        if queue_depth >= self.max_queue_depth:
            return REJECT_QUEUE_FULL
        return None
