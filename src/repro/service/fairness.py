"""Weighted-fair scheduling of admitted requests across tenants.

Stride scheduling over per-tenant FIFO backlogs: each tenant carries a
virtual *pass*; dispatching one of its requests advances the pass by
``stride = SCALE / weight``. The scheduler always serves the backlogged
tenant with the smallest pass, so over any window each tenant's share
of dispatches converges to its weight share -- a noisy neighbor with
weight 1 among N weight-1 tenants gets 1/N of the pool no matter how
hard it floods the queue. Ties break on tenant id, keeping dispatch
order deterministic for a fixed arrival schedule.

The queue is also the brownout valve: ``shed_lowest_priority`` evicts
backlogged requests from the bottom priority band up, newest first, so
load shedding eats the adversarial tier before it touches anyone else.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

_STRIDE_SCALE = 1 << 20


class WeightedFairQueue:
    """Per-tenant FIFOs dispatched by stride scheduling."""

    def __init__(self):
        self._backlogs: Dict[str, Deque[object]] = {}
        self._weights: Dict[str, float] = {}
        self._passes: Dict[str, float] = {}
        self._depth = 0

    def __len__(self) -> int:
        return self._depth

    def pending(self, tenant: str) -> int:
        backlog = self._backlogs.get(tenant)
        return len(backlog) if backlog else 0

    def push(self, tenant: str, item: object, weight: float = 1.0) -> None:
        backlog = self._backlogs.get(tenant)
        if backlog is None:
            backlog = deque()
            self._backlogs[tenant] = backlog
        self._weights[tenant] = max(1e-6, weight)
        if tenant not in self._passes:
            # Late joiners start at the current minimum pass, not zero --
            # otherwise a fresh tenant would monopolize dispatch until it
            # "caught up" with everyone's accumulated stride.
            backlogged = [
                p
                for t, p in self._passes.items()
                if self._backlogs.get(t)
            ]
            self._passes[tenant] = min(backlogged) if backlogged else 0.0
        backlog.append(item)
        self._depth += 1

    def pop(self) -> Optional[Tuple[str, object]]:
        """Dispatch from the backlogged tenant with the smallest pass."""
        best: Optional[str] = None
        best_pass = 0.0
        for tenant, backlog in self._backlogs.items():
            if not backlog:
                continue
            tenant_pass = self._passes[tenant]
            if (
                best is None
                or tenant_pass < best_pass
                or (tenant_pass == best_pass and tenant < best)
            ):
                best = tenant
                best_pass = tenant_pass
        if best is None:
            return None
        item = self._backlogs[best].popleft()
        self._passes[best] = best_pass + _STRIDE_SCALE / self._weights[best]
        self._depth -= 1
        return best, item

    def shed_lowest_priority(
        self, count: int, priority_of, below: Optional[int] = None
    ) -> List[Tuple[str, object]]:
        """Evict up to ``count`` backlogged items, lowest priority first.

        Within a priority band, evicts newest-queued first (the request
        that has waited least loses the least invested work).
        ``priority_of(item)`` maps a queued item to its priority;
        ``below`` restricts eviction to items strictly under that
        priority (the brownout floor), leaving the rest untouched.
        """
        if count <= 0 or self._depth == 0:
            return []
        indexed: List[Tuple[int, str, int, object]] = []
        for tenant, backlog in self._backlogs.items():
            for position, item in enumerate(backlog):
                priority = priority_of(item)
                if below is not None and priority >= below:
                    continue
                indexed.append((priority, tenant, position, item))
        indexed.sort(key=lambda row: (row[0], -row[2], row[1]))
        victims = indexed[:count]
        shed: List[Tuple[str, object]] = []
        for _, tenant, _, item in victims:
            self._backlogs[tenant].remove(item)
            self._depth -= 1
            shed.append((tenant, item))
        return shed

    def drain_all(self) -> List[Tuple[str, object]]:
        """Empty every backlog (shutdown path); returns what was queued."""
        out: List[Tuple[str, object]] = []
        for tenant, backlog in self._backlogs.items():
            while backlog:
                out.append((tenant, backlog.popleft()))
        self._depth = 0
        return out
