"""Multi-tenant control-plane service (paper 3.x "cloudless" hosting).

The paper's pitch is cloud management *as a service*: many tenants'
estates managed behind one long-running control plane instead of one
CLI process per operator. This package is that tier over the simulated
engine -- admission control with typed load shedding, per-tenant estate
isolation with lease-fenced sessions, weighted-fair scheduling, circuit
breakers, and a graceful-degradation ladder that keeps read paths
(drift watching) alive while the apply pool is saturated.
"""

from .admission import (
    READ_ONLY_OPS,
    REJECT_BROWNOUT,
    REJECT_CIRCUIT_OPEN,
    REJECT_DEADLINE,
    REJECT_QUEUE_FULL,
    REJECT_RATE_LIMITED,
    REJECT_READ_ONLY,
    REJECT_SHUTDOWN,
    REJECT_STALE_SESSION,
    REJECT_TENANT_QUOTA,
    REJECT_UNKNOWN_OP,
    SERVICE_OPS,
    STATUS_OF,
    AdmissionController,
    TenantQuota,
    TokenBucket,
)
from .breakers import CircuitBreaker, TenantBreakerBank
from .core import ControlPlaneService, ServicePolicy, ServiceResponse
from .degradation import (
    MODE_BROWNOUT,
    MODE_NORMAL,
    MODE_READ_ONLY,
    DegradationLadder,
)
from .fairness import WeightedFairQueue
from .httpd import ServiceHTTPD
from .tenants import (
    SESSION_TTL_S,
    SessionFencedError,
    TenantHome,
    TenantSession,
    coordination_plane,
    reset_coordination_planes,
)

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "ControlPlaneService",
    "DegradationLadder",
    "MODE_BROWNOUT",
    "MODE_NORMAL",
    "MODE_READ_ONLY",
    "READ_ONLY_OPS",
    "REJECT_BROWNOUT",
    "REJECT_CIRCUIT_OPEN",
    "REJECT_DEADLINE",
    "REJECT_QUEUE_FULL",
    "REJECT_RATE_LIMITED",
    "REJECT_READ_ONLY",
    "REJECT_SHUTDOWN",
    "REJECT_STALE_SESSION",
    "REJECT_TENANT_QUOTA",
    "REJECT_UNKNOWN_OP",
    "SERVICE_OPS",
    "SESSION_TTL_S",
    "STATUS_OF",
    "ServiceHTTPD",
    "ServicePolicy",
    "ServiceResponse",
    "SessionFencedError",
    "TenantBreakerBank",
    "TenantHome",
    "TenantQuota",
    "TenantSession",
    "TokenBucket",
    "WeightedFairQueue",
    "coordination_plane",
    "reset_coordination_planes",
]
