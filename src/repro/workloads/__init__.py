"""Workload generators, config mutators, and traffic traces."""

from .mutate import ConfigMutator, Mutation, MutationError
from .topologies import (
    hub_spoke,
    microservices,
    ml_training,
    multi_cloud,
    random_dag_estate,
    scale_estate,
    scale_estate_sharded,
    sized_estate,
    two_region_estate,
    vpn_site,
    web_tier,
)
from .traffic import (
    TracePoint,
    diurnal_trace,
    distribute_demand,
    ramp_surge_trace,
)

__all__ = [
    "ConfigMutator",
    "Mutation",
    "MutationError",
    "TracePoint",
    "diurnal_trace",
    "distribute_demand",
    "hub_spoke",
    "microservices",
    "ml_training",
    "multi_cloud",
    "ramp_surge_trace",
    "random_dag_estate",
    "scale_estate",
    "scale_estate_sharded",
    "sized_estate",
    "two_region_estate",
    "vpn_site",
    "web_tier",
]
