"""Synthetic traffic traces for the autoscaling experiments (E9).

Generates demand time series (Mbps, CPU%, requests/s) with diurnal
ramps, step surges, and noise -- the load that drives the custom-metric
autoscaling policies from 3.6.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Callable, List, Tuple


@dataclasses.dataclass
class TracePoint:
    t: float
    value: float


def ramp_surge_trace(
    duration_s: float = 3600.0,
    step_s: float = 30.0,
    base: float = 300.0,
    peak: float = 2400.0,
    surge_start: float = 0.25,
    surge_end: float = 0.70,
    noise: float = 0.05,
    seed: int = 0,
) -> List[TracePoint]:
    """Demand ramps up to a surge plateau and back down.

    The canonical shape for scale-out-then-scale-in: utilization crosses
    the high watermark on the way up and the low watermark after the
    surge passes.
    """
    rng = random.Random(seed)
    out: List[TracePoint] = []
    t = 0.0
    while t <= duration_s:
        phase = t / duration_s
        if phase < surge_start:
            demand = base + (peak - base) * (phase / surge_start) * 0.2
        elif phase < surge_end:
            ramp = (phase - surge_start) / (surge_end - surge_start)
            demand = base + (peak - base) * min(1.0, ramp * 2.0)
        else:
            cool = (phase - surge_end) / max(1e-9, 1.0 - surge_end)
            demand = peak - (peak - base) * cool
        demand *= 1.0 + rng.uniform(-noise, noise)
        out.append(TracePoint(t=t, value=max(0.0, demand)))
        t += step_s
    return out


def diurnal_trace(
    duration_s: float = 6 * 3600.0,
    step_s: float = 60.0,
    base: float = 200.0,
    peak: float = 1500.0,
    period_s: float = 3 * 3600.0,
    noise: float = 0.08,
    seed: int = 0,
) -> List[TracePoint]:
    """Sinusoidal day/night demand."""
    rng = random.Random(seed)
    out: List[TracePoint] = []
    t = 0.0
    while t <= duration_s:
        wave = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / period_s))
        demand = base + (peak - base) * wave
        demand *= 1.0 + rng.uniform(-noise, noise)
        out.append(TracePoint(t=t, value=max(0.0, demand)))
        t += step_s
    return out


def distribute_demand(
    total: float, instances: int, capacity: float
) -> Tuple[List[float], float]:
    """Spread demand over instances; returns (per-instance load, dropped).

    Load balances evenly; anything beyond aggregate capacity is dropped
    (the SLO-violation signal E9 integrates over time).
    """
    if instances <= 0:
        return [], total
    per_instance = total / instances
    served = min(per_instance, capacity)
    dropped = max(0.0, total - served * instances)
    return [served] * instances, dropped
