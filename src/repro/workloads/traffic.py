"""Synthetic traffic: autoscaling traces (E9) and service load models.

Two generations of load live here:

* **Demand traces** (``ramp_surge_trace``, ``diurnal_trace``) -- time
  series of aggregate demand (Mbps, CPU%, requests/s) that drive the
  custom-metric autoscaling policies from 3.6.
* **Request-level arrival models** -- the synthetic tenants that hammer
  the multi-tenant control-plane service (:mod:`repro.service`):
  open-loop Poisson arrivals (offered load independent of service
  speed, the saturation probe), closed-loop think-time clients (load
  self-throttles with latency), seeded tenant mixes
  (steady / bursty / adversarial noisy-neighbor), and
  :class:`LatencyHistogram` for p50/p99/p999 tail accounting.

Everything is seeded: the same ``seed`` reproduces the same arrival
schedule down to the request, which is what lets the service benchmark
gate fairness ratios and the chaos runner replay a storm.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Callable, Dict, Iterable, List, Optional, Tuple


@dataclasses.dataclass
class TracePoint:
    t: float
    value: float


def ramp_surge_trace(
    duration_s: float = 3600.0,
    step_s: float = 30.0,
    base: float = 300.0,
    peak: float = 2400.0,
    surge_start: float = 0.25,
    surge_end: float = 0.70,
    noise: float = 0.05,
    seed: int = 0,
) -> List[TracePoint]:
    """Demand ramps up to a surge plateau and back down.

    The canonical shape for scale-out-then-scale-in: utilization crosses
    the high watermark on the way up and the low watermark after the
    surge passes.
    """
    rng = random.Random(seed)
    out: List[TracePoint] = []
    t = 0.0
    while t <= duration_s:
        phase = t / duration_s
        if phase < surge_start:
            demand = base + (peak - base) * (phase / surge_start) * 0.2
        elif phase < surge_end:
            ramp = (phase - surge_start) / (surge_end - surge_start)
            demand = base + (peak - base) * min(1.0, ramp * 2.0)
        else:
            cool = (phase - surge_end) / max(1e-9, 1.0 - surge_end)
            demand = peak - (peak - base) * cool
        demand *= 1.0 + rng.uniform(-noise, noise)
        out.append(TracePoint(t=t, value=max(0.0, demand)))
        t += step_s
    return out


def diurnal_trace(
    duration_s: float = 6 * 3600.0,
    step_s: float = 60.0,
    base: float = 200.0,
    peak: float = 1500.0,
    period_s: float = 3 * 3600.0,
    noise: float = 0.08,
    seed: int = 0,
) -> List[TracePoint]:
    """Sinusoidal day/night demand."""
    rng = random.Random(seed)
    out: List[TracePoint] = []
    t = 0.0
    while t <= duration_s:
        wave = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / period_s))
        demand = base + (peak - base) * wave
        demand *= 1.0 + rng.uniform(-noise, noise)
        out.append(TracePoint(t=t, value=max(0.0, demand)))
        t += step_s
    return out


def distribute_demand(
    total: float, instances: int, capacity: float
) -> Tuple[List[float], float]:
    """Spread demand over instances; returns (per-instance load, dropped).

    Load balances evenly; anything beyond aggregate capacity is dropped
    (the SLO-violation signal E9 integrates over time).
    """
    if instances <= 0:
        return [], total
    per_instance = total / instances
    served = min(per_instance, capacity)
    dropped = max(0.0, total - served * instances)
    return [served] * instances, dropped


# -- request-level arrival models (service load) ------------------------------


@dataclasses.dataclass
class Arrival:
    """One synthetic request: who sends what, when."""

    t: float  # seconds from harness start
    tenant: str
    op: str = "apply"
    priority: int = 1


def open_loop_arrivals(
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
    tenant: str = "t00",
    op: str = "apply",
    priority: int = 1,
) -> List[Arrival]:
    """Poisson arrivals: exponential inter-arrival gaps at ``rate_rps``.

    Open loop means the generator never waits for responses -- offered
    load is independent of how slow the service gets, which is the only
    honest way to probe saturation (a closed-loop client politely backs
    off exactly when you want the pressure).
    """
    if rate_rps <= 0 or duration_s <= 0:
        return []
    rng = random.Random(seed)
    out: List[Arrival] = []
    t = rng.expovariate(rate_rps)
    while t < duration_s:
        out.append(Arrival(t=t, tenant=tenant, op=op, priority=priority))
        t += rng.expovariate(rate_rps)
    return out


def closed_loop_think_times(
    mean_think_s: float, n: int, seed: int = 0
) -> List[float]:
    """Exponential think times for one closed-loop client.

    A closed-loop client issues a request, waits for the response, then
    thinks for the next draw before issuing again -- so its offered load
    is ``concurrency / (latency + think)`` and shrinks as the service
    slows down. The draws are returned up front so a driver can replay
    the same client behavior deterministically.
    """
    if n <= 0:
        return []
    rng = random.Random(seed)
    if mean_think_s <= 0:
        return [0.0] * n
    return [rng.expovariate(1.0 / mean_think_s) for _ in range(n)]


@dataclasses.dataclass
class TenantProfile:
    """One synthetic tenant's shape in a mix."""

    tenant: str
    kind: str = "steady"  # steady | bursty | noisy
    rate_rps: float = 10.0
    priority: int = 1
    weight: float = 1.0
    op: str = "apply"


def tenant_mix(
    steady: int = 4,
    bursty: int = 0,
    noisy: int = 0,
    base_rate_rps: float = 10.0,
    noisy_factor: float = 8.0,
    seed: int = 0,
) -> List[TenantProfile]:
    """A seeded tenant population: well-behaved, bursty, adversarial.

    Steady tenants offer ``base_rate_rps`` each; bursty tenants offer
    the same average in on/off bursts; noisy tenants (the adversaries)
    offer ``noisy_factor`` times a steady tenant's rate at low priority
    -- the fairness gates check they cannot starve the steady tenants.
    """
    profiles: List[TenantProfile] = []
    index = 0
    for _ in range(max(0, steady)):
        profiles.append(
            TenantProfile(
                tenant=f"t{index:02d}", kind="steady",
                rate_rps=base_rate_rps, priority=1,
            )
        )
        index += 1
    for _ in range(max(0, bursty)):
        profiles.append(
            TenantProfile(
                tenant=f"t{index:02d}", kind="bursty",
                rate_rps=base_rate_rps, priority=1,
            )
        )
        index += 1
    for _ in range(max(0, noisy)):
        profiles.append(
            TenantProfile(
                tenant=f"t{index:02d}", kind="noisy",
                rate_rps=base_rate_rps * noisy_factor, priority=0,
            )
        )
        index += 1
    return profiles


def mixed_arrivals(
    profiles: Iterable[TenantProfile],
    duration_s: float,
    seed: int = 0,
    burst_period_s: float = 1.0,
    burst_duty: float = 0.25,
) -> List[Arrival]:
    """Merge every profile's arrival process into one sorted schedule.

    Each tenant derives its own RNG from ``(seed, tenant)``, so adding
    a tenant never perturbs another tenant's schedule. Bursty tenants
    compress their offered load into the first ``burst_duty`` fraction
    of every ``burst_period_s`` window (same average rate, spiky
    instantaneous rate).
    """
    out: List[Arrival] = []
    for profile in profiles:
        sub_seed = (seed * 1000003 + _tenant_salt(profile.tenant)) & 0x7FFFFFFF
        if profile.kind == "bursty":
            rate = profile.rate_rps / max(1e-9, burst_duty)
            for arrival in open_loop_arrivals(
                rate, duration_s, seed=sub_seed, tenant=profile.tenant,
                op=profile.op, priority=profile.priority,
            ):
                phase = math.fmod(arrival.t, burst_period_s) / burst_period_s
                if phase <= burst_duty:
                    out.append(arrival)
        else:
            out.extend(
                open_loop_arrivals(
                    profile.rate_rps, duration_s, seed=sub_seed,
                    tenant=profile.tenant, op=profile.op,
                    priority=profile.priority,
                )
            )
    out.sort(key=lambda a: (a.t, a.tenant))
    return out


def _tenant_salt(tenant: str) -> int:
    salt = 0
    for ch in tenant:
        salt = (salt * 131 + ord(ch)) & 0x7FFFFFFF
    return salt


# -- latency accounting --------------------------------------------------------


class LatencyHistogram:
    """Log-bucketed latency histogram with tail percentiles.

    Buckets are a fixed geometric grid from ``min_s`` upward (ratio
    ``growth`` per bucket), so two histograms built with the same
    parameters merge bucket-for-bucket and percentile math is
    deterministic: ``percentile(q)`` returns the upper edge of the
    first bucket whose cumulative count reaches ``q`` of the total --
    an overestimate by at most one ``growth`` factor, never an
    underestimate.
    """

    def __init__(
        self,
        min_s: float = 1e-4,
        max_s: float = 3600.0,
        growth: float = 1.5,
    ):
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.min_s = min_s
        self.growth = growth
        bounds: List[float] = []
        edge = min_s
        while edge < max_s:
            bounds.append(edge)
            edge *= growth
        bounds.append(math.inf)
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def bucket_of(self, seconds: float) -> int:
        """Index of the bucket a value lands in (for the tests' oracle)."""
        if seconds <= self.min_s:
            return 0
        index = int(
            math.ceil(
                math.log(seconds / self.min_s) / math.log(self.growth)
                - 1e-12
            )
        )
        return min(index, len(self.bounds) - 1)

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self.counts[self.bucket_of(seconds)] += 1
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different grids")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total_s += other.total_s
        self.max_s = max(self.max_s, other.max_s)

    def percentile(self, q: float) -> float:
        """Upper bucket edge covering quantile ``q`` (0 < q <= 1)."""
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        target = max(1, math.ceil(q * self.count))
        running = 0
        for index, n in enumerate(self.counts):
            running += n
            if running >= target:
                if index == len(self.bounds) - 1:
                    return self.max_s
                return self.bounds[index]
        return self.max_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def p999(self) -> float:
        return self.percentile(0.999)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": round(self.mean_s, 6),
            "p50_s": round(self.p50, 6),
            "p99_s": round(self.p99, 6),
            "p999_s": round(self.p999, 6),
            "max_s": round(self.max_s, 6),
        }


def goodput_fairness_ratio(goodput: Dict[str, int]) -> float:
    """Max/min completed-request ratio across tenants (1.0 == fair).

    Only tenants with at least one completion participate; a tenant
    starved to zero makes the ratio infinite, which is exactly what the
    fairness gate should see.
    """
    counts = [n for n in goodput.values() if n > 0]
    if not counts:
        return 0.0
    if len(counts) < len(goodput):
        return math.inf
    return max(counts) / min(counts)
