"""Configuration mutators for the validation study (E6).

Each mutator plants one realistic configuration error in a valid
program -- the classes of mistakes 3.2 catalogues. The mutation record
carries the *level* at which a validator should first be able to catch
it (``types`` or ``rules``), so the benchmark can score each pipeline
level's catch rate; everything here is syntax-clean by construction,
which is exactly the paper's point about today's ``terraform validate``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, List, Optional, Tuple

from ..lang.ast_nodes import AttrAccess, Attribute, ListExpr, Literal, ScopeRef
from ..lang.config import Configuration, ResourceDecl
from ..lang.diagnostics import SourceSpan
from ..types.schema import SchemaRegistry


@dataclasses.dataclass
class Mutation:
    """One planted configuration error."""

    kind: str
    target: str  # resource address text
    attr: str
    description: str
    catchable_at: str  # "types" | "rules" -- earliest catching level


class MutationError(RuntimeError):
    """The mutator found no applicable site in this config."""


def _lit(value) -> Literal:
    return Literal(value, SourceSpan())


def _set_attr(decl: ResourceDecl, name: str, value) -> None:
    decl.body.attributes[name] = Attribute(name, _lit(value), SourceSpan())


class ConfigMutator:
    """Applies one randomly-chosen applicable mutation to a config."""

    def __init__(
        self, registry: Optional[SchemaRegistry] = None, seed: int = 0
    ):
        self.registry = registry or SchemaRegistry.default()
        self.rng = random.Random(seed)

    # each entry: (kind, catchable_at, function(config) -> Mutation)
    def mutators(self) -> List[Tuple[str, Callable[[Configuration], Mutation]]]:
        return [
            ("unknown_attr", self.mutate_unknown_attr),
            ("bad_enum", self.mutate_bad_enum),
            ("wrong_ref_type", self.mutate_wrong_ref_type),
            ("drop_required", self.mutate_drop_required),
            ("invalid_cidr", self.mutate_invalid_cidr),
            ("bad_region", self.mutate_bad_region),
            ("region_mismatch", self.mutate_region_mismatch),
            ("cidr_outside_parent", self.mutate_cidr_outside_parent),
            ("password_rule", self.mutate_password_rule),
            ("duplicate_name", self.mutate_duplicate_name),
        ]

    def apply_random(self, config: Configuration) -> Mutation:
        """Apply one applicable mutation chosen uniformly at random."""
        options = list(self.mutators())
        self.rng.shuffle(options)
        for kind, fn in options:
            try:
                return fn(config)
            except MutationError:
                continue
        raise MutationError("no mutation applies to this configuration")

    def apply_kind(self, config: Configuration, kind: str) -> Mutation:
        for name, fn in self.mutators():
            if name == kind:
                return fn(config)
        raise KeyError(kind)

    # -- helpers ----------------------------------------------------------------

    def _managed(self, config: Configuration) -> List[ResourceDecl]:
        return sorted(config.managed_resources(), key=lambda d: d.address)

    def _pick(self, items: List) -> object:
        if not items:
            raise MutationError("no applicable site")
        return self.rng.choice(items)

    # -- type-level mutations (semantic types should catch) ------------------------

    def mutate_unknown_attr(self, config: Configuration) -> Mutation:
        decl = self._pick(self._managed(config))
        _set_attr(decl, "flavour", "strawberry")
        return Mutation(
            kind="unknown_attr",
            target=decl.address,
            attr="flavour",
            description="attribute not in the resource schema",
            catchable_at="types",
        )

    def mutate_bad_enum(self, config: Configuration) -> Mutation:
        sites = []
        for decl in self._managed(config):
            spec = self.registry.spec_for(decl.type)
            if spec is None:
                continue
            for aspec in spec.attributes.values():
                if aspec.enum_values and not aspec.computed:
                    sites.append((decl, aspec.name))
        decl, attr = self._pick(sites)
        _set_attr(decl, attr, "not-a-real-value")
        return Mutation(
            kind="bad_enum",
            target=decl.address,
            attr=attr,
            description="enum attribute set to an unsupported value",
            catchable_at="types",
        )

    def mutate_wrong_ref_type(self, config: Configuration) -> Mutation:
        sites = []
        for decl in self._managed(config):
            spec = self.registry.spec_for(decl.type)
            if spec is None:
                continue
            for aspec in spec.reference_attrs():
                if aspec.name not in decl.body.attributes:
                    continue
                wrong = [
                    other
                    for other in self._managed(config)
                    if other.type != (aspec.ref_target or "")
                    and other.type != decl.type
                    and self.registry.provider_of(other.type)
                    == self.registry.provider_of(decl.type)
                ]
                if wrong:
                    sites.append((decl, aspec, wrong))
        decl, aspec, wrong = self._pick(sites)
        other = self.rng.choice(wrong)
        ref_expr = AttrAccess(
            obj=AttrAccess(
                obj=ScopeRef(other.type, SourceSpan()),
                name=other.name,
                span=SourceSpan(),
            ),
            name="id",
            span=SourceSpan(),
        )
        expr = ListExpr([ref_expr], SourceSpan()) if aspec.is_ref_list else ref_expr
        decl.body.attributes[aspec.name] = Attribute(
            aspec.name, expr, SourceSpan()
        )
        return Mutation(
            kind="wrong_ref_type",
            target=decl.address,
            attr=aspec.name,
            description=f"references a {other.type} where a "
            f"{aspec.ref_target} id is expected",
            catchable_at="types",
        )

    def mutate_drop_required(self, config: Configuration) -> Mutation:
        sites = []
        for decl in self._managed(config):
            spec = self.registry.spec_for(decl.type)
            if spec is None:
                continue
            for aspec in spec.required_attrs():
                if aspec.name in decl.body.attributes and aspec.name != "name":
                    sites.append((decl, aspec.name))
        decl, attr = self._pick(sites)
        del decl.body.attributes[attr]
        return Mutation(
            kind="drop_required",
            target=decl.address,
            attr=attr,
            description="required attribute removed",
            catchable_at="types",
        )

    def mutate_invalid_cidr(self, config: Configuration) -> Mutation:
        sites = []
        for decl in self._managed(config):
            spec = self.registry.spec_for(decl.type)
            if spec is None:
                continue
            for aspec in spec.attributes.values():
                if aspec.semantic == "cidr" and aspec.name in decl.body.attributes:
                    sites.append((decl, aspec.name))
        decl, attr = self._pick(sites)
        _set_attr(decl, attr, "10.0.0.0/33")
        return Mutation(
            kind="invalid_cidr",
            target=decl.address,
            attr=attr,
            description="syntactically invalid CIDR block",
            catchable_at="types",
        )

    def mutate_bad_region(self, config: Configuration) -> Mutation:
        sites = []
        for decl in self._managed(config):
            spec = self.registry.spec_for(decl.type)
            if spec is None:
                continue
            for aspec in spec.attributes.values():
                if aspec.semantic == "region" and aspec.name in decl.body.attributes:
                    sites.append((decl, aspec.name))
        decl, attr = self._pick(sites)
        _set_attr(decl, attr, "middleearth-1")
        return Mutation(
            kind="bad_region",
            target=decl.address,
            attr=attr,
            description="region that does not exist",
            catchable_at="types",
        )

    # -- rule-level mutations (cross-resource; need the rule engine) -----------------

    def mutate_region_mismatch(self, config: Configuration) -> Mutation:
        vms = [
            d
            for d in self._managed(config)
            if d.type == "azure_virtual_machine"
            and "location" in d.body.attributes
        ]
        decl = self._pick(vms)
        current = decl.body.attributes["location"].expr
        current_value = current.value if isinstance(current, Literal) else None
        regions = self.registry.regions_of("azure")
        others = [r for r in regions if r != current_value]
        _set_attr(decl, "location", self.rng.choice(others))
        return Mutation(
            kind="region_mismatch",
            target=decl.address,
            attr="location",
            description="VM moved to a different region than its NICs",
            catchable_at="rules",
        )

    def mutate_cidr_outside_parent(self, config: Configuration) -> Mutation:
        sites = []
        for decl in self._managed(config):
            if decl.type == "aws_subnet" and "cidr_block" in decl.body.attributes:
                sites.append((decl, "cidr_block"))
            if (
                decl.type == "azure_subnet"
                and "address_prefix" in decl.body.attributes
            ):
                sites.append((decl, "address_prefix"))
        decl, attr = self._pick(sites)
        _set_attr(decl, attr, "192.168.77.0/24")
        return Mutation(
            kind="cidr_outside_parent",
            target=decl.address,
            attr=attr,
            description="subnet prefix outside the parent network range",
            catchable_at="rules",
        )

    def mutate_password_rule(self, config: Configuration) -> Mutation:
        vms = [
            d for d in self._managed(config) if d.type == "azure_virtual_machine"
        ]
        decl = self._pick(vms)
        _set_attr(decl, "admin_password", "Sup3rSecret!")
        decl.body.attributes.pop("disable_password_auth", None)
        return Mutation(
            kind="password_rule",
            target=decl.address,
            attr="admin_password",
            description="password set while password auth is disabled",
            catchable_at="rules",
        )

    def mutate_duplicate_name(self, config: Configuration) -> Mutation:
        by_type = {}
        for decl in self._managed(config):
            attr = decl.body.attributes.get("name")
            if (
                attr is not None
                and isinstance(attr.expr, Literal)
                and decl.count is None
                and decl.for_each is None
            ):
                by_type.setdefault(decl.type, []).append(decl)
        pairs = [v for v in by_type.values() if len(v) >= 2]
        group = self._pick(pairs)
        first, second = group[0], group[1]
        first_name = first.body.attributes["name"].expr
        assert isinstance(first_name, Literal)
        _set_attr(second, "name", first_name.value)
        return Mutation(
            kind="duplicate_name",
            target=second.address,
            attr="name",
            description="two resources share one cloud-visible name",
            catchable_at="rules",
        )
