"""Workload/topology generators.

Parameterized CLC programs for the estate shapes the paper's
introduction motivates -- the substrate every benchmark sweeps over.
All generators return plain source text so benches can re-parse,
mutate, and diff them freely.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional


def web_tier(
    web_vms: int = 3,
    app_vms: int = 2,
    with_lb: bool = True,
    with_db: bool = True,
    name: str = "web",
) -> str:
    """Classic three-tier web stack on the aws-like provider."""
    parts = [
        f'''
resource "aws_vpc" "{name}" {{
  name       = "{name}"
  cidr_block = "10.0.0.0/16"
}}

resource "aws_subnet" "{name}_front" {{
  name       = "{name}-front"
  vpc_id     = aws_vpc.{name}.id
  cidr_block = cidrsubnet(aws_vpc.{name}.cidr_block, 8, 0)
}}

resource "aws_subnet" "{name}_back" {{
  name       = "{name}-back"
  vpc_id     = aws_vpc.{name}.id
  cidr_block = cidrsubnet(aws_vpc.{name}.cidr_block, 8, 1)
}}

resource "aws_security_group" "{name}_sg" {{
  name   = "{name}-sg"
  vpc_id = aws_vpc.{name}.id
}}

resource "aws_network_interface" "{name}_web_nic" {{
  count              = {web_vms}
  name               = "{name}-web-nic-${{count.index}}"
  subnet_id          = aws_subnet.{name}_front.id
  security_group_ids = [aws_security_group.{name}_sg.id]
}}

resource "aws_virtual_machine" "{name}_web" {{
  count   = {web_vms}
  name    = "{name}-web-${{count.index}}"
  size    = "small"
  nic_ids = [aws_network_interface.{name}_web_nic[count.index].id]
  tags    = {{ tier = "web" }}
}}

resource "aws_network_interface" "{name}_app_nic" {{
  count     = {app_vms}
  name      = "{name}-app-nic-${{count.index}}"
  subnet_id = aws_subnet.{name}_back.id
}}

resource "aws_virtual_machine" "{name}_app" {{
  count   = {app_vms}
  name    = "{name}-app-${{count.index}}"
  size    = "medium"
  nic_ids = [aws_network_interface.{name}_app_nic[count.index].id]
  tags    = {{ tier = "app" }}
}}
'''
    ]
    if with_lb:
        parts.append(
            f'''
resource "aws_load_balancer" "{name}_lb" {{
  name          = "{name}-lb"
  subnet_ids    = [aws_subnet.{name}_front.id]
  target_vm_ids = aws_virtual_machine.{name}_web[*].id
}}
'''
        )
    if with_db:
        parts.append(
            f'''
resource "aws_database_instance" "{name}_db" {{
  name       = "{name}-db"
  engine     = "postgres"
  size       = "medium"
  subnet_ids = [aws_subnet.{name}_back.id]
}}
'''
        )
    return "\n".join(parts)


def microservices(
    services: int = 4, vms_per_service: int = 2, name: str = "svc"
) -> str:
    """N independent service stacks sharing one VPC -- a wide graph
    (lots of exploitable parallelism for E1)."""
    parts = [
        f'''
resource "aws_vpc" "{name}" {{
  name       = "{name}"
  cidr_block = "10.0.0.0/16"
}}

resource "aws_iam_role" "{name}_role" {{
  name = "{name}-role"
}}
'''
    ]
    for i in range(services):
        parts.append(
            f'''
resource "aws_subnet" "{name}_{i}" {{
  name       = "{name}-{i}"
  vpc_id     = aws_vpc.{name}.id
  cidr_block = cidrsubnet(aws_vpc.{name}.cidr_block, 8, {i})
}}

resource "aws_network_interface" "{name}_{i}_nic" {{
  count     = {vms_per_service}
  name      = "{name}-{i}-nic-${{count.index}}"
  subnet_id = aws_subnet.{name}_{i}.id
}}

resource "aws_virtual_machine" "{name}_{i}_vm" {{
  count   = {vms_per_service}
  name    = "{name}-{i}-vm-${{count.index}}"
  nic_ids = [aws_network_interface.{name}_{i}_nic[count.index].id]
  tags    = {{ service = "{name}-{i}" }}
}}

resource "aws_load_balancer" "{name}_{i}_lb" {{
  name          = "{name}-{i}-lb"
  subnet_ids    = [aws_subnet.{name}_{i}.id]
  target_vm_ids = aws_virtual_machine.{name}_{i}_vm[*].id
}}

resource "aws_dns_record" "{name}_{i}_dns" {{
  name  = "{name}-{i}-dns"
  zone  = "example.sim"
  value = aws_load_balancer.{name}_{i}_lb.dns_name
}}
'''
        )
    return "\n".join(parts)


def hub_spoke(
    spokes: int = 3,
    vms_per_spoke: int = 2,
    with_gateway: bool = True,
    name: str = "hub",
    location: str = "eastus",
) -> str:
    """Azure hub-and-spoke: a deep graph dominated by the VPN gateway's
    25-minute provisioning time (the critical path E1 cares about)."""
    parts = [
        f'''
resource "azure_resource_group" "{name}" {{
  name     = "{name}-rg"
  location = "{location}"
}}

resource "azure_virtual_network" "{name}" {{
  name              = "{name}-vnet"
  resource_group_id = azure_resource_group.{name}.id
  location          = "{location}"
  address_spaces    = ["10.100.0.0/16"]
}}
'''
    ]
    if with_gateway:
        parts.append(
            f'''
resource "azure_vpn_gateway" "{name}_gw" {{
  name     = "{name}-gw"
  location = "{location}"
  vnet_id  = azure_virtual_network.{name}.id
}}

resource "azure_vpn_tunnel" "{name}_tunnel" {{
  name       = "{name}-tunnel"
  gateway_id = azure_vpn_gateway.{name}_gw.id
  peer_ip    = "203.0.113.77"
}}
'''
        )
    for i in range(spokes):
        parts.append(
            f'''
resource "azure_virtual_network" "{name}_spoke_{i}" {{
  name              = "{name}-spoke-{i}"
  resource_group_id = azure_resource_group.{name}.id
  location          = "{location}"
  address_spaces    = ["10.{101 + i}.0.0/16"]
}}

resource "azure_vnet_peering" "{name}_peer_{i}" {{
  name      = "{name}-peer-{i}"
  vnet_a_id = azure_virtual_network.{name}.id
  vnet_b_id = azure_virtual_network.{name}_spoke_{i}.id
}}

resource "azure_subnet" "{name}_spoke_{i}_subnet" {{
  name           = "{name}-spoke-{i}-subnet"
  vnet_id        = azure_virtual_network.{name}_spoke_{i}.id
  address_prefix = "10.{101 + i}.1.0/24"
}}

resource "azure_network_interface" "{name}_spoke_{i}_nic" {{
  count     = {vms_per_spoke}
  name      = "{name}-spoke-{i}-nic-${{count.index}}"
  subnet_id = azure_subnet.{name}_spoke_{i}_subnet.id
  location  = "{location}"
}}

resource "azure_virtual_machine" "{name}_spoke_{i}_vm" {{
  count    = {vms_per_spoke}
  name     = "{name}-spoke-{i}-vm-${{count.index}}"
  location = "{location}"
  nic_ids  = [azure_network_interface.{name}_spoke_{i}_nic[count.index].id]
}}
'''
        )
    return "\n".join(parts)


def ml_training(workers: int = 4, name: str = "train") -> str:
    """ML training rig: worker VMs with big disks and shared storage."""
    return f'''
resource "aws_vpc" "{name}" {{
  name       = "{name}"
  cidr_block = "10.42.0.0/16"
}}

resource "aws_subnet" "{name}" {{
  name       = "{name}-subnet"
  vpc_id     = aws_vpc.{name}.id
  cidr_block = cidrsubnet(aws_vpc.{name}.cidr_block, 8, 0)
}}

resource "aws_s3_bucket" "{name}_data" {{
  name       = "{name}-dataset"
  versioning = true
}}

resource "aws_network_interface" "{name}_nic" {{
  count     = {workers}
  name      = "{name}-nic-${{count.index}}"
  subnet_id = aws_subnet.{name}.id
}}

resource "aws_virtual_machine" "{name}_worker" {{
  count   = {workers}
  name    = "{name}-worker-${{count.index}}"
  size    = "xlarge"
  nic_ids = [aws_network_interface.{name}_nic[count.index].id]
  tags    = {{ dataset = aws_s3_bucket.{name}_data.name }}
}}

resource "aws_disk" "{name}_scratch" {{
  count   = {workers}
  name    = "{name}-scratch-${{count.index}}"
  size_gb = 500
  vm_id   = aws_virtual_machine.{name}_worker[count.index].id
}}
'''


def vpn_site(tunnels: int = 2, name: str = "site") -> str:
    """The paper's 3.6 autoscaling scenario: a VPN gateway with a
    variable number of tunnels, sized by ``var.tunnel_count``."""
    return f'''
variable "tunnel_count" {{
  type    = number
  default = {tunnels}
}}

resource "aws_vpc" "{name}" {{
  name       = "{name}"
  cidr_block = "10.50.0.0/16"
}}

resource "aws_vpn_gateway" "{name}" {{
  name   = "{name}-gw"
  vpc_id = aws_vpc.{name}.id
}}

resource "aws_vpn_tunnel" "{name}" {{
  count         = var.tunnel_count
  name          = "{name}-tunnel-${{count.index}}"
  gateway_id    = aws_vpn_gateway.{name}.id
  peer_ip       = "198.51.100.${{count.index + 1}}"
  capacity_mbps = 500
}}
'''


def multi_cloud(n_per_cloud: int = 2, name: str = "mc") -> str:
    """A mixed aws+azure estate exercising both control planes."""
    return (
        web_tier(web_vms=n_per_cloud, app_vms=1, name=f"{name}_aws")
        + hub_spoke(
            spokes=1,
            vms_per_spoke=n_per_cloud,
            with_gateway=False,
            name=f"{name}_az",
        )
    )


def sized_estate(resources: int, name: str = "estate") -> str:
    """A microservices estate with approximately ``resources`` nodes.

    Each service stack is ~1 subnet + v nics + v vms + lb + dns; used by
    benches that sweep estate size. Caps out around 255 services (one
    /16 only subdivides into 256 /24 subnets) -- use
    :func:`scale_estate` beyond that.
    """
    vms = 2
    per_service = 3 + 2 * vms  # subnet + lb + dns + nics + vms
    services = max(1, (resources - 2) // per_service)
    return microservices(services=services, vms_per_service=vms, name=name)


def scale_estate(
    resources: int, name: str = "scale", services_per_vpc: int = 32
) -> str:
    """A multi-VPC microservices estate sized for large benchmarks.

    :func:`sized_estate` packs every service into one /16, which caps
    out at 256 subnets; this variant spreads services across as many
    VPCs as needed (``10.<g>.0.0/16`` per group of ``services_per_vpc``
    services, so up to 256 groups), letting estates of 10k+ resources
    parse, plan, and apply. Each service is one subnet + 2 nics + 2 vms
    + lb + dns (7 resources); each group adds its VPC.
    """
    vms = 2
    per_service = 3 + 2 * vms
    # total = per_service * s + ceil(s / services_per_vpc) VPCs
    services = max(
        1, (resources * services_per_vpc) // (per_service * services_per_vpc + 1)
    )
    parts: List[str] = []
    for i in range(services):
        g, k = divmod(i, services_per_vpc)
        if k == 0:
            parts.append(
                f'''
resource "aws_vpc" "{name}_g{g}" {{
  name       = "{name}-g{g}"
  cidr_block = "10.{g}.0.0/16"
}}
'''
            )
        parts.append(
            f'''
resource "aws_subnet" "{name}_{i}" {{
  name       = "{name}-{i}"
  vpc_id     = aws_vpc.{name}_g{g}.id
  cidr_block = cidrsubnet(aws_vpc.{name}_g{g}.cidr_block, 8, {k})
}}

resource "aws_network_interface" "{name}_{i}_nic" {{
  count     = {vms}
  name      = "{name}-{i}-nic-${{count.index}}"
  subnet_id = aws_subnet.{name}_{i}.id
}}

resource "aws_virtual_machine" "{name}_{i}_vm" {{
  count   = {vms}
  name    = "{name}-{i}-vm-${{count.index}}"
  nic_ids = [aws_network_interface.{name}_{i}_nic[count.index].id]
  tags    = {{ service = "{name}-{i}" }}
}}

resource "aws_load_balancer" "{name}_{i}_lb" {{
  name          = "{name}-{i}-lb"
  subnet_ids    = [aws_subnet.{name}_{i}.id]
  target_vm_ids = aws_virtual_machine.{name}_{i}_vm[*].id
}}

resource "aws_dns_record" "{name}_{i}_dns" {{
  name  = "{name}-{i}-dns"
  zone  = "example.sim"
  value = aws_load_balancer.{name}_{i}_lb.dns_name
}}
'''
        )
    return "\n".join(parts)


def scale_estate_sharded(
    resources: int,
    name: str = "shard",
    providers: int = 2,
    regions_per_provider: int = 2,
    services_per_vpc: int = 32,
    cross_link_every: int = 0,
    provider_weights: Optional[List[float]] = None,
    cross_links: Optional[List[tuple]] = None,
) -> str:
    """A multi-provider, multi-region estate for sharding benchmarks.

    Service stacks (subnet + 2 nics + 2 vms + lb + dns, plus one VPC
    per group) are split evenly across ``providers`` synthetic planes
    (``syn0`` ... -- build the gateway with
    ``CloudGateway.simulated(synthetic=providers)``) and striped
    round-robin over each plane's ``regions_per_provider`` regions via
    ``location``, so the plan DAG partitions into ``providers x
    regions_per_provider`` shards.

    ``cross_link_every=k`` makes every k-th service on provider ``p>0``
    tag its dns record with the dns_name of the matching load balancer
    on provider ``p-1``: a tunable density of cross-shard dependency
    edges, flowing only from lower to higher provider index so
    plane-group scheduling stays acyclic.

    ``provider_weights`` skews how many services each provider hosts
    (proportional split instead of even), and ``cross_links`` replaces
    the default chain with explicit ``(downstream, upstream)`` provider
    pairs (``upstream < downstream`` keeps the group DAG acyclic).
    Together they shape the provider dependency graph into a *partial*
    order with uneven unit sizes -- the workload where ready-frontier
    (overlapped) pool scheduling beats barrier waves, since a barrier
    holds every next-wave unit hostage to the slowest current-wave
    unit even when its own upstream finished long ago.
    """
    vms = 2
    per_service = 3 + 2 * vms
    services = max(
        providers,
        (resources * services_per_vpc)
        // (per_service * services_per_vpc + 1),
    )
    parts: List[str] = []
    if provider_weights is not None:
        if len(provider_weights) != providers:
            raise ValueError("provider_weights must have one entry per provider")
        total = float(sum(provider_weights))
        per_provider = [
            max(1, int(services * w / total)) for w in provider_weights
        ]
    else:
        per_provider = [services // providers] * providers
        for i in range(services % providers):
            per_provider[i] += 1
    link_of: Dict[int, int] = {}
    link_stride = cross_link_every
    if cross_links is not None:
        for down, up in cross_links:
            if not 0 <= up < down < providers:
                raise ValueError(f"cross link {down}<-{up} must flow upward")
            link_of[down] = up
        link_stride = cross_link_every or 1
    elif cross_link_every:
        link_of = {p: p - 1 for p in range(1, providers)}
    for p in range(providers):
        prov = f"syn{p}"
        prefix = f"{name}_p{p}"
        for i in range(per_provider[p]):
            g, k = divmod(i, services_per_vpc)
            region = f"{prov}-east-1" if i % regions_per_provider == 0 else f"{prov}-west-1"
            if k == 0:
                parts.append(
                    f'''
resource "{prov}_vpc" "{prefix}_g{g}" {{
  name       = "{prefix}-g{g}"
  cidr_block = "10.{g}.0.0/16"
  location   = "{region}"
}}
'''
                )
            cross = ""
            if p in link_of and link_stride and i % link_stride == 0:
                up_p = link_of[p]
                upstream = i % per_provider[up_p]
                cross = (
                    f'\n  upstream = syn{up_p}_load_balancer.'
                    f"{name}_p{up_p}_{upstream}_lb.dns_name"
                )
            parts.append(
                f'''
resource "{prov}_subnet" "{prefix}_{i}" {{
  name       = "{prefix}-{i}"
  vpc_id     = {prov}_vpc.{prefix}_g{g}.id
  cidr_block = cidrsubnet({prov}_vpc.{prefix}_g{g}.cidr_block, 8, {k})
  location   = "{region}"
}}

resource "{prov}_network_interface" "{prefix}_{i}_nic" {{
  count     = {vms}
  name      = "{prefix}-{i}-nic-${{count.index}}"
  subnet_id = {prov}_subnet.{prefix}_{i}.id
  location  = "{region}"
}}

resource "{prov}_virtual_machine" "{prefix}_{i}_vm" {{
  count    = {vms}
  name     = "{prefix}-{i}-vm-${{count.index}}"
  nic_ids  = [{prov}_network_interface.{prefix}_{i}_nic[count.index].id]
  location = "{region}"
  tags     = {{ service = "{prefix}-{i}" }}
}}

resource "{prov}_load_balancer" "{prefix}_{i}_lb" {{
  name          = "{prefix}-{i}-lb"
  subnet_ids    = [{prov}_subnet.{prefix}_{i}.id]
  target_vm_ids = {prov}_virtual_machine.{prefix}_{i}_vm[*].id
  location      = "{region}"
}}

resource "{prov}_dns_record" "{prefix}_{i}_dns" {{
  name     = "{prefix}-{i}-dns"
  zone     = "example.sim"
  value    = {prov}_load_balancer.{prefix}_{i}_lb.dns_name
  location = "{region}"{cross}
}}
'''
            )
    return "\n".join(parts)


def two_region_estate(
    resources: int,
    name: str = "geo",
    regions: tuple = ("eastus", "westus2"),
    region_filter: Optional[tuple] = None,
) -> str:
    """An azure estate striped round-robin across ``regions``.

    Each stack is rg -> vnet -> subnet -> 2 nics -> 2 vms (7 resources)
    pinned to one region, so a regional outage darkens whole dependency
    chains -- the substrate for the degraded-mode (quarantine) bench and
    chaos sweeps. The subnet carries no ``location`` and lands in the
    provider's default region, exercising dependents whose *parents*
    are behind an outage.

    Naming depends only on the stack index, never on the filter, so
    ``region_filter=("eastus",)`` yields the exact reachable subset of
    the full config: same addresses, same attributes. Benches use that
    to compare a degraded apply against its fault-free reachable
    baseline.
    """
    stacks = max(1, resources // 7)
    parts: List[str] = []
    for g in range(stacks):
        region = regions[g % len(regions)]
        if region_filter is not None and region not in region_filter:
            continue
        parts.append(
            f'''
resource "azure_resource_group" "{name}_{g}" {{
  name     = "{name}-rg-{g}"
  location = "{region}"
}}

resource "azure_virtual_network" "{name}_{g}" {{
  name              = "{name}-vnet-{g}"
  resource_group_id = azure_resource_group.{name}_{g}.id
  location          = "{region}"
  address_spaces    = ["10.{g % 256}.0.0/16"]
}}

resource "azure_subnet" "{name}_{g}" {{
  name           = "{name}-subnet-{g}"
  vnet_id        = azure_virtual_network.{name}_{g}.id
  address_prefix = "10.{g % 256}.1.0/24"
}}

resource "azure_network_interface" "{name}_{g}_nic" {{
  count     = 2
  name      = "{name}-{g}-nic-${{count.index}}"
  subnet_id = azure_subnet.{name}_{g}.id
  location  = "{region}"
}}

resource "azure_virtual_machine" "{name}_{g}_vm" {{
  count    = 2
  name     = "{name}-{g}-vm-${{count.index}}"
  location = "{region}"
  nic_ids  = [azure_network_interface.{name}_{g}_nic[count.index].id]
}}
'''
        )
    return "\n".join(parts)


def random_dag_estate(
    nodes: int, seed: int = 0, max_deps: int = 3, name: str = "rnd"
) -> str:
    """A seeded random dependency DAG of ``nodes`` VPC resources.

    Node ``i`` references up to ``max_deps`` earlier nodes through its
    ``tags`` map, so edges always point from lower to higher index (no
    cycles by construction) while the *shape* -- fan-out, depth, width
    -- is pseudo-random but fully determined by ``seed``. Used by the
    executor-equivalence property tests, where an arbitrary DAG shape
    must produce identical schedules across implementations.
    """
    rng = random.Random(seed)
    parts: List[str] = []
    for i in range(nodes):
        tag_items = ['kind = "random-dag"']
        if i > 0:
            n_deps = rng.randint(0, min(max_deps, i))
            for j, dep in enumerate(sorted(rng.sample(range(i), n_deps))):
                tag_items.append(f"d{j} = aws_vpc.{name}_{dep}.name")
        tags = ", ".join(tag_items)
        parts.append(
            f'''
resource "aws_vpc" "{name}_{i}" {{
  name       = "{name}-{i}"
  cidr_block = "10.{(i >> 8) & 255}.{i & 255}.0/24"
  tags       = {{ {tags} }}
}}
'''
        )
    return "\n".join(parts)
