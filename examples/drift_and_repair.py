"""The diagnose/repair lifecycle (paper 3.5 + 3.4).

A web estate is deployed, then an out-of-band script mutates a VM
("ClickOps" drift). The activity-log watcher spots it in one cheap
poll; the reconciler pushes the cloud back to the golden state. Then a
deeper wound: a script plants a *shadow* modification that plain
re-apply cannot revert -- the reversibility-aware rollback planner
replaces exactly that resource and the estate converges to the
checkpointed snapshot.

    python examples/drift_and_repair.py
"""

from repro import CloudlessEngine
from repro.update import measure_divergence
from repro.workloads import web_tier


def main() -> None:
    engine = CloudlessEngine(seed=7)

    print("== deploy v1 and checkpoint (the time machine) ==")
    v1 = engine.apply(web_tier(web_vms=2, app_vms=1))
    assert v1.ok
    print(
        f"deployed {len(engine.state)} resources; snapshot "
        f"v{v1.snapshot_version} recorded"
    )

    vm = next(
        e
        for e in engine.state.resources()
        if e.address.type == "aws_virtual_machine"
    )

    print("\n== an intern's script resizes a VM out of band ==")
    engine.gateway.planes["aws"].external_update(
        vm.resource_id, {"size": "xlarge"}, actor="intern-script"
    )
    run = engine.watch()  # one activity-log poll: 2 API calls total
    for finding in run.findings:
        print(
            f"drift[{finding.kind}] {finding.address} "
            f"(attrs: {', '.join(finding.changed_attrs)}) by {finding.actor}"
        )

    print("\n== reconcile: enforce the golden state ==")
    report = engine.reconcile(run.findings)
    for action in report.actions:
        print(f"  {action.policy}: {action.performed}")
    live = engine.gateway.find_record(vm.resource_id)
    print(f"VM size back to {live.attrs['size']!r}")

    print("\n== a shadow modification (not expressible in IaC) lands ==")
    engine.gateway.planes["aws"].external_update(
        vm.resource_id, {"network_settings": "custom-mtu-9000"}, actor="script"
    )
    print("...and the estate is scaled up meanwhile")
    assert engine.apply(web_tier(web_vms=4, app_vms=1)).ok

    print("\n== rollback to v1 (reversibility-aware) ==")
    result = engine.rollback(v1.snapshot_version)
    print(f"rollback plan: {len(result.plan)} actions")
    for action in result.plan.actions:
        print(f"  {action.kind}: {action.address}")
        for reason in action.reasons:
            print(f"      because {reason}")
    snapshot = engine.history.get(v1.snapshot_version)
    divergence = measure_divergence(engine.gateway, snapshot, engine.state)
    print(
        f"redeployments: {result.plan.redeployments}, errors: "
        f"{len(result.errors)}, remaining divergence: {divergence}"
    )
    assert divergence == 0, "the estate must converge to the snapshot"


if __name__ == "__main__":
    main()
