"""Concurrent platform teams on one shared estate (paper 3.4).

Four DevOps teams submit updates at the same moment. With today's
whole-state lock they serialize -- the last team waits through
everybody else's apply. With per-resource locks and transactions, the
disjoint updates run in parallel, the one genuine conflict still
excludes correctly, and the resulting history is serializable.

    python examples/multi_team_platform.py
"""

from repro import CloudlessEngine
from repro.addressing import ResourceAddress
from repro.state import GlobalLockManager, ResourceLockManager
from repro.update import UpdateCoordinator, UpdateRequest
from repro.workloads import microservices


def team_requests():
    """Teams 0-2 each own a service; team 3 collides with team 0."""

    def touch(*keys):
        return set(keys)

    return [
        UpdateRequest(
            team="payments",
            submitted_at=0.0,
            keys=touch("aws_virtual_machine.svc_0_vm[0]", "aws_load_balancer.svc_0_lb"),
            duration_s=180.0,
        ),
        UpdateRequest(
            team="search",
            submitted_at=2.0,
            keys=touch("aws_virtual_machine.svc_1_vm[0]", "aws_load_balancer.svc_1_lb"),
            duration_s=240.0,
        ),
        UpdateRequest(
            team="checkout",
            submitted_at=4.0,
            keys=touch("aws_virtual_machine.svc_2_vm[0]", "aws_load_balancer.svc_2_lb"),
            duration_s=150.0,
        ),
        UpdateRequest(
            team="sre",  # tuning the same LB payments is editing
            submitted_at=5.0,
            keys=touch("aws_load_balancer.svc_0_lb"),
            duration_s=60.0,
        ),
    ]


def run(label, lock_manager, state):
    coordinator = UpdateCoordinator(state, lock_manager)
    result = coordinator.run(team_requests())
    print(f"== {label} ==")
    for outcome in result.outcomes:
        print(
            f"  {outcome.team:9s} waited {outcome.wait_s:6.1f}s, "
            f"finished at t={outcome.completed_at:6.1f}s"
        )
    print(
        f"  makespan {result.makespan_s:.1f}s, "
        f"throughput {result.throughput_per_hour:.1f}/h, "
        f"serializable: {result.serializable}\n"
    )
    return result


def main() -> None:
    engine = CloudlessEngine(seed=33)
    assert engine.apply(microservices(services=3, vms_per_service=1)).ok
    print(f"shared estate: {len(engine.state)} resources\n")

    coarse = run(
        "whole-state lock (today's practice)",
        GlobalLockManager(),
        engine.state.copy(),
    )
    fine = run(
        "per-resource locks + transactions (cloudless)",
        ResourceLockManager(),
        engine.state.copy(),
    )
    speedup = coarse.makespan_s / fine.makespan_s
    print(f"fine-grained locking finished {speedup:.1f}x sooner;")
    print("note the sre team still waited for payments -- they really do")
    print("touch the same load balancer, and isolation held.")


if __name__ == "__main__":
    main()
