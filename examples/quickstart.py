"""Quickstart: the cloudless lifecycle in one file.

Runs the paper's Figure 2 program (completed with the networking the
provider requires) through validate -> plan -> apply -> re-plan, then
shows the compile-time validation the paper calls for by breaking the
program on purpose.

    python examples/quickstart.py
"""

from repro import CloudlessEngine

PROGRAM = """
/* Figure 2 of the paper, completed with a subnet + VPC */

data "aws_region" "current" {}

variable "vmName" {
  type    = string
  default = "cloudless"
}

resource "aws_vpc" "v1" {
  name       = "quickstart-vpc"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "s1" {
  name       = "quickstart-subnet"
  vpc_id     = aws_vpc.v1.id
  cidr_block = cidrsubnet(aws_vpc.v1.cidr_block, 8, 0)
}

resource "aws_network_interface" "n1" {
  name      = "example-nic"
  subnet_id = aws_subnet.s1.id
}

resource "aws_virtual_machine" "vm1" {
  name    = var.vmName
  nic_ids = [aws_network_interface.n1.id]
  tags    = { region = data.aws_region.current.name }
}

output "vm_name" { value = aws_virtual_machine.vm1.name }
"""


def main() -> None:
    engine = CloudlessEngine(seed=42)

    print("== validate ==")
    report = engine.validate(PROGRAM)
    print(report)

    print("\n== plan ==")
    plan = engine.plan(PROGRAM)
    print(plan.render())

    print("\n== apply ==")
    result = engine.apply(PROGRAM)
    assert result.ok
    print(
        f"deployed {len(result.apply.succeeded)} resources in "
        f"{result.apply.makespan_s:.1f} simulated seconds "
        f"({result.apply.api_calls} API calls)"
    )
    for entry in engine.state.resources():
        print(f"  {str(entry.address):35s} -> {entry.resource_id}")

    print("\n== re-plan (idempotence) ==")
    again = engine.plan(PROGRAM)
    print(f"second plan empty: {again.is_empty}")

    print("\n== compile-time validation (paper 3.2) ==")
    broken = PROGRAM.replace(
        "nic_ids = [aws_network_interface.n1.id]",
        "nic_ids = [aws_subnet.s1.id]  // oops: a subnet is not a NIC",
    )
    report = engine.validate(broken)
    print(report)


if __name__ == "__main__":
    main()
