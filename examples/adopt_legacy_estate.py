"""Porting a ClickOps estate into IaC (paper 3.1).

An enterprise built its infrastructure by hand: a VPC, a ladder of
subnets, NICs, and VMs, created straight through the cloud API. The
structured importer turns that into a *maintainable* program --
references instead of hard-coded ids, ``count`` + ``cidrsubnet`` instead
of copy-paste, defaults pruned -- and an adoptable state document whose
follow-up plan is a no-op. The naive Terraformer-style export is shown
side by side.

    python examples/adopt_legacy_estate.py
"""

from repro import CloudlessEngine
from repro.porting import NaiveExporter, measure_quality, verify_fidelity


def click_ops(engine: CloudlessEngine) -> None:
    """Build the estate the way the paper says people do: by hand."""
    plane = engine.gateway.planes["aws"]
    vpc = plane.external_create(
        "aws_vpc",
        {"name": "legacy-prod", "cidr_block": "10.0.0.0/16"},
        "us-east-1",
        actor="console-user",
    )
    subnets, nics = [], []
    for i in range(5):
        subnets.append(
            plane.external_create(
                "aws_subnet",
                {
                    "name": f"prod-{i}",
                    "vpc_id": vpc,
                    "cidr_block": f"10.0.{i}.0/24",
                },
                "us-east-1",
                actor="console-user",
            )
        )
    for i in range(5):
        nics.append(
            plane.external_create(
                "aws_network_interface",
                {"name": f"prod-nic-{i}", "subnet_id": subnets[i]},
                "us-east-1",
                actor="console-user",
            )
        )
    for i in range(5):
        plane.external_create(
            "aws_virtual_machine",
            {"name": f"prod-web-{i}", "nic_ids": [nics[i]]},
            "us-east-1",
            actor="console-user",
        )


def main() -> None:
    engine = CloudlessEngine(seed=21)
    click_ops(engine)
    n = engine.gateway.planes["aws"].count()
    print(f"legacy estate: {n} hand-built resources, zero IaC\n")

    print("== naive export (what Terraformer/Aztfy produce) ==")
    naive = NaiveExporter().export(engine.gateway)
    naive_metrics = measure_quality(naive)
    print(naive.main_source[:600] + "  ...\n")
    print(
        f"{naive_metrics.loc} LoC, {naive_metrics.blocks} blocks, "
        f"{naive_metrics.hardcoded_ids} hard-coded ids, "
        f"maintainability {naive_metrics.maintainability:.0f}/100\n"
    )

    print("== structured import (the cloudless optimizer) ==")
    project = engine.import_estate(adopt=True)
    metrics = measure_quality(project)
    print(project.main_source)
    print(
        f"{metrics.loc} LoC, {metrics.blocks} blocks, "
        f"{metrics.hardcoded_ids} hard-coded ids, "
        f"{metrics.reference_count} references, "
        f"maintainability {metrics.maintainability:.0f}/100"
    )

    fidelity = verify_fidelity(project)
    print(f"\nround-trip fidelity (plan is a no-op): {fidelity.ok}")

    print("\n== the estate is now managed: scale it through the program ==")
    grown = project.main_source.replace("count      = 5", "count      = 7")
    grown = grown.replace("count     = 5", "count     = 7")
    grown = grown.replace("count   = 5", "count   = 7")
    result = engine.apply(grown)
    assert result.ok
    print(
        f"plan: {result.plan.summary()['create']} to add -- now "
        f"{engine.gateway.planes['aws'].count('aws_virtual_machine')} VMs"
    )


if __name__ == "__main__":
    main()
