"""The paper's 3.6 scenario: "scale out the number of VPN gateways and
attached tunnels if traffic throughput is close to their capacity."

Native cloud autoscaling cannot even express this policy (it watches
CPU on scaling groups); the cloudless controller observes any metric on
any resource and acts by evolving the IaC program's ``tunnel_count``
variable. We drive a 4-hour traffic surge and watch tunnels scale out
and back in.

    python examples/autoscale_vpn.py
"""

from repro import CloudlessEngine
from repro.policy import (
    CustomMetricScalePolicy,
    InfrastructureController,
    MetricStore,
    NativeAutoscalePolicy,
    UnsupportedPolicyError,
)
from repro.workloads import distribute_demand, ramp_surge_trace, vpn_site

CAPACITY = 500.0  # Mbps per tunnel


def main() -> None:
    print("== can today's clouds express the policy? ==")
    try:
        NativeAutoscalePolicy(
            name="vpn",
            target_type="aws_vpn_tunnel",
            metric="throughput_mbps",
            capacity_per_instance=CAPACITY,
            count_variable="tunnel_count",
        )
    except UnsupportedPolicyError as exc:
        print(f"native autoscaling says: {exc}\n")

    engine = CloudlessEngine(seed=13)
    variables = {"tunnel_count": 2}
    assert engine.apply(vpn_site(), variables=variables).ok
    print("deployed VPN site with 2 tunnels\n")

    policy = CustomMetricScalePolicy(
        name="vpn-throughput",
        target_type="aws_vpn_tunnel",
        metric="throughput_mbps",
        capacity_per_instance=CAPACITY,
        count_variable="tunnel_count",
        high=0.8,
        low=0.25,
        cooldown_s=300.0,
    )
    controller = InfrastructureController()
    controller.register(policy)
    metrics = MetricStore()

    trace = ramp_surge_trace(
        duration_s=4 * 3600, step_s=60, base=300, peak=2400, seed=3
    )
    t0 = engine.clock.now
    for point in trace:
        sim_t = t0 + point.t
        if sim_t > engine.clock.now:
            engine.clock.advance_to(sim_t)
        tunnels = [
            e
            for e in engine.state.resources()
            if e.address.type == "aws_vpn_tunnel"
        ]
        loads, dropped = distribute_demand(point.value, len(tunnels), CAPACITY)
        for entry, load in zip(tunnels, loads):
            metrics.record(
                str(entry.address), "throughput_mbps", engine.clock.now, load
            )
        actions = controller.evaluate_metrics(
            metrics, engine.state, variables, engine.clock.now
        )
        new_vars = controller.apply_variable_actions(actions, variables)
        if new_vars["tunnel_count"] != variables["tunnel_count"]:
            print(
                f"t={point.t/60:6.0f}min demand={point.value:7.0f} Mbps "
                f"-> scale {variables['tunnel_count']} -> "
                f"{new_vars['tunnel_count']} tunnels"
            )
            variables = dict(new_vars)
            result = engine.apply(vpn_site(), variables=variables)
            assert result.ok

    print("\nscale decision log:")
    for decision in policy.decisions:
        print(
            f"  t={(decision.at - t0)/60:6.0f}min "
            f"utilization={decision.utilization:5.2f} "
            f"{decision.old} -> {decision.new}"
        )
    final = engine.gateway.planes["aws"].count("aws_vpn_tunnel")
    print(f"\nfinal tunnel count after the surge cooled down: {final}")


if __name__ == "__main__":
    main()
