"""P3 `state` -- cost of the golden-state layer at estate scale.

Measures the four state-layer hot paths that PR 3 rebuilt around
copy-on-write structural sharing, at 1k / 10k resources, against the
frozen deep-copy reference in ``repro.state.reference``:

* ``checkpoint``  -- ``SnapshotHistory.checkpoint`` with a small
  mutation batch between versions (O(changed) delta vs full deep copy),
* ``txn_commit``  -- read-modify-write transaction commits through
  ``StateDatabase`` (entry copies vs json round-trips),
* ``by_resource_id`` -- reverse lookups (maintained index vs O(n) scan),
* ``checkout``    -- reconstructing historical versions (keyframe +
  delta replay + memo vs deep copy per checkout).

The numbers land in ``BENCH_state.json`` (see "Golden state at scale"
in ``docs/performance.md``). ``--min-checkpoint-speedup`` /
``--min-lookup-speedup`` turn the speedups into hard gates; CI runs
the smoke tier::

    python benchmarks/bench_p3_state.py --sizes 1000 \
        --min-checkpoint-speedup 3 --min-lookup-speedup 10 \
        --out /tmp/BENCH_state.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import perf
from repro.addressing import ResourceAddress
from repro.state import (
    ResourceLockManager,
    ResourceState,
    SnapshotHistory,
    StateDatabase,
    StateDocument,
)
from repro.state.reference import (
    ReferenceResourceState,
    ReferenceSnapshotHistory,
    ReferenceStateDocument,
)

VERSIONS = 20  # checkpoints taken per run
MUTATIONS = 10  # entries touched between checkpoints
TXNS = 200  # read-modify-write commits measured
LOOKUPS = 2000  # by_resource_id queries measured


def _attrs(i: int) -> Dict[str, Any]:
    return {
        "name": f"res-{i}",
        "size": ("small", "medium", "large")[i % 3],
        "tags": {"team": f"team-{i % 7}", "index": i},
        "ports": [22, 80, 8000 + (i % 100)],
    }


def _entry_kwargs(i: int) -> Dict[str, Any]:
    return dict(
        address=ResourceAddress.parse(f"aws_virtual_machine.vm[{i}]"),
        resource_id=f"cloud-{i}",
        provider="aws",
        attrs=_attrs(i),
        region="us-east-1",
        created_at=1.0,
        updated_at=2.0,
        dependencies=[f"aws_subnet.net[{i % 50}]"],
    )


def build_docs(size: int):
    live = StateDocument(serial=1)
    ref = ReferenceStateDocument(serial=1)
    for i in range(size):
        live.set(ResourceState(**_entry_kwargs(i)))
        ref.set(ReferenceResourceState(**_entry_kwargs(i)))
    return live, ref


def bench_checkpoint(live: StateDocument, ref: ReferenceStateDocument, size: int):
    rng = random.Random(13)
    picks = [
        [rng.randrange(size) for _ in range(MUTATIONS)] for _ in range(VERSIONS)
    ]

    live_history = SnapshotHistory()
    t0 = time.perf_counter()
    for v, batch in enumerate(picks):
        for i in batch:
            addr = ResourceAddress.parse(f"aws_virtual_machine.vm[{i}]")
            entry = live.get(addr)
            live.set(entry.replace(attrs=dict(entry.attrs, rev=v)))
        live.bump()
        live_history.checkpoint(live, {"main.clc": "cfg"}, timestamp=float(v))
    live_s = time.perf_counter() - t0

    ref_history = ReferenceSnapshotHistory()
    t0 = time.perf_counter()
    for v, batch in enumerate(picks):
        for i in batch:
            addr = ResourceAddress.parse(f"aws_virtual_machine.vm[{i}]")
            ref.get(addr).attrs["rev"] = v
        ref.bump()
        ref_history.checkpoint(ref, {"main.clc": "cfg"}, timestamp=float(v))
    ref_s = time.perf_counter() - t0
    return live_history, ref_history, live_s, ref_s


def bench_txn_commit(live: StateDocument, ref: ReferenceStateDocument, size: int):
    """Read-modify-write commits through ``StateDatabase``.

    The database duck-types over both documents, so the two arms carry
    identical lock / history bookkeeping and differ only in what the
    state layer charges per read copy and per committed set.
    """
    rng = random.Random(17)
    picks = [rng.randrange(size) for _ in range(TXNS)]

    def run(db: StateDatabase) -> float:
        t0 = time.perf_counter()
        for n, i in enumerate(picks):
            addr = ResourceAddress.parse(f"aws_virtual_machine.vm[{i}]")
            txn = db.begin(f"t{n}", {str(addr)}, now=float(n))
            got = txn.read(addr)
            got.attrs["txn_rev"] = n
            txn.set(got)
            txn.commit(now=float(n) + 0.5)
        return time.perf_counter() - t0

    live_s = run(StateDatabase(live, ResourceLockManager()))
    ref_s = run(StateDatabase(ref, ResourceLockManager()))
    return live_s, ref_s


def bench_by_resource_id(live: StateDocument, ref: ReferenceStateDocument, size: int):
    rng = random.Random(19)
    ids = [f"cloud-{rng.randrange(size)}" for _ in range(LOOKUPS)]

    t0 = time.perf_counter()
    for rid in ids:
        assert live.by_resource_id(rid) is not None
    live_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for rid in ids:
        assert ref.by_resource_id(rid) is not None
    ref_s = time.perf_counter() - t0
    return live_s, ref_s


def bench_checkout(live_history: SnapshotHistory, ref_history: ReferenceSnapshotHistory):
    versions = live_history.versions()
    t0 = time.perf_counter()
    for v in versions:
        live_history.checkout(v)
    live_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for v in versions:
        ref_history.checkout(v)
    ref_s = time.perf_counter() - t0
    return live_s, ref_s


def _row(op: str, size: int, n_ops: int, live_s: float, ref_s: float) -> Dict[str, Any]:
    return {
        "op": op,
        "size": size,
        "n_ops": n_ops,
        "cow_wall_s": round(live_s, 6),
        "reference_wall_s": round(ref_s, 6),
        "cow_ops_per_s": round(n_ops / max(live_s, 1e-9), 1),
        "speedup": round(ref_s / max(live_s, 1e-9), 1),
    }


def bench(args: argparse.Namespace) -> Dict[str, Any]:
    rows: List[Dict[str, Any]] = []
    failures: List[str] = []
    counters: Dict[str, Any] = {}
    for size in args.sizes:
        live, ref = build_docs(size)
        perf.reset()
        perf.enable()

        live_history, ref_history, live_s, ref_s = bench_checkpoint(live, ref, size)
        rows.append(_row("checkpoint", size, VERSIONS, live_s, ref_s))

        live_s, ref_s = bench_txn_commit(live, ref, size)
        rows.append(_row("txn_commit", size, TXNS, live_s, ref_s))

        live_s, ref_s = bench_by_resource_id(live, ref, size)
        rows.append(_row("by_resource_id", size, LOOKUPS, live_s, ref_s))

        live_s, ref_s = bench_checkout(live_history, ref_history)
        rows.append(_row("checkout", size, len(live_history), live_s, ref_s))

        counters[str(size)] = perf.snapshot()["counters"]
        perf.disable()

        for row in rows[-4:]:
            # floors are calibrated for the largest estate in the run;
            # small estates amortize less and are not gated
            minimum = (
                {
                    "checkpoint": args.min_checkpoint_speedup,
                    "by_resource_id": args.min_lookup_speedup,
                }.get(row["op"], 0.0)
                if size == max(args.sizes)
                else 0.0
            )
            if minimum and row["speedup"] < minimum:
                failures.append(
                    f"{row['op']}@{size}: speedup {row['speedup']}x "
                    f"< required {minimum}x"
                )
            print(
                f"  {row['op']:15s} n={size:6d} "
                f"cow={row['cow_wall_s']:.4f}s "
                f"ref={row['reference_wall_s']:.4f}s "
                f"speedup={row['speedup']}x",
                file=sys.stderr,
            )
    return {
        "benchmark": "p3_state",
        "sizes": args.sizes,
        "versions": VERSIONS,
        "mutations_per_version": MUTATIONS,
        "txns": TXNS,
        "lookups": LOOKUPS,
        "results": rows,
        "perf_counters": counters,
        "failures": failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="1000,10000",
        help="comma-separated estate sizes (resources)",
    )
    parser.add_argument(
        "--min-checkpoint-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) if checkpoint speedup drops below this at any size",
    )
    parser.add_argument(
        "--min-lookup-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) if by_resource_id speedup drops below this at any size",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "BENCH_state.json"
        ),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    args.sizes = [int(s) for s in str(args.sizes).split(",") if s]

    report = bench(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if report["failures"]:
        for line in report["failures"]:
            print(f"SPEEDUP FLOOR MISSED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
