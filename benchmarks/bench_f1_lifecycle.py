"""F1 `figure-lifecycle` -- the paper's Figure 1, quantified.

One estate pushed through the full lifecycle -- develop (port an
existing ClickOps estate), validate a buggy change, deploy, update,
detect+repair drift, roll back -- under two stacks:

* **state of the art** (Figure 1a): naive export, syntax-only
  validation (bugs fail at the cloud), best-effort walk, full-refresh
  updates, periodic full-scan drift detection, naive rollback;
* **cloudless** (Figure 1b): structured import, full validation,
  critical-path scheduling, impact-scoped updates, log-watch drift
  detection + reconciliation, reversibility-aware rollback.

Metric per stage: simulated wall-clock and API calls; plus end-state
health (does the estate converge to intent?).
"""

import pytest

from repro.core import CloudlessEngine
from repro.deploy import UpdatePipeline
from repro.drift import FullScanDetector, LogWatchDetector, Reconciler
from repro.lang import Configuration
from repro.update import (
    NaiveRollback,
    ReversibilityAwareRollback,
    measure_divergence,
)
from repro.validate import LEVEL_RULES, LEVEL_SYNTAX, ValidationPipeline
from repro.workloads import ConfigMutator, web_tier

from _support import Table, record


def stage(engine, fn):
    """Run one lifecycle stage, returning (sim_s, api_calls, value)."""
    t0 = engine.clock.now
    c0 = engine.gateway.total_api_calls()
    value = fn()
    return engine.clock.now - t0, engine.gateway.total_api_calls() - c0, value


def seed_clickops_estate(engine):
    plane = engine.gateway.planes["aws"]
    vpc = plane.external_create(
        "aws_vpc", {"name": "legacy", "cidr_block": "10.9.0.0/16"}, "us-east-1"
    )
    for i in range(4):
        plane.external_create(
            "aws_subnet",
            {"name": f"legacy-{i}", "vpc_id": vpc, "cidr_block": f"10.9.{i}.0/24"},
            "us-east-1",
        )


def run_stack(cloudless: bool, seed=1100):
    engine = CloudlessEngine(
        seed=seed,
        executor="critical-path" if cloudless else "best-effort",
        validation_level=LEVEL_RULES if cloudless else LEVEL_SYNTAX,
    )
    report = {}

    # -- develop: port the pre-existing ClickOps estate ----------------------
    seed_clickops_estate(engine)
    if cloudless:
        sim, calls, project = stage(engine, lambda: engine.import_estate())
    else:
        from repro.porting import NaiveExporter

        def naive_import():
            project = NaiveExporter().export(engine.gateway)
            engine.state = project.state.copy()
            return project

        sim, calls, project = stage(engine, naive_import)
    report["develop (port estate)"] = (sim, calls)

    # -- validate: a buggy change lands in review -----------------------------
    buggy = Configuration.parse(web_tier(web_vms=3) + "\n" + project.main_source)
    ConfigMutator(seed=7).apply_kind(buggy, "region_mismatch" if False else "bad_enum")

    def validate_and_deploy_buggy():
        validation = engine.validation.validate(buggy)
        if not validation.ok:
            return "caught at compile time"
        result = engine.apply(buggy, validate_first=False, admit=False)
        return "failed at the cloud" if not result.ok else "deployed (latent!)"

    sim, calls, verdict = stage(engine, validate_and_deploy_buggy)
    report["validate (buggy change)"] = (sim, calls)
    report["_verdict"] = verdict

    # -- deploy: the (fixed) change ships -------------------------------------
    good = web_tier(web_vms=3) + "\n" + project.main_source
    sim, calls, result = stage(engine, lambda: engine.apply(good))
    assert result.ok, (result.apply and result.apply.failed) or result.validation
    report["deploy (new stack)"] = (sim, calls)
    v_deployed = result.snapshot_version

    # -- update: a one-attribute tweak ----------------------------------------
    tweaked = good.replace('size    = "medium"', 'size    = "large"')
    pipeline = UpdatePipeline(engine.gateway, incremental=cloudless)

    def run_update():
        outcome = pipeline.plan_update(
            Configuration.parse(good), Configuration.parse(tweaked), engine.state
        )
        result = engine.apply(tweaked, validate_first=False, admit=False)
        assert result.ok
        return outcome

    sim, calls, _ = stage(engine, run_update)
    report["update (1-attr delta)"] = (sim, calls)

    # -- observe/repair: out-of-band drift -------------------------------------
    vm = next(
        e
        for e in engine.state.resources()
        if e.address.type == "aws_virtual_machine"
    )
    if cloudless:
        watcher = LogWatchDetector(engine.gateway)
        watcher.poll(engine.state)

    engine.gateway.planes["aws"].external_update(
        vm.resource_id, {"size": "xlarge"}, actor="script"
    )

    def detect_and_repair():
        if cloudless:
            engine.clock.advance_by(60.0)  # next poll tick
            findings = watcher.poll(engine.state).findings
        else:
            engine.clock.advance_by(600.0)  # next scheduled scan
            findings = [
                f
                for f in FullScanDetector(engine.gateway).scan(engine.state).findings
                if f.kind == "modified"
            ]
        Reconciler(engine.gateway).reconcile(findings, engine.state)
        return len(findings)

    sim, calls, found = stage(engine, detect_and_repair)
    assert found >= 1
    report["diagnose (drift+repair)"] = (sim, calls)

    # -- rollback to the post-deploy snapshot -----------------------------------
    # first let something irreversible happen out of band
    engine.gateway.planes["aws"].external_update(
        vm.resource_id, {"network_settings": "custom"}, actor="script"
    )
    snapshot = engine.history.get(v_deployed)
    planner = (
        ReversibilityAwareRollback(engine.gateway)
        if cloudless
        else NaiveRollback(engine.gateway)
    )

    def run_rollback():
        plan = planner.plan(snapshot, engine.state)
        planner.execute(plan, engine.state)
        return measure_divergence(engine.gateway, snapshot, engine.state)

    sim, calls, divergence = stage(engine, run_rollback)
    report["rollback (to snapshot)"] = (sim, calls)
    report["_final_divergence"] = divergence
    return report


def run_experiment():
    baseline = run_stack(cloudless=False)
    cloudless = run_stack(cloudless=True)
    stages = [k for k in baseline if not k.startswith("_")]
    table = Table(
        "F1: full lifecycle, state of the art vs cloudless",
        ["stage", "baseline_s", "baseline_calls", "cloudless_s", "cloudless_calls"],
    )
    for key in stages:
        table.add(key, baseline[key][0], baseline[key][1], cloudless[key][0], cloudless[key][1])
    total_b = sum(baseline[k][0] for k in stages)
    total_c = sum(cloudless[k][0] for k in stages)
    calls_b = sum(baseline[k][1] for k in stages)
    calls_c = sum(cloudless[k][1] for k in stages)
    table.add("TOTAL", total_b, calls_b, total_c, calls_c)
    headline = {
        "baseline_total_s": round(total_b, 1),
        "cloudless_total_s": round(total_c, 1),
        "baseline_calls": calls_b,
        "cloudless_calls": calls_c,
        "baseline_verdict": baseline["_verdict"],
        "cloudless_verdict": cloudless["_verdict"],
        "baseline_divergence": baseline["_final_divergence"],
        "cloudless_divergence": cloudless["_final_divergence"],
    }
    return table, headline


def test_f1_lifecycle(benchmark):
    table, headline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    # the buggy change is caught at compile time only by the cloudless stack
    assert headline["cloudless_verdict"] == "caught at compile time"
    assert headline["baseline_verdict"] == "failed at the cloud"
    # the cloudless lifecycle ends converged; the baseline does not
    assert headline["cloudless_divergence"] == 0
    assert headline["baseline_divergence"] > 0
    # and it is cheaper end to end, in both time and API quota
    assert headline["cloudless_total_s"] < headline["baseline_total_s"]
    assert headline["cloudless_calls"] < headline["baseline_calls"]


if __name__ == "__main__":
    print(run_experiment()[0].render())
