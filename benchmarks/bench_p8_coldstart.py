"""P8 `coldstart` -- streaming parse, compiled-artifact cache, overlapped pool.

Three claims, each gated:

* **Warm re-run is O(changed)**: planning an unchanged estate through
  the persistent compiled-artifact cache (``repro.compilecache``) must
  cost at most ``--max-warm-frac`` (default 10%) of the cold
  parse+build+plan wall at every size >= ``--warm-gate-min-size``, and
  the warm plan must render byte-identical to the cold one (compared
  by sha256 across processes).
* **Cold start is bounded**: every cold tier runs in a subprocess and
  records its peak RSS (``ru_maxrss``); the streaming parse keeps the
  largest tier (``--rss-size``, default 1M resources) within
  ``--max-rss-gb`` when that gate is armed.
* **Overlapped pool beats barrier waves**: on a staggered provider DAG
  (small hub, fat independent units) the ready-frontier scheduler must
  finish with a strictly smaller simulated makespan than the barrier
  scheduler and the identical canonical state hash as the interleaved
  single-process apply. The wall-clock gate only arms when the host
  has >= ``--pool-workers`` cores (the CI container has one core,
  where forked workers cannot win wall-clock).

CI runs the smoke tier::

    python benchmarks/bench_p8_coldstart.py --sizes 1000 \
        --pool-size 1000 --rss-size 0 --out /tmp/BENCH_coldstart.json

The checked-in ``BENCH_coldstart.json`` is the full run
(``--sizes 10000,100000 --pool-size 100000 --rss-size 1000000``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cloud import CloudGateway
from repro.core.engine import (
    CloudlessEngine,
    _fingerprint_data,
    _fingerprint_json,
)
from repro.compilecache import (
    CompileCache,
    schema_fingerprint,
    variables_fingerprint,
)
from repro.deploy import ShardedExecutor
from repro.deploy.incremental import read_data_sources
from repro.graph import Planner, build_graph
from repro.graph.critical_path import clear_analysis_cache
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import scale_estate_sharded


def plan_sha(plan) -> str:
    return hashlib.sha256(plan.render().encode()).hexdigest()


# -- cold tier (runs in a subprocess for honest peak-RSS accounting) ----------


def cold_child(args: argparse.Namespace) -> int:
    """Cold parse+build+plan of one tier; stores the artifact and
    emits phase timings, plan sha, and peak RSS as JSON on stdout."""
    clear_analysis_cache()
    source = scale_estate_sharded(
        args.size, providers=args.providers, cross_link_every=5
    )
    texts = {"main.clc": source}
    gateway = CloudGateway.simulated(seed=args.seed, synthetic=args.providers)

    t0 = time.perf_counter()
    config = Configuration.parse_streaming(texts)
    parse_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    graph = build_graph(config)
    build_s = time.perf_counter() - t0

    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    state = StateDocument()
    t0 = time.perf_counter()
    data = read_data_sources(gateway, graph, state)
    plan = planner.plan(graph, state, data_values=data)
    plan_s = time.perf_counter() - t0

    store_s = 0.0
    if args.cache_dir:
        cache = CompileCache(args.cache_dir)
        t0 = time.perf_counter()
        ok = cache.store(
            texts,
            variables_fingerprint(None),
            schema_fingerprint(gateway),
            config,
            graph,
            plan=plan,
            plan_state_fp=_fingerprint_json(state.to_json()),
            plan_data_fp=_fingerprint_data(data),
        )
        store_s = time.perf_counter() - t0
        assert ok, "artifact store failed"

    print(
        json.dumps(
            {
                "parse_s": round(parse_s, 4),
                "build_s": round(build_s, 4),
                "plan_s": round(plan_s, 4),
                "cold_total_s": round(parse_s + build_s + plan_s, 4),
                "store_s": round(store_s, 4),
                "n_changes": len(plan.changes),
                "plan_sha": plan_sha(plan),
                "peak_rss_kb": resource.getrusage(
                    resource.RUSAGE_SELF
                ).ru_maxrss,
            }
        )
    )
    return 0


def run_cold_tier(
    size: int, providers: int, seed: int, cache_dir: Optional[str]
) -> Dict[str, Any]:
    cmd = [
        sys.executable,
        os.path.abspath(__file__),
        "--child",
        "--size",
        str(size),
        "--providers",
        str(providers),
        "--seed",
        str(seed),
    ]
    if cache_dir:
        cmd += ["--cache-dir", cache_dir]
    out = subprocess.run(cmd, capture_output=True, text=True, check=True)
    return json.loads(out.stdout)


# -- warm tier (in-process: the engine's cache path is what ships) ------------


def run_warm_tier(
    size: int, providers: int, seed: int, cache_dir: str
) -> Dict[str, Any]:
    clear_analysis_cache()
    source = scale_estate_sharded(
        size, providers=providers, cross_link_every=5
    )
    engine = CloudlessEngine(
        gateway=CloudGateway.simulated(seed=seed, synthetic=providers),
        cache_dir=cache_dir,
    )
    t0 = time.perf_counter()
    plan = engine.plan(source)
    warm_s = time.perf_counter() - t0
    cache = engine.compile_cache
    return {
        "warm_s": round(warm_s, 4),
        "plan_sha": plan_sha(plan),
        "exact_hits": cache.exact_hits,
        "partial_hits": cache.partial_hits,
        "misses": cache.misses,
    }


# -- pool tier ---------------------------------------------------------------


def staggered_source(size: int) -> str:
    """Small hub provider feeding one dependent, two fat independent
    providers: barrier waves hold the dependent hostage to the fat
    units, the ready frontier does not."""
    return scale_estate_sharded(
        size,
        providers=4,
        cross_link_every=10,
        provider_weights=[1, 3, 3, 3],
        cross_links=[(1, 0)],
    )


def run_pool_arm(
    source: str, seed: int, workers: int, overlap: bool, label: str
) -> Dict[str, Any]:
    clear_analysis_cache()
    gateway = CloudGateway.simulated(seed=seed, synthetic=4)
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    graph = build_graph(Configuration.parse_streaming(source))
    state = StateDocument()
    data = read_data_sources(gateway, graph, state)
    plan = planner.plan(graph, state, data_values=data)
    executor = ShardedExecutor(gateway, workers=workers, overlap=overlap)
    t0 = time.perf_counter()
    result = executor.apply(plan)
    wall = time.perf_counter() - t0
    assert result.ok, f"{label}: apply failed: {result.failed}"
    return {
        "arm": label,
        "apply_wall_s": round(wall, 4),
        "makespan_sim_s": round(result.makespan_s, 3),
        "mode": result.mode,
        "waves": getattr(result, "waves", 1),
        "overlapped": getattr(result, "overlapped", False),
        "content_sha": result.state.content_hash(),
    }


# -- driver ------------------------------------------------------------------


def bench(args: argparse.Namespace) -> Dict[str, Any]:
    tiers: List[Dict[str, Any]] = []
    failures: List[str] = []
    cpus = os.cpu_count() or 1

    for size in args.sizes:
        with tempfile.TemporaryDirectory(prefix="clc-cache-") as cache_dir:
            cold = run_cold_tier(size, args.providers, args.seed, cache_dir)
            warm = run_warm_tier(size, args.providers, args.seed, cache_dir)
        tier = {"size": size, **cold, **warm}
        tier["warm_frac"] = round(
            warm["warm_s"] / max(cold["cold_total_s"], 1e-9), 4
        )
        tiers.append(tier)
        if warm["plan_sha"] != cold["plan_sha"]:
            failures.append(f"{size}: warm plan not byte-identical to cold")
        if warm["exact_hits"] != 1:
            failures.append(
                f"{size}: warm plan missed the cache "
                f"(exact={warm['exact_hits']} misses={warm['misses']})"
            )
        if (
            size >= args.warm_gate_min_size
            and tier["warm_frac"] > args.max_warm_frac
        ):
            failures.append(
                f"{size}: warm plan {tier['warm_frac']:.1%} of cold "
                f"> gate {args.max_warm_frac:.0%}"
            )
        print(
            f"size={size}: cold={cold['cold_total_s']:.2f}s "
            f"(parse={cold['parse_s']:.2f} build={cold['build_s']:.2f} "
            f"plan={cold['plan_s']:.2f}) warm={warm['warm_s']:.3f}s "
            f"({tier['warm_frac']:.1%}) rss={cold['peak_rss_kb'] // 1024}MB",
            file=sys.stderr,
        )

    rss_tier: Optional[Dict[str, Any]] = None
    if args.rss_size:
        cold = run_cold_tier(args.rss_size, args.providers, args.seed, None)
        rss_tier = {"size": args.rss_size, **cold}
        rss_gb = cold["peak_rss_kb"] / (1024 * 1024)
        rss_tier["peak_rss_gb"] = round(rss_gb, 2)
        if args.max_rss_gb and rss_gb > args.max_rss_gb:
            failures.append(
                f"{args.rss_size}: peak RSS {rss_gb:.2f}GB "
                f"> gate {args.max_rss_gb}GB"
            )
        print(
            f"rss tier size={args.rss_size}: "
            f"cold={cold['cold_total_s']:.2f}s peak_rss={rss_gb:.2f}GB",
            file=sys.stderr,
        )

    pool: List[Dict[str, Any]] = []
    if args.pool_size:
        source = staggered_source(args.pool_size)
        interleaved = run_pool_arm(source, args.seed, 1, True, "interleaved")
        barrier = run_pool_arm(
            source, args.seed, args.pool_workers, False, "pool-barrier"
        )
        overlapped = run_pool_arm(
            source, args.seed, args.pool_workers, True, "pool-overlapped"
        )
        pool = [interleaved, barrier, overlapped]
        if len({arm["content_sha"] for arm in pool}) != 1:
            failures.append("pool: final state hash diverged across arms")
        if overlapped["makespan_sim_s"] >= barrier["makespan_sim_s"]:
            failures.append(
                f"pool: overlapped makespan {overlapped['makespan_sim_s']} "
                f"not better than barrier {barrier['makespan_sim_s']}"
            )
        if (
            cpus >= args.pool_workers
            and overlapped["apply_wall_s"] >= barrier["apply_wall_s"]
        ):
            failures.append(
                f"pool: overlapped wall {overlapped['apply_wall_s']}s "
                f"not better than barrier {barrier['apply_wall_s']}s "
                f"({cpus} cpus)"
            )
        for arm in pool:
            print(
                f"pool {arm['arm']:16s} wall={arm['apply_wall_s']:7.2f}s "
                f"makespan={arm['makespan_sim_s']:9.1f}s "
                f"waves={arm['waves']}",
                file=sys.stderr,
            )

    return {
        "benchmark": "p8_coldstart",
        "workload": "scale_estate_sharded",
        "seed": args.seed,
        "providers": args.providers,
        "cpus": cpus,
        "sizes": args.sizes,
        "pool_size": args.pool_size,
        "pool_workers": args.pool_workers,
        "tiers": tiers,
        "rss_tier": rss_tier,
        "pool": pool,
        "failures": failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="10000,100000")
    parser.add_argument("--providers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--max-warm-frac",
        type=float,
        default=0.10,
        help="warm plan must cost at most this fraction of cold",
    )
    parser.add_argument(
        "--warm-gate-min-size",
        type=int,
        default=10000,
        help="arm the warm-fraction gate at and above this size",
    )
    parser.add_argument(
        "--rss-size",
        type=int,
        default=1000000,
        help="cold tier sized for the peak-RSS record (0 disables)",
    )
    parser.add_argument(
        "--max-rss-gb",
        type=float,
        default=0.0,
        help="peak-RSS gate for the --rss-size tier (0 records only)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=100000,
        help="staggered-DAG apply size for the pool arms (0 disables)",
    )
    parser.add_argument("--pool-workers", type=int, default=4)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "BENCH_coldstart.json"
        ),
    )
    # hidden: subprocess mode for cold tiers
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--size", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return cold_child(args)
    args.sizes = [int(s) for s in str(args.sizes).split(",") if s]

    report = bench(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if report["failures"]:
        for line in report["failures"]:
            print(f"GATE FAILED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
