"""P2 `chaos` -- retry overhead of the lifecycle under injected faults.

Drives the full lifecycle (apply -> drift detect/reconcile ->
concurrent update -> rollback) at blanket transient fault rates of
0, 0.05 and 0.15, and reports what resilience costs: extra API calls,
retry counts, and simulated seconds spent backing off. The numbers
land in ``BENCH_chaos.json``.

CI runs the single-seed smoke tier of the equivalent test sweep
(``CHAOS_SEEDS=0 python -m pytest tests/chaos -q``); this script is the
quantitative companion::

    python benchmarks/bench_p2_chaos.py --rates 0,0.05,0.15 --seed 0 \
        --out BENCH_chaos.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import perf
from repro.cloud import RetryPolicy
from repro.core import CloudlessEngine
from repro.drift import FullScanDetector
from repro.state import ResourceLockManager
from repro.update import (
    ReversibilityAwareRollback,
    UpdateCoordinator,
    UpdateRequest,
    measure_divergence,
)
from repro.workloads import web_tier

PATIENT = RetryPolicy(max_attempts=6, base_backoff_s=2.0)


def run_lifecycle(seed: int, rate: float) -> Dict[str, Any]:
    engine = CloudlessEngine(seed=seed, retry=PATIENT)
    for plane in engine.gateway.planes.values():
        if rate > 0.0:
            plane.faults.set_transient_rate(rate)

    perf.reset()
    perf.enable()
    wall0 = time.perf_counter()
    sim0 = engine.clock.now

    # apply (resume partial passes under faults)
    for _ in range(4):
        result = engine.apply(web_tier(web_vms=6, app_vms=4))
        if result.ok:
            break
    assert result.ok, "apply did not converge"
    apply_makespan = result.apply.makespan_s

    # drift + reconcile
    vms = [
        e
        for e in engine.state.resources()
        if e.address.type == "aws_virtual_machine"
    ]
    engine.gateway.planes["aws"].external_update(
        vms[0].resource_id, {"image": "win-2022"}
    )
    engine.gateway.planes["aws"].external_delete(vms[1].resource_id)
    for _ in range(6):
        run = FullScanDetector(engine.resilient).scan(engine.state)
        findings = [f for f in run.findings if f.kind != "unmanaged"]
        if not findings:
            break
        engine.reconcile(findings)

    snap = engine.history.checkpoint(
        engine.state,
        engine.last_sources,
        timestamp=engine.clock.now,
        description="post-reconcile",
    )

    # concurrent update with cloud-side work
    targets = [
        e
        for e in engine.state.resources()
        if e.address.type == "aws_virtual_machine"
    ][:3]

    def resize(entry):
        def ops(gw):
            gw.execute(
                "update",
                entry.address.type,
                resource_id=entry.resource_id,
                attrs={"size": "xlarge"},
            )

        return ops

    coordinator = UpdateCoordinator(
        engine.state, ResourceLockManager(), gateway=engine.resilient
    )
    outcome = coordinator.run(
        [
            UpdateRequest(
                team=f"team-{i}",
                submitted_at=engine.clock.now,
                keys={str(t.address)},
                duration_s=120.0,
                cloud_ops=resize(t),
            )
            for i, t in enumerate(targets)
        ]
    )

    # rollback to the post-reconcile snapshot
    planner = ReversibilityAwareRollback(engine.resilient)
    for _ in range(5):
        plan = planner.plan(snap, engine.state)
        planner.execute(plan, engine.state)
        if measure_divergence(engine.gateway, snap, engine.state) == 0:
            break
    divergence = measure_divergence(engine.gateway, snap, engine.state)

    wall = time.perf_counter() - wall0
    snap_perf = perf.snapshot()
    perf.disable()
    backoff = snap_perf["timers"].get("resilience.backoff_sim_s", {})
    return {
        "rate": rate,
        "converged": divergence == 0,
        "divergence": divergence,
        "apply_makespan_sim_s": round(apply_makespan, 1),
        "lifecycle_sim_s": round(engine.clock.now - sim0, 1),
        "api_calls": engine.gateway.total_api_calls(),
        "retries": snap_perf["counters"].get("resilience.retries", 0),
        "gave_up": snap_perf["counters"].get("resilience.gave_up", 0),
        "timeouts": snap_perf["counters"].get("resilience.timeouts", 0),
        "backoff_sim_s": round(backoff.get("total_s", 0.0), 1),
        "update_errors": len(outcome.errors),
        "wall_s": round(wall, 3),
    }


def bench(args: argparse.Namespace) -> Dict[str, Any]:
    rows: List[Dict[str, Any]] = []
    baseline: Optional[Dict[str, Any]] = None
    for rate in args.rates:
        row = run_lifecycle(args.seed, rate)
        if rate == 0.0:
            baseline = row
        if baseline is not None:
            row["extra_api_calls"] = row["api_calls"] - baseline["api_calls"]
        rows.append(row)
        print(
            f"  rate={rate:<5} converged={row['converged']} "
            f"api_calls={row['api_calls']} retries={row['retries']} "
            f"backoff={row['backoff_sim_s']}s sim={row['lifecycle_sim_s']}s",
            file=sys.stderr,
        )
    return {
        "benchmark": "p2_chaos",
        "workload": "web_tier(web_vms=6, app_vms=4) full lifecycle",
        "seed": args.seed,
        "rates": args.rates,
        "results": rows,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rates",
        default="0,0.05,0.15",
        help="comma-separated blanket transient fault rates",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "BENCH_chaos.json"
        ),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    args.rates = [float(r) for r in str(args.rates).split(",") if r.strip()]

    report = bench(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if not all(row["converged"] for row in report["results"]):
        print("LIFECYCLE DID NOT CONVERGE", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
