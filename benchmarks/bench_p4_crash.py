"""P4 `crash` -- cost and coverage of the crash-safe apply path.

Two questions about the write-ahead intent journal from this PR:

* **overhead** -- what does journaling every dispatch cost a healthy
  1k-resource apply? Measured as wall-clock best-of-N with the WAL on
  vs off; the simulated makespan must be *identical* (journaling is
  pure observation, it never reorders the schedule). ``--gate-overhead
  0.05`` makes >5% overhead an exit-1 failure.
* **recovery** -- kill an apply mid-flight at several boundaries and
  time the resume: journal replay, control-plane probing, orphan
  adoption, and the continuation apply, ending in a converged estate
  (state ids <-> live ids is a bijection).

CI smoke tier::

    python benchmarks/bench_p4_crash.py --resources 1000 \
        --gate-overhead 0.05 --out /tmp/BENCH_crash.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import CloudlessEngine
from repro.deploy import SimulatedCrash
from repro.workloads import sized_estate

REPEATS = 5  # best-of-N wall clock per arm (arms interleaved)
CRASH_RESOURCES = 120  # estate for the crash/resume cycle
KILL_FRACTIONS = (0.25, 0.5, 0.75)  # where in the run the process dies


def one_apply(source, seed: int, wal_path: Optional[str]):
    engine = CloudlessEngine(seed=seed, wal_path=wal_path)
    t0 = time.perf_counter()
    result = engine.apply(source)
    wall = time.perf_counter() - t0
    assert result.ok, "benchmark apply failed"
    if wal_path and os.path.exists(wal_path):
        os.unlink(wal_path)
    return wall, engine.clock.now


def bench_overhead(args, workdir) -> Dict[str, Any]:
    source = sized_estate(args.resources)
    wal_path = os.path.join(workdir, "bench.wal")
    # warm both arms (imports, pyc, allocator), then interleave the
    # measured repeats so machine noise hits both arms equally
    one_apply(source, args.seed, None)
    one_apply(source, args.seed, wal_path)
    plain_wall = wal_wall = float("inf")
    plain_makespan = wal_makespan = None
    for _ in range(REPEATS):
        wall, makespan = one_apply(source, args.seed, None)
        plain_wall = min(plain_wall, wall)
        plain_makespan = makespan
        wall, makespan = one_apply(source, args.seed, wal_path)
        wal_wall = min(wal_wall, wall)
        wal_makespan = makespan
    assert wal_makespan == plain_makespan, (
        "journaling changed the simulated schedule: "
        f"{wal_makespan} != {plain_makespan}"
    )
    overhead = (wal_wall - plain_wall) / max(plain_wall, 1e-9)
    return {
        "op": "apply_overhead",
        "resources": args.resources,
        "plain_wall_s": round(plain_wall, 6),
        "wal_wall_s": round(wal_wall, 6),
        "sim_makespan_s": round(plain_makespan, 3),
        "overhead_frac": round(overhead, 4),
    }


def bench_recovery(args, workdir) -> List[Dict[str, Any]]:
    source = sized_estate(CRASH_RESOURCES, name="crashbench")

    # count the event boundaries of an uninterrupted run
    boundaries: List[int] = []
    probe = CloudlessEngine(
        seed=args.seed, wal_path=os.path.join(workdir, "probe.wal")
    )
    assert probe.apply(source, crash_hook=boundaries.append).ok
    total = len(boundaries)

    rows: List[Dict[str, Any]] = []
    for fraction in KILL_FRACTIONS:
        kill_at = int(total * fraction)
        wal = os.path.join(workdir, f"crash-{kill_at}.wal")
        engine = CloudlessEngine(seed=args.seed, wal_path=wal)

        def hook(index, _k=kill_at):
            if index == _k:
                raise SimulatedCrash()

        try:
            engine.apply(source, crash_hook=hook)
        except SimulatedCrash:
            pass
        engine.gateway.settle_inflight()

        t0 = time.perf_counter()
        outcome = engine.resume(source)
        resume_wall = time.perf_counter() - t0
        assert outcome.ok, f"resume failed at boundary {kill_at}"

        state_ids = {
            e.resource_id for e in engine.state.resources() if e.resource_id
        }
        live_ids = {r.id for r in engine.gateway.all_records()}
        assert state_ids == live_ids, "resume left orphans or dead entries"

        summary = outcome.recovery.summary() if outcome.recovery else {}
        rows.append(
            {
                "op": "crash_resume",
                "resources": CRASH_RESOURCES,
                "killed_at_boundary": kill_at,
                "total_boundaries": total,
                "resume_wall_s": round(resume_wall, 6),
                "recovery": summary,
                "adopted": len(outcome.recovery.adopted)
                if outcome.recovery
                else 0,
            }
        )
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--resources",
        type=int,
        default=1000,
        help="estate size for the overhead measurement",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--gate-overhead",
        type=float,
        default=0.0,
        help="fail (exit 1) if WAL overhead exceeds this fraction",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "BENCH_crash.json"
        ),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="bench-crash-")
    failures: List[str] = []
    try:
        overhead_row = bench_overhead(args, workdir)
        print(
            f"  apply_overhead  n={args.resources:6d} "
            f"plain={overhead_row['plain_wall_s']:.4f}s "
            f"wal={overhead_row['wal_wall_s']:.4f}s "
            f"overhead={overhead_row['overhead_frac'] * 100:.2f}%",
            file=sys.stderr,
        )
        if (
            args.gate_overhead
            and overhead_row["overhead_frac"] > args.gate_overhead
        ):
            failures.append(
                f"apply_overhead: {overhead_row['overhead_frac']:.4f} "
                f"> allowed {args.gate_overhead}"
            )
        recovery_rows = bench_recovery(args, workdir)
        for row in recovery_rows:
            print(
                f"  crash_resume    n={row['resources']:6d} "
                f"kill@{row['killed_at_boundary']}/{row['total_boundaries']} "
                f"resume={row['resume_wall_s']:.4f}s "
                f"recovered={row['recovery']}",
                file=sys.stderr,
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report = {
        "benchmark": "p4_crash",
        "seed": args.seed,
        "repeats": REPEATS,
        "results": [overhead_row] + recovery_rows,
        "failures": failures,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if failures:
        for line in failures:
            print(f"GATE MISSED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
