"""E9 `policy` -- paper 3.6, "Policies as observations and actions".

Claim: users "cannot easily define policies that are not explicitly
supported by cloud providers, such as 'scale out the number of VPN
gateways and attached tunnels if traffic throughput is close to their
capacity'". Arms: (a) native cloud autoscaling -- which *rejects* the
policy outright (reproduced as UnsupportedPolicyError), leaving a static
estate; (b) the cloudless controller observing tunnel throughput and
acting on the IaC program's count variable. The workload is a traffic
surge; metrics: traffic dropped (SLO violation integral), reaction
latency, peak tunnel count, scale events.
"""

import pytest

from repro.core import CloudlessEngine
from repro.policy import (
    CustomMetricScalePolicy,
    InfrastructureController,
    MetricStore,
    NativeAutoscalePolicy,
    UnsupportedPolicyError,
)
from repro.workloads import distribute_demand, ramp_surge_trace, vpn_site

from _support import Table, record

TUNNEL_CAPACITY_MBPS = 500.0
INITIAL_TUNNELS = 2
TRACE = dict(duration_s=4 * 3600.0, step_s=60.0, base=300.0, peak=2600.0, seed=9)


def run_simulation(policy_enabled, seed=900):
    engine = CloudlessEngine(seed=seed)
    variables = {"tunnel_count": INITIAL_TUNNELS}
    assert engine.apply(vpn_site(tunnels=INITIAL_TUNNELS), variables=variables).ok
    metrics = MetricStore()
    controller = InfrastructureController()
    policy = None
    if policy_enabled:
        policy = CustomMetricScalePolicy(
            name="vpn-throughput",
            target_type="aws_vpn_tunnel",
            metric="throughput_mbps",
            capacity_per_instance=TUNNEL_CAPACITY_MBPS,
            count_variable="tunnel_count",
            high=0.8,
            low=0.25,
            min_count=1,
            max_count=12,
            cooldown_s=300.0,
            window_s=120.0,
        )
        controller.register(policy)

    trace = ramp_surge_trace(**TRACE)
    t0 = engine.clock.now
    # (effective_from, tunnel_count): capacity only counts once the
    # apply that created it has finished provisioning
    capacity_history = [(t0, INITIAL_TUNNELS)]
    dropped_mbps_minutes = 0.0
    reaction_latency = None
    first_saturation_at = None
    scale_events = 0

    def capacity_at(t):
        count = capacity_history[0][1]
        for effective_from, c in capacity_history:
            if effective_from <= t:
                count = c
            else:
                break
        return count

    for point in trace:
        sim_t = t0 + point.t
        if sim_t > engine.clock.now:
            engine.clock.advance_to(sim_t)
        effective = capacity_at(sim_t)
        loads, dropped = distribute_demand(
            point.value, effective, TUNNEL_CAPACITY_MBPS
        )
        dropped_mbps_minutes += dropped * (TRACE["step_s"] / 60.0)
        if dropped > 0 and first_saturation_at is None:
            first_saturation_at = sim_t
        tunnels = [
            e
            for e in engine.state.resources()
            if e.address.type == "aws_vpn_tunnel"
        ]
        per_tunnel = loads[0] if loads else 0.0
        for entry in tunnels:
            metrics.record(
                str(entry.address), "throughput_mbps", engine.clock.now, per_tunnel
            )
        if policy is None:
            continue
        actions = controller.evaluate_metrics(
            metrics, engine.state, variables, engine.clock.now
        )
        new_vars = controller.apply_variable_actions(actions, variables)
        if new_vars["tunnel_count"] != variables["tunnel_count"]:
            scale_events += 1
            variables = {"tunnel_count": new_vars["tunnel_count"]}
            result = engine.apply(
                vpn_site(tunnels=INITIAL_TUNNELS), variables=variables
            )
            assert result.ok
            capacity_history.append(
                (engine.clock.now, variables["tunnel_count"])
            )
            if (
                reaction_latency is None
                and first_saturation_at is not None
                and variables["tunnel_count"] > INITIAL_TUNNELS
            ):
                reaction_latency = engine.clock.now - first_saturation_at
    peak = max(c for _, c in capacity_history)
    final = engine.gateway.planes["aws"].count("aws_vpn_tunnel")
    return {
        "dropped_gb": dropped_mbps_minutes * 60.0 / 8.0 / 1000.0,
        "reaction_s": reaction_latency,
        "scale_events": scale_events,
        "peak_tunnels": peak,
        "final_tunnels": final,
    }


def native_policy_is_expressible():
    try:
        NativeAutoscalePolicy(
            name="vpn-native",
            target_type="aws_vpn_tunnel",
            metric="throughput_mbps",
            capacity_per_instance=TUNNEL_CAPACITY_MBPS,
            count_variable="tunnel_count",
        )
        return True
    except UnsupportedPolicyError:
        return False


def run_experiment():
    table = Table(
        "E9: VPN-tunnel autoscaling on custom metrics (4h surge)",
        [
            "arm",
            "expressible",
            "dropped_gb",
            "reaction_s",
            "scale_events",
            "peak_tunnels",
            "final_tunnels",
        ],
    )
    native_ok = native_policy_is_expressible()
    static = run_simulation(policy_enabled=False)
    table.add(
        "native cloud autoscaling",
        native_ok,
        static["dropped_gb"],
        "-",
        0,
        INITIAL_TUNNELS,
        static["final_tunnels"],
    )
    cloudless = run_simulation(policy_enabled=True)
    table.add(
        "cloudless controller",
        True,
        cloudless["dropped_gb"],
        cloudless["reaction_s"],
        cloudless["scale_events"],
        cloudless["peak_tunnels"],
        cloudless["final_tunnels"],
    )
    headline = {
        "native_expressible": native_ok,
        "static_dropped_gb": round(static["dropped_gb"], 2),
        "cloudless_dropped_gb": round(cloudless["dropped_gb"], 2),
        "reaction_s": cloudless["reaction_s"],
        "scale_events": cloudless["scale_events"],
        "peak_tunnels": cloudless["peak_tunnels"],
        "final_tunnels": cloudless["final_tunnels"],
    }
    return table, headline


def test_e9_policy(benchmark):
    table, headline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    # the paper's premise: the policy is not expressible natively
    assert headline["native_expressible"] is False
    # the cloudless controller sheds most of the violation
    assert headline["cloudless_dropped_gb"] < headline["static_dropped_gb"] / 4
    # it reacted within minutes (tunnel provisioning included)
    assert headline["reaction_s"] is not None
    assert headline["reaction_s"] < 1200.0
    # and scaled back in after the surge
    assert headline["final_tunnels"] < headline["peak_tunnels"]


if __name__ == "__main__":
    print(run_experiment()[0].render())
