"""E1 `deploy-speed` -- paper 3.3, Figure 1(a) "suboptimal deployment".

Claim: best-effort graph walks leave parallelism and critical-path
opportunities on the table. Arms: sequential floor, Terraform-style
best-effort walk (baseline), cloudless critical-path scheduler, and the
rate-awareness ablation. Expected shape: CP <= best-effort << sequential,
with the gap widest on wide graphs and on the gateway-dominated Azure
topology (the critical path is the 25-minute VPN gateway).
"""

import pytest

from repro.cloud import CloudGateway
from repro.deploy import (
    BestEffortExecutor,
    CriticalPathExecutor,
    SequentialExecutor,
)
from repro.deploy.incremental import read_data_sources
from repro.graph import Planner, analyze, build_graph
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import hub_spoke, microservices, web_tier

from _support import Table, record

TOPOLOGIES = {
    "web-tier (narrow)": web_tier(web_vms=6, app_vms=4),
    "microservices (wide)": microservices(services=8, vms_per_service=2),
    "hub-spoke (deep, azure)": hub_spoke(spokes=4, vms_per_spoke=2),
}


def run_arm(source, make_executor, seed=100):
    gateway = CloudGateway.simulated(seed=seed)
    graph = build_graph(Configuration.parse(source))
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    state = StateDocument()
    data = read_data_sources(gateway, graph, state)
    plan = planner.plan(graph, state, data_values=data)
    analysis = analyze(plan, gateway.mean_latency)
    executor = make_executor(gateway)
    result = executor.apply(plan)
    assert result.ok, result.failed
    return result, analysis, len(graph)


ARMS = {
    "sequential": lambda gw: SequentialExecutor(gw),
    "best-effort (terraform)": lambda gw: BestEffortExecutor(gw, concurrency=10),
    "critical-path": lambda gw: CriticalPathExecutor(gw, concurrency=10),
    "critical-path (no rate-awareness)": lambda gw: CriticalPathExecutor(
        gw, concurrency=10, rate_aware=False
    ),
}


def run_experiment():
    table = Table(
        "E1: deployment makespan by scheduler (simulated seconds)",
        ["topology", "n", "arm", "makespan_s", "speedup_vs_seq", "cp_bound_s"],
    )
    headline = {}
    for topo_name, source in TOPOLOGIES.items():
        baseline = None
        for arm_name, make in ARMS.items():
            result, analysis, n = run_arm(source, make)
            if baseline is None:
                baseline = result.makespan_s
            table.add(
                topo_name,
                n,
                arm_name,
                result.makespan_s,
                baseline / result.makespan_s,
                analysis.critical_length_s,
            )
            headline[f"{topo_name}|{arm_name}"] = round(result.makespan_s, 1)
    return table, headline


def run_concurrency_sweep():
    """Figure-style series: CP's edge grows as worker slots shrink."""
    table = Table(
        "E1b: best-effort vs critical-path under constrained concurrency",
        ["concurrency", "best_effort_s", "critical_path_s", "cp_gain"],
    )
    source = web_tier(web_vms=12, app_vms=6)
    series = {}
    for k in (2, 3, 4, 6, 10):
        be, _, _ = run_arm(
            source, lambda gw: BestEffortExecutor(gw, concurrency=k)
        )
        cp, _, _ = run_arm(
            source, lambda gw: CriticalPathExecutor(gw, concurrency=k)
        )
        gain = be.makespan_s / cp.makespan_s
        table.add(k, be.makespan_s, cp.makespan_s, gain)
        series[k] = gain
    return table, series


def test_e1_deploy_speed(benchmark):
    table, headline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    # shape assertions: CP never slower than best-effort; both crush
    # sequential on the wide topology
    wide_seq = headline["microservices (wide)|sequential"]
    wide_be = headline["microservices (wide)|best-effort (terraform)"]
    wide_cp = headline["microservices (wide)|critical-path"]
    assert wide_cp <= wide_be * 1.05
    assert wide_cp < wide_seq / 3


def test_e1b_concurrency_sweep(benchmark):
    table, series = benchmark.pedantic(
        run_concurrency_sweep, rounds=1, iterations=1
    )
    record(benchmark, table, **{f"gain@k={k}": round(v, 3) for k, v in series.items()})
    # CP's advantage is largest when slots are scarce and fades when
    # every ready op fits in a slot
    assert series[4] > 1.1
    assert series[10] >= 0.99


if __name__ == "__main__":
    print(run_experiment()[0].render())
    print(run_concurrency_sweep()[0].render())
