"""P7 `drift` -- event-driven watch vs periodic full-scan sweeps.

One aws estate (:func:`scale_estate`) under sustained external
mutation: a deterministic, seeded mix of out-of-band attribute updates
(vm resize), deletions (dns records), and rogue creations (s3
buckets), spread across a simulated window. Three detection arms
replay the *identical* mutation schedule against same-seed estates:

* **scan** -- :class:`FullScanDetector` on the driftctl-style cadence
  (every ``--scan-interval`` seconds, default 600);
* **scan-fast** -- the same full scan forced onto the watcher's
  cadence (every ``--event-interval`` seconds) -- the API-call cost a
  sweep would pay to *match* the watcher's latency;
* **event** -- :class:`DriftWatcher` cycles (cursor-tailed activity
  logs, coalescing on) every ``--event-interval`` seconds.

Gates (exit 1 on miss):

* every scheduled mutation is detected by every arm;
* event-driven detection API calls are <= ``--gate-call-ratio`` x the
  matched-cadence full scan's (the paper's point: log tailing costs
  O(planes) per cycle, scanning costs O(estate));
* event-driven mean detection latency beats the driftctl-cadence
  scan's (same freshness is unaffordable by sweeping; better freshness
  is cheap by tailing);
* at quiescence the event arm's accumulated finding set is *identical*
  (kind + resource id) to a final full scan of its own estate --
  tailing loses nothing a sweep would have found.

CI smoke tier::

    python benchmarks/bench_p7_drift.py --resources 1000 \
        --gate-call-ratio 0.10 --out /tmp/BENCH_drift.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))

from repro.core import CloudlessEngine
from repro.drift import DriftWatcher, FullScanDetector
from repro.workloads import scale_estate

MUT_UPDATE, MUT_DELETE, MUT_CREATE = "update", "delete", "create"
#: finding kind each mutation must eventually surface as
EXPECTED_KIND = {
    MUT_UPDATE: "modified",
    MUT_DELETE: "deleted",
    MUT_CREATE: "unmanaged",
}


def build_schedule(args) -> List[Dict[str, Any]]:
    """Deterministic mutation mix, identical for every arm.

    Targets are resource *addresses* (stable across same-seed estates);
    each arm resolves them against its own state. Every target is
    mutated at most once, so one mutation <-> one finding.
    """
    probe = CloudlessEngine(seed=args.seed)
    assert probe.apply(scale_estate(args.resources)).ok, "estate apply failed"
    vms = sorted(
        str(e.address)
        for e in probe.state.resources()
        if e.address.type == "aws_virtual_machine"
    )
    leaves = sorted(
        str(e.address)
        for e in probe.state.resources()
        if e.address.type == "aws_dns_record"
    )
    rng = random.Random(args.seed)
    count = min(args.mutations, len(vms) // 2, len(leaves))
    updates = rng.sample(vms, count)
    deletes = rng.sample(leaves, count // 3) if count >= 3 else []
    creates = count // 3
    schedule: List[Dict[str, Any]] = []
    # mutations stop one scan interval before the window closes so even
    # the slow sweep's last pass sees everything (fair latency means)
    horizon = args.window - args.scan_interval
    for i, address in enumerate(updates):
        schedule.append(
            {
                "t": rng.uniform(1.0, horizon),
                "op": MUT_UPDATE,
                "address": address,
                "attrs": {"size": f"drift-{i}"},
            }
        )
    for address in deletes:
        schedule.append(
            {"t": rng.uniform(1.0, horizon), "op": MUT_DELETE, "address": address}
        )
    for i in range(creates):
        schedule.append(
            {
                "t": rng.uniform(1.0, horizon),
                "op": MUT_CREATE,
                "rtype": "aws_s3_bucket",
                "attrs": {"name": f"rogue-{i}"},
                "region": "us-east-1",
            }
        )
    schedule.sort(key=lambda m: m["t"])
    return schedule


def apply_mutation(engine, mutation) -> str:
    """Replay one scheduled mutation; returns the affected record id."""
    plane = engine.gateway.planes["aws"]
    if mutation["op"] == MUT_CREATE:
        return plane.external_create(
            mutation["rtype"],
            dict(mutation["attrs"]),
            mutation["region"],
            actor="bench",
        )
    entry = next(
        e
        for e in engine.state.resources()
        if str(e.address) == mutation["address"]
    )
    if mutation["op"] == MUT_DELETE:
        plane.external_delete(entry.resource_id, actor="bench")
    else:
        plane.external_update(
            entry.resource_id, dict(mutation["attrs"]), actor="bench"
        )
    return entry.resource_id


def run_arm(args, schedule, interval_s: float, mode: str) -> Dict[str, Any]:
    """Replay the schedule against a fresh estate, detecting on a fixed
    cadence; returns call/latency/finding accounting."""
    engine = CloudlessEngine(seed=args.seed)
    assert engine.apply(scale_estate(args.resources)).ok
    if mode == "event":
        watcher = DriftWatcher(engine.gateway, auto_reconcile=False)
        first = watcher.cycle(engine.state)
        assert first.findings == [], "apply history misread as drift"
        detect = lambda: watcher.cycle(engine.state).run  # noqa: E731
    else:
        detector = FullScanDetector(engine.gateway)
        detect = lambda: detector.scan(engine.state)  # noqa: E731

    cycles = int(args.window // interval_s)
    t0 = engine.clock.now  # schedule times are offsets from post-apply
    timeline: List[Tuple[float, int, Any]] = [
        (m["t"], 0, m) for m in schedule
    ] + [(interval_s * (i + 1), 1, None) for i in range(cycles)]
    timeline.sort(key=lambda item: (item[0], item[1]))

    expect: Dict[Tuple[str, str], int] = {}  # (kind, rid) -> mutation idx
    fired_at: Dict[int, float] = {}
    detected_at: Dict[int, float] = {}
    seen_keys = set()
    api_calls = 0
    wall0 = time.perf_counter()
    mut_idx = 0
    for when, _, payload in timeline:
        if t0 + when > engine.clock.now:  # ops tick the sim clock too
            engine.clock.advance_to(t0 + when)
        if payload is not None:
            rid = apply_mutation(engine, payload)
            expect[(EXPECTED_KIND[payload["op"]], rid)] = mut_idx
            fired_at[mut_idx] = when
            mut_idx += 1
            continue
        run = detect()
        api_calls += run.api_calls
        for finding in run.findings:
            key = (finding.kind, finding.resource_id)
            seen_keys.add(key)
            idx = expect.get(key)
            if idx is not None and idx not in detected_at:
                detected_at[idx] = when
    wall_s = time.perf_counter() - wall0

    missed = sorted(set(fired_at) - set(detected_at))
    latencies = [detected_at[i] - fired_at[i] for i in sorted(detected_at)]
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    # ground truth at quiescence: a full sweep of this arm's own estate
    final = FullScanDetector(engine.gateway).scan(engine.state)
    final_keys = {(f.kind, f.resource_id) for f in final.findings}
    return {
        "mode": mode,
        "interval_s": interval_s,
        "cycles": cycles,
        "api_calls": api_calls,
        "calls_per_cycle": round(api_calls / max(cycles, 1), 2),
        "mutations": len(fired_at),
        "detected": len(detected_at),
        "missed": len(missed),
        "mean_latency_s": round(mean_latency, 2),
        "max_latency_s": round(max(latencies), 2) if latencies else 0.0,
        "wall_s": round(wall_s, 4),
        "seen_keys": seen_keys,
        "final_keys": final_keys,
    }


def run(args) -> tuple:
    rows: List[Dict[str, Any]] = []
    failures: List[str] = []

    schedule = build_schedule(args)
    scan = run_arm(args, schedule, args.scan_interval, "scan")
    scan_fast = run_arm(args, schedule, args.event_interval, "scan-fast")
    event = run_arm(args, schedule, args.event_interval, "event")

    for arm in (scan, scan_fast, event):
        if arm["missed"]:
            failures.append(
                f"{arm['mode']} arm missed {arm['missed']} of "
                f"{arm['mutations']} mutations"
            )
    ratio = event["api_calls"] / max(scan_fast["api_calls"], 1)
    if ratio > args.gate_call_ratio:
        failures.append(
            f"event-driven detection cost {event['api_calls']} calls = "
            f"{ratio:.3f}x the matched-cadence full scan "
            f"({scan_fast['api_calls']}); allowed {args.gate_call_ratio}x"
        )
    if event["mean_latency_s"] >= scan["mean_latency_s"] > 0:
        failures.append(
            f"event-driven mean latency {event['mean_latency_s']}s did not "
            f"beat the {args.scan_interval:.0f}s-cadence scan's "
            f"{scan['mean_latency_s']}s"
        )
    if event["seen_keys"] != event["final_keys"]:
        only_scan = sorted(event["final_keys"] - event["seen_keys"])[:5]
        only_event = sorted(event["seen_keys"] - event["final_keys"])[:5]
        failures.append(
            "finding sets diverge at quiescence: "
            f"scan-only={only_scan} event-only={only_event}"
        )

    for arm in (scan, scan_fast, event):
        arm.pop("seen_keys")
        arm.pop("final_keys")
        arm["call_ratio_vs_scan_fast"] = round(
            arm["api_calls"] / max(scan_fast["api_calls"], 1), 4
        )
        rows.append(dict(arm, op="detect", resources=args.resources))
    return rows, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--resources", type=int, default=10000, help="estate size"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mutations",
        type=int,
        default=60,
        help="external updates in the mix (deletes/creates are each 1/3 of this)",
    )
    parser.add_argument(
        "--window", type=float, default=3600.0, help="simulated seconds"
    )
    parser.add_argument(
        "--event-interval",
        type=float,
        default=60.0,
        help="watcher cadence (also the scan-fast cadence)",
    )
    parser.add_argument(
        "--scan-interval",
        type=float,
        default=600.0,
        help="driftctl-style sweep cadence",
    )
    parser.add_argument(
        "--gate-call-ratio",
        type=float,
        default=0.10,
        help="max event/scan-fast API-call ratio",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(_HERE, "BENCH_drift.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    rows, failures = run(args)
    for row in rows:
        print(f"  {json.dumps(row)}", file=sys.stderr)

    report = {
        "benchmark": "p7_drift",
        "seed": args.seed,
        "window_s": args.window,
        "results": rows,
        "failures": failures,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if failures:
        for line in failures:
            print(f"GATE MISSED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
