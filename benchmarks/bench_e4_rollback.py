"""E4 `rollback` -- paper 3.4, "IaC rollbacks during updates".

Claim: "simply applying a previous configuration doesn't always roll
back the infrastructure to its intended previous state" -- out-of-band
(shadow) modifications are invisible to a state-file diff, and
irreversible changes need planned replacement. Arms: naive re-apply
(baseline) vs reversibility-aware rollback, swept over the number of
shadow-modified resources. Metrics: remaining divergence (convergence),
redeployments performed (minimality), runtime errors hit.
"""

import pytest

from repro.core import CloudlessEngine
from repro.update import (
    NaiveRollback,
    ReversibilityAwareRollback,
    measure_divergence,
)
from repro.workloads import web_tier

from _support import Table, record


def scenario(shadow_mods, seed):
    """Deploy, checkpoint, shadow-drift k VMs, then scale the estate up."""
    engine = CloudlessEngine(seed=seed)
    v1 = engine.apply(web_tier(web_vms=6, app_vms=4))
    assert v1.ok
    vms = [
        e
        for e in engine.state.resources()
        if e.address.type == "aws_virtual_machine"
    ][:shadow_mods]
    for i, vm in enumerate(vms):
        engine.gateway.planes["aws"].external_update(
            vm.resource_id, {"network_settings": f"custom-{i}"}, actor="script"
        )
    assert engine.apply(web_tier(web_vms=9, app_vms=4)).ok
    return engine, engine.history.get(v1.snapshot_version)


def run_experiment():
    table = Table(
        "E4: rollback convergence, naive re-apply vs reversibility-aware",
        [
            "shadow_mods",
            "arm",
            "redeployments",
            "api_calls",
            "errors",
            "divergence_after",
        ],
    )
    headline = {}
    for k in (0, 1, 3, 5):
        for arm_name, planner_cls in (
            ("naive re-apply (terraform)", NaiveRollback),
            ("reversibility-aware", ReversibilityAwareRollback),
        ):
            engine, snapshot = scenario(k, seed=400 + k)
            planner = planner_cls(engine.gateway)
            plan = planner.plan(snapshot, engine.state)
            result = planner.execute(plan, engine.state)
            divergence = measure_divergence(
                engine.gateway, snapshot, engine.state
            )
            table.add(
                k,
                arm_name,
                plan.redeployments,
                result.api_calls,
                len(result.errors),
                divergence,
            )
            headline[f"{k}|{arm_name}|divergence"] = divergence
            headline[f"{k}|{arm_name}|redeploy"] = plan.redeployments
    return table, headline


def test_e4_rollback(benchmark):
    table, headline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    for k in (1, 3, 5):
        # cloudless always converges; naive leaves exactly the shadow
        # modifications in place
        assert headline[f"{k}|reversibility-aware|divergence"] == 0
        assert headline[f"{k}|naive re-apply (terraform)|divergence"] >= k
        # and redeploys only the irreversibly-diverged resources (plus
        # cascaded dependents, here none for app VMs / the LB for web)
        assert headline[f"{k}|reversibility-aware|redeploy"] <= k + 1
    # with no shadow drift both converge and nothing is redeployed
    assert headline["0|reversibility-aware|redeploy"] == 0
    assert headline["0|naive re-apply (terraform)|divergence"] == 0


if __name__ == "__main__":
    print(run_experiment()[0].render())
