"""E3 `concurrent-updates` -- paper 3.4, "Concurrent updates and mutual
exclusion".

Claim: "Existing tools simply lock the entire cloud infrastructure for
modifications at any scale"; per-resource locks should let disjoint
updates proceed in parallel while still guaranteeing isolation. Arms:
global lock (baseline) vs per-resource lock manager, swept over team
count and over the probability that two teams touch the same resource.
Expected shape: near-linear throughput scaling for per-resource locks on
disjoint workloads, converging toward the global lock as the conflict
rate approaches 1.
"""

import random

import pytest

from repro.addressing import ResourceAddress
from repro.state import (
    GlobalLockManager,
    ResourceLockManager,
    ResourceState,
    StateDocument,
)
from repro.update import UpdateCoordinator, UpdateRequest

from _support import Table, record

WORK_S = 120.0  # cloud-side work once the lock is held
RESOURCES = 128


def seeded_state():
    doc = StateDocument()
    for i in range(RESOURCES):
        doc.set(
            ResourceState(
                address=ResourceAddress.parse(f"aws_virtual_machine.vm{i}"),
                resource_id=f"i-{i}",
                provider="aws",
                attrs={"name": f"vm{i}", "rev": 0},
                region="us-east-1",
            )
        )
    return doc


def requests_for(teams, overlap_p, seed):
    """Each team updates 4 resources: its own disjoint slice, except that
    with probability overlap_p a key is drawn from a small hot set
    shared across teams."""
    rng = random.Random(seed)
    hot = [f"aws_virtual_machine.vm{i}" for i in range(4)]
    out = []
    for t in range(teams):
        own = [
            f"aws_virtual_machine.vm{4 + (4 * t + j) % (RESOURCES - 4)}"
            for j in range(4)
        ]
        keys = set()
        for j in range(4):
            if overlap_p > 0 and rng.random() < overlap_p:
                keys.add(rng.choice(hot))
            else:
                keys.add(own[j])
        out.append(
            UpdateRequest(
                team=f"team-{t}",
                submitted_at=rng.uniform(0.0, 5.0),
                keys=keys,
                duration_s=WORK_S,
            )
        )
    return out


def run_arm(lock_manager, teams, overlap_p, seed=300):
    coordinator = UpdateCoordinator(seeded_state(), lock_manager)
    result = coordinator.run(requests_for(teams, overlap_p, seed))
    assert result.serializable
    return result


def run_team_sweep():
    table = Table(
        "E3: concurrent updates, global vs per-resource locks (disjoint teams)",
        [
            "teams",
            "arm",
            "makespan_s",
            "mean_wait_s",
            "max_wait_s",
            "updates_per_hour",
        ],
    )
    headline = {}
    for teams in (2, 4, 8, 16):
        for arm_name, manager in (
            ("global lock (terraform)", GlobalLockManager()),
            ("per-resource locks", ResourceLockManager()),
        ):
            result = run_arm(manager, teams, overlap_p=0.0)
            table.add(
                teams,
                arm_name,
                result.makespan_s,
                result.mean_wait_s,
                result.max_wait_s,
                result.throughput_per_hour,
            )
            headline[f"{teams}|{arm_name}"] = round(result.throughput_per_hour, 1)
    return table, headline


def run_conflict_sweep():
    table = Table(
        "E3b: per-resource locking vs conflict probability (8 teams)",
        ["overlap_p", "arm", "makespan_s", "mean_wait_s"],
    )
    series = {}
    for overlap_p in (0.0, 0.25, 0.5, 0.75, 1.0):
        for arm_name, manager in (
            ("global lock (terraform)", GlobalLockManager()),
            ("per-resource locks", ResourceLockManager()),
        ):
            result = run_arm(manager, teams=8, overlap_p=overlap_p)
            table.add(overlap_p, arm_name, result.makespan_s, result.mean_wait_s)
            series[(overlap_p, arm_name)] = result.makespan_s
    return table, series


def run_scheduling_sweep():
    """E3c ablation: 3.4's "different lock scheduling strategies".

    A contended workload (everyone wants one hot resource) with a mix of
    long and short updates: shortest-job-first cuts mean wait; FIFO
    preserves fairness.
    """
    table = Table(
        "E3c: lock scheduling policies on a contended mixed workload",
        ["policy", "makespan_s", "mean_wait_s", "max_wait_s"],
    )
    series = {}
    for policy in ("fifo", "shortest-job", "fewest-locks"):
        requests = []
        for i in range(8):
            requests.append(
                UpdateRequest(
                    team=f"team-{i}",
                    submitted_at=float(i) * 0.5,
                    keys={"aws_virtual_machine.vm0"},
                    duration_s=300.0 if i % 2 == 0 else 30.0,
                )
            )
        coordinator = UpdateCoordinator(
            seeded_state(), ResourceLockManager(), scheduling=policy
        )
        result = coordinator.run(requests)
        assert result.serializable
        table.add(policy, result.makespan_s, result.mean_wait_s, result.max_wait_s)
        series[policy] = round(result.mean_wait_s, 1)
    return table, series


def test_e3c_scheduling_policies(benchmark):
    table, series = benchmark.pedantic(
        run_scheduling_sweep, rounds=1, iterations=1
    )
    record(benchmark, table, **series)
    assert series["shortest-job"] < series["fifo"]


def test_e3_team_sweep(benchmark):
    table, headline = benchmark.pedantic(run_team_sweep, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    # disjoint updates: fine-grained locking scales ~linearly
    assert headline["8|per-resource locks"] > headline["8|global lock (terraform)"] * 5
    assert headline["16|per-resource locks"] > headline["16|global lock (terraform)"] * 8


def test_e3b_conflict_sweep(benchmark):
    table, series = benchmark.pedantic(run_conflict_sweep, rounds=1, iterations=1)
    record(
        benchmark,
        table,
        **{f"p={p}|{arm}": round(v, 1) for (p, arm), v in series.items()},
    )
    fine_p0 = series[(0.0, "per-resource locks")]
    fine_p1 = series[(1.0, "per-resource locks")]
    coarse_p1 = series[(1.0, "global lock (terraform)")]
    # advantage shrinks as everything contends on the same hot keys
    assert fine_p0 < fine_p1
    assert fine_p1 <= coarse_p1 * 1.05


if __name__ == "__main__":
    print(run_team_sweep()[0].render())
    print(run_conflict_sweep()[0].render())
    print(run_scheduling_sweep()[0].render())
