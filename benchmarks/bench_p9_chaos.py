"""P9 `chaos campaign` -- scenario-library convergence and recovery cost.

Runs a chaos campaign (default: the full checked-in scenario library)
through the twin-engine :class:`~repro.chaos.runner.CampaignRunner`
and reports, per scenario, whether every trial converged to the
uninterrupted baseline and what recovery cost: the chaos arm's API
calls and simulated makespan over the baseline arm's. The numbers
land in ``BENCH_chaos_campaign.json``.

Three gates, all on by default:

* **Pass rate**: every trial of every scenario must converge
  (``--gate-pass-rate``, default 1.0). A single stranded id, shape
  mismatch, or unretired journal fails the run.
* **Coverage floor**: the campaign must span ``--min-scenarios``
  (default 12) scenarios and ``--min-classes`` (default 6) defect
  taxonomy classes -- the ISSUE's library floor, so a shrinking
  library fails the bench before it fails review.
* **Recovery overhead**: mean chaos/baseline API-call ratio must stay
  under ``--gate-overhead`` (default 3.0). Retry storms that outgrow
  the breakers show up here first.

CI runs the single-trial tier::

    python benchmarks/bench_p9_chaos.py --trials 1 \
        --out /tmp/BENCH_chaos_campaign.json

The checked-in ``BENCH_chaos_campaign.json`` is the 3-trial run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.chaos import CampaignRunner, CampaignSpec, library


def load_campaign(path: Optional[str], trials: int) -> CampaignSpec:
    specs = library()
    if path is None:
        scenarios = sorted(specs)
    else:
        with open(path) as handle:
            data = json.load(handle)
        scenarios = data["scenarios"]
    return CampaignSpec.from_dict(
        {"name": "bench-p9", "scenarios": scenarios, "trials": trials},
        library=specs,
    )


def bench(args: argparse.Namespace) -> Dict[str, Any]:
    campaign = load_campaign(args.campaign, args.trials)
    wall0 = time.perf_counter()
    report = CampaignRunner(campaign).run()
    wall = time.perf_counter() - wall0

    rows: List[Dict[str, Any]] = []
    for result in report.results:
        trials = result.trials
        rows.append(
            {
                "scenario": result.name,
                "passed": result.passed,
                "trials": len(trials),
                "defect_classes": result.defect_classes,
                "api_calls_chaos": sum(t.api_calls_chaos for t in trials),
                "api_calls_baseline": sum(
                    t.api_calls_baseline for t in trials
                ),
                "api_overhead": round(
                    sum(t.api_overhead for t in trials) / len(trials), 3
                ),
                "makespan_overhead": round(
                    sum(t.makespan_overhead for t in trials) / len(trials),
                    3,
                ),
            }
        )
        print(
            f"  {result.name:<28} passed={result.passed} "
            f"api_overhead={rows[-1]['api_overhead']:<6} "
            f"makespan_overhead={rows[-1]['makespan_overhead']}",
            file=sys.stderr,
        )

    coverage = report.coverage()
    return {
        "benchmark": "p9_chaos_campaign",
        "campaign": args.campaign or "<full library>",
        "trials": args.trials,
        "scenarios": len(report.results),
        "defect_classes_covered": len(coverage),
        "coverage": coverage,
        "pass_rate": round(report.pass_rate, 4),
        "mean_api_overhead": round(report.mean_api_overhead, 4),
        "violations": report.violations(),
        "wall_s": round(wall, 2),
        "results": rows,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--campaign",
        default=None,
        help="campaign JSON file (default: the full scenario library)",
    )
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--gate-pass-rate", type=float, default=1.0)
    parser.add_argument("--min-scenarios", type=int, default=12)
    parser.add_argument("--min-classes", type=int, default=6)
    parser.add_argument(
        "--gate-overhead",
        type=float,
        default=3.0,
        help="max mean chaos/baseline API-call ratio",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "BENCH_chaos_campaign.json",
        ),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    report = bench(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)

    failures: List[str] = []
    if report["pass_rate"] < args.gate_pass_rate:
        failures.append(
            f"pass rate {report['pass_rate']} < {args.gate_pass_rate}"
        )
        for violation in report["violations"]:
            print(f"  violation: {violation}", file=sys.stderr)
    if report["scenarios"] < args.min_scenarios:
        failures.append(
            f"{report['scenarios']} scenarios < floor {args.min_scenarios}"
        )
    if report["defect_classes_covered"] < args.min_classes:
        failures.append(
            f"{report['defect_classes_covered']} defect classes "
            f"< floor {args.min_classes}"
        )
    if report["mean_api_overhead"] > args.gate_overhead:
        failures.append(
            f"mean API overhead {report['mean_api_overhead']} "
            f"> gate {args.gate_overhead}"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
