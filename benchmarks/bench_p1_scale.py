"""P1 `scale` -- wall-clock cost of plan -> schedule -> apply at estate scale.

Unlike the E-series benchmarks (which report *simulated* makespans),
this one measures the framework's own overhead: how much real CPU time
the planner and each executor burn driving a 1k / 4k / 10k resource
estate, and what the peak per-dispatch cost is. The numbers land in
``BENCH_scale.json`` (see ``docs/performance.md`` for how to read it).

With ``--reference`` every run is repeated with the frozen
pre-optimization executors from ``repro.deploy.reference``, reporting
the speedup -- scheduling decisions are asserted identical (same
simulated makespan), so the speedup is pure overhead reduction.

CI runs the smoke tier::

    python benchmarks/bench_p1_scale.py --sizes 1000 \
        --executors critical-path --budget-s 60 --out /tmp/BENCH_scale.json

which exits non-zero if any apply exceeds the wall-clock budget.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import perf
from repro.cloud import CloudGateway
from repro.deploy import (
    BestEffortExecutor,
    CriticalPathExecutor,
    SequentialExecutor,
)
from repro.deploy.incremental import read_data_sources
from repro.deploy.reference import REFERENCE_FOR
from repro.graph import Planner, build_graph
from repro.graph.critical_path import clear_analysis_cache
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import scale_estate

EXECUTORS = {
    "sequential": SequentialExecutor,
    "best-effort": BestEffortExecutor,
    "critical-path": CriticalPathExecutor,
}


def build_plan(graph, seed: int):
    """Fresh gateway + plan for one executor run (runs never share
    limiter or estate state, so arms are comparable)."""
    clear_analysis_cache()
    gateway = CloudGateway.simulated(seed=seed)
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    state = StateDocument()
    data = read_data_sources(gateway, graph, state)
    t0 = time.perf_counter()
    plan = planner.plan(graph, state, data_values=data)
    return gateway, plan, time.perf_counter() - t0


def make_executor(cls, gateway, concurrency: int):
    if cls in (SequentialExecutor, REFERENCE_FOR[SequentialExecutor]):
        return cls(gateway)
    return cls(gateway, concurrency=concurrency)


def run_one(graph, cls, seed: int, concurrency: int) -> Dict[str, Any]:
    gateway, plan, plan_s = build_plan(graph, seed)
    executor = make_executor(cls, gateway, concurrency)
    perf.reset()
    perf.enable()
    t0 = time.perf_counter()
    result = executor.apply(plan)
    wall = time.perf_counter() - t0
    snap = perf.snapshot()
    perf.disable()
    assert result.ok, f"{executor.name}: apply failed: {result.failed}"
    pick = snap["timers"].get("executor.pick_next", {})
    return {
        "n_changes": len(plan.changes),
        "plan_s": round(plan_s, 4),
        "apply_wall_s": round(wall, 4),
        "makespan_sim_s": round(result.makespan_s, 3),
        "operations": len(result.operations),
        "api_calls": result.api_calls,
        "dispatches": snap["counters"].get("executor.dispatches", 0),
        "pick_total_s": round(pick.get("total_s", 0.0), 6),
        "pick_max_s": round(pick.get("max_s", 0.0), 9),
    }


def bench(args: argparse.Namespace) -> Dict[str, Any]:
    rows: List[Dict[str, Any]] = []
    over_budget: List[str] = []
    for size in args.sizes:
        source = scale_estate(size)
        t0 = time.perf_counter()
        graph = build_graph(Configuration.parse(source))
        build_s = time.perf_counter() - t0
        for name in args.executors:
            cls = EXECUTORS[name]
            row: Dict[str, Any] = {"size": size, "executor": name}
            row["graph_build_s"] = round(build_s, 4)
            row.update(run_one(graph, cls, args.seed, args.concurrency))
            if args.reference:
                ref = run_one(
                    graph, REFERENCE_FOR[cls], args.seed, args.concurrency
                )
                assert ref["makespan_sim_s"] == row["makespan_sim_s"], (
                    f"{name}@{size}: optimized and reference executors "
                    f"diverged ({row['makespan_sim_s']} vs "
                    f"{ref['makespan_sim_s']} simulated seconds)"
                )
                row["reference_apply_wall_s"] = ref["apply_wall_s"]
                row["reference_pick_max_s"] = ref["pick_max_s"]
                row["speedup"] = round(
                    ref["apply_wall_s"] / max(row["apply_wall_s"], 1e-9), 2
                )
            if args.budget_s and row["apply_wall_s"] > args.budget_s:
                over_budget.append(
                    f"{name}@{size}: {row['apply_wall_s']:.2f}s "
                    f"> budget {args.budget_s:.0f}s"
                )
            rows.append(row)
            print(
                f"  {name:14s} n={row['n_changes']:6d} "
                f"plan={row['plan_s']:.2f}s apply={row['apply_wall_s']:.2f}s "
                f"pick_max={row['pick_max_s'] * 1e6:.0f}us"
                + (f" speedup={row['speedup']}x" if "speedup" in row else ""),
                file=sys.stderr,
            )
    return {
        "benchmark": "p1_scale",
        "workload": "scale_estate",
        "seed": args.seed,
        "concurrency": args.concurrency,
        "sizes": args.sizes,
        "results": rows,
        "over_budget": over_budget,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="1000,4000,10000",
        help="comma-separated estate sizes (resources)",
    )
    parser.add_argument(
        "--executors",
        default="sequential,best-effort,critical-path",
        help=f"comma-separated subset of {sorted(EXECUTORS)}",
    )
    parser.add_argument(
        "--reference",
        action="store_true",
        help="also run the frozen pre-optimization executors and report speedup",
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        default=0.0,
        help="fail (exit 1) if any optimized apply exceeds this wall-clock budget",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--concurrency", type=int, default=10)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_scale.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    args.sizes = [int(s) for s in str(args.sizes).split(",") if s]
    args.executors = [e.strip() for e in str(args.executors).split(",") if e.strip()]
    for e in args.executors:
        if e not in EXECUTORS:
            parser.error(f"unknown executor {e!r} (choose from {sorted(EXECUTORS)})")

    report = bench(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if report["over_budget"]:
        for line in report["over_budget"]:
            print(f"BUDGET EXCEEDED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
