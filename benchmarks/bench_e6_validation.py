"""E6 `validation` -- paper 3.2, "Validating IaC infrastructure".

Claim: grammatically-correct programs still fail at deploy time;
semantic types catch the stringly-typed class of bugs, and cloud-level
constraint rules (hand-written or mined from healthy deployments) catch
cross-resource violations -- all at compile time, before any resource
exists. Arms: syntax-only (terraform validate), +semantic types,
+cloud-specific rules, and mined-rules-only. Metrics: catch rate per
mutation class, and the deploy-time cost (simulated minutes + API calls
wasted) of every escaped bug.
"""

import pytest

from repro.core import CloudlessEngine
from repro.lang import Configuration
from repro.validate import (
    DeploymentExample,
    LEVEL_RULES,
    LEVEL_SYNTAX,
    LEVEL_TYPES,
    RuleEngine,
    SpecificationMiner,
    ValidationContext,
    ValidationPipeline,
)
from repro.workloads import ConfigMutator, hub_spoke, web_tier

from _support import Table, record

KINDS = [
    "unknown_attr",
    "bad_enum",
    "wrong_ref_type",
    "drop_required",
    "invalid_cidr",
    "bad_region",
    "region_mismatch",
    "cidr_outside_parent",
    "password_rule",
    "duplicate_name",
]
TRIALS_PER_KIND = 5


def base_source():
    return web_tier() + hub_spoke(name="hub2")


def mined_engine():
    sources = []
    for i in range(6):
        src = hub_spoke(spokes=1, name=f"m{i}") + web_tier(name=f"mw{i}")
        # two thirds of the healthy corpus uses password-authenticated
        # VMs -- always with disable_password_auth = false (the
        # invariant to mine); the rest uses key-based auth
        if i < 4:
            src = src.replace(
                "nic_ids  = [azure_network_interface.",
                'admin_password        = "S3cret-' + str(i) + '!"\n'
                "  disable_password_auth = false\n"
                "  nic_ids  = [azure_network_interface.",
                1,
            )
        sources.append(src)
    examples = [
        DeploymentExample.from_config(Configuration.parse(s)) for s in sources
    ]
    rules = SpecificationMiner(min_support=3).mine(examples)
    return RuleEngine(rules), len(rules)


def deploy_cost_of_escape(config, seed):
    """What an escaped bug costs: sim time + API calls until the error."""
    engine = CloudlessEngine(seed=seed)
    start_t = engine.clock.now
    try:
        result = engine.apply(config, validate_first=False, admit=False)
    except Exception:
        # plan-time failure (e.g. a mutated reference formed a cycle):
        # caught before any cloud call, so no deploy time is wasted
        return None
    if result.apply is None or result.apply.ok:
        return None  # did not actually fail at the cloud (latent bug)
    return {
        "wasted_s": engine.clock.now - start_t,
        "wasted_calls": engine.gateway.total_api_calls(),
    }


def run_experiment():
    mined, n_mined = mined_engine()
    # credibility check: mined rules must not flag the clean config
    clean_ctx = ValidationContext.build(Configuration.parse(base_source()))
    mined_false_positives = len(mined.run(clean_ctx).errors)
    arms = {
        "syntax (terraform validate)": lambda cfg: ValidationPipeline(
            level=LEVEL_SYNTAX
        ).validate(cfg),
        "+semantic types": lambda cfg: ValidationPipeline(
            level=LEVEL_TYPES
        ).validate(cfg),
        "+cloud rules (cloudless)": lambda cfg: ValidationPipeline(
            level=LEVEL_RULES
        ).validate(cfg),
    }

    caught = {arm: 0 for arm in arms}
    caught_mined_rule_level = 0
    rule_level_total = 0
    total = 0
    wasted_time = 0.0
    wasted_calls = 0
    escapes_that_fail = 0

    per_kind = {kind: {arm: 0 for arm in arms} for kind in KINDS}
    for kind in KINDS:
        for trial in range(TRIALS_PER_KIND):
            seed = hash((kind, trial)) % (2**31)
            config = Configuration.parse(base_source())
            mutation = ConfigMutator(seed=seed).apply_kind(config, kind)
            total += 1
            for arm, run in arms.items():
                report = run(config)
                if not report.ok:
                    caught[arm] += 1
                    per_kind[kind][arm] += 1
            # mined-rules arm (only meaningful for rule-level bugs)
            if mutation.catchable_at == "rules":
                rule_level_total += 1
                try:
                    ctx = ValidationContext.build(config)
                    if mined.run(ctx).has_errors():
                        caught_mined_rule_level += 1
                except Exception:
                    pass
            # deploy-time cost when syntax-level validation lets it through
            cost = deploy_cost_of_escape(config, seed)
            if cost is not None:
                escapes_that_fail += 1
                wasted_time += cost["wasted_s"]
                wasted_calls += cost["wasted_calls"]

    table = Table(
        "E6: compile-time catch rate per mutation class (5 trials each)",
        ["mutation"] + [a.split(" (")[0] for a in arms],
    )
    for kind in KINDS:
        table.add(
            kind,
            *[f"{per_kind[kind][arm]}/{TRIALS_PER_KIND}" for arm in arms],
        )
    summary = Table(
        "E6 summary",
        ["metric", "value"],
    )
    for arm in arms:
        summary.add(f"catch rate: {arm}", f"{caught[arm]}/{total}")
    summary.add(
        "catch rate: mined rules (rule-level bugs only)",
        f"{caught_mined_rule_level}/{rule_level_total}",
    )
    summary.add("mined rules learned / false positives on clean config",
                f"{n_mined} / {mined_false_positives}")
    summary.add("bugs that errored at deploy time", f"{escapes_that_fail}/{total}")
    summary.add(
        "mean sim-time wasted per escaped bug (s)",
        wasted_time / max(1, escapes_that_fail),
    )
    summary.add(
        "mean API calls wasted per escaped bug",
        wasted_calls / max(1, escapes_that_fail),
    )
    headline = {
        "catch_syntax": caught["syntax (terraform validate)"] / total,
        "catch_types": caught["+semantic types"] / total,
        "catch_rules": caught["+cloud rules (cloudless)"] / total,
        "catch_mined_rule_level": caught_mined_rule_level / max(1, rule_level_total),
        "mined_false_positives": mined_false_positives,
        "mean_wasted_s": wasted_time / max(1, escapes_that_fail),
    }
    return table, summary, headline


def test_e6_validation(benchmark):
    table, summary, headline = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    record(benchmark, table, **headline)
    summary.show()
    benchmark.extra_info["summary"] = summary.render()
    # the paper's ladder: each level strictly adds catching power
    assert headline["catch_syntax"] == 0.0  # all mutations compile
    assert 0.4 <= headline["catch_types"] < 1.0
    assert headline["catch_rules"] == 1.0
    # mined rules recover most hand-written cross-resource checks
    assert headline["catch_mined_rule_level"] >= 0.4
    assert headline["mined_false_positives"] == 0
    # escaped bugs waste real deploy time
    assert headline["mean_wasted_s"] > 30.0


if __name__ == "__main__":
    table, summary, _ = run_experiment()
    print(table.render())
    print(summary.render())
