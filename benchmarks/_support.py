"""Shared helpers for the benchmark suite.

Every benchmark prints a paper-style table (run with ``-s`` to see it
live) and records its headline numbers in ``benchmark.extra_info`` so
``pytest-benchmark``'s JSON output carries the simulated metrics, not
just wall time.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterable, List, Sequence

from repro.core import CloudlessEngine


def deploy_engine(source: str, seed: int = 0, variables=None, **kwargs) -> CloudlessEngine:
    """A fresh engine with ``source`` applied (asserts success)."""
    engine = CloudlessEngine(seed=seed, **kwargs)
    result = engine.apply(source, variables=variables)
    assert result.ok, f"benchmark setup failed: {result.apply and result.apply.failed}"
    return engine


class Table:
    """Minimal fixed-width table printer for benchmark reports."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *cells: Any) -> None:
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"\n== {self.title} ==".rstrip()]
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render(), file=sys.stderr)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def record(benchmark, table: Table, **extra: Any) -> None:
    """Attach results to pytest-benchmark's extra_info, print them, and
    persist the rendered table under benchmarks/results/ so the
    experiment output survives pytest's output capturing."""
    import os
    import re

    table.show()
    if benchmark is not None:
        benchmark.extra_info["table"] = table.render()
        for key, value in extra.items():
            benchmark.extra_info[key] = value
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9]+", "_", table.title)[:60].strip("_")
    with open(os.path.join(results_dir, f"{slug}.txt"), "w") as handle:
        handle.write(table.render() + "\n")
