"""P5 `outage` -- degraded-mode apply under a regional blackout.

Three arms over a two-region azure estate (stacks striped
eastus/westus2):

* **full baseline** -- fault-free apply of the whole estate;
* **reachable baseline** -- fault-free apply of only the eastus subset
  (the exact subgraph a westus2 blackout leaves reachable);
* **outage arm** -- the whole estate applied while westus2 is dark.

Gates (exit 1 on miss):

* the outage arm terminally fails **zero** resources and skips zero --
  everything unreachable is parked as ``Quarantined``;
* every reachable resource converges (same count as the reachable
  baseline);
* degraded makespan <= ``--gate-makespan`` x the reachable baseline's
  (failing fast must not slow the healthy region down);
* calls that actually hit the dark region are bounded by the breaker
  threshold plus in-flight slack -- the retry storm is provably stopped;
* after the window closes, ``resume`` drains the parked work to the
  canonical estate of the fault-free full baseline.

CI smoke tier::

    python benchmarks/bench_p5_outage.py --resources 1000 \
        --gate-makespan 1.1 --out /tmp/BENCH_outage.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, os.path.join(_HERE, ".."))  # tests.* canonical helpers

from repro.cloud import OutageSpec
from repro.core import CloudlessEngine
from repro.workloads import two_region_estate

from tests.chaos.test_crash_recovery import assert_converged_like

DARK_REGION = "westus2"
REGIONS = ("eastus", "westus2")


def timed_apply(engine, source) -> Dict[str, Any]:
    t0 = time.perf_counter()
    result = engine.apply(source)
    return {
        "result": result,
        "wall_s": time.perf_counter() - t0,
        "makespan_s": result.apply.makespan_s if result.apply else 0.0,
    }


def run(args, workdir) -> tuple:
    rows: List[Dict[str, Any]] = []
    failures: List[str] = []

    full_src = two_region_estate(args.resources, regions=REGIONS)
    reachable_src = two_region_estate(
        args.resources, regions=REGIONS, region_filter=("eastus",)
    )

    full_engine = CloudlessEngine(seed=args.seed)
    full = timed_apply(full_engine, full_src)
    assert full["result"].ok, "full baseline apply failed"

    reachable_engine = CloudlessEngine(seed=args.seed)
    reachable = timed_apply(reachable_engine, reachable_src)
    assert reachable["result"].ok, "reachable baseline apply failed"
    reachable_count = len(reachable["result"].apply.succeeded)

    outage = OutageSpec(
        start_s=0.0,
        end_s=full["makespan_s"] * 4.0 + 50000.0,
        region=DARK_REGION,
    )
    engine = CloudlessEngine(
        seed=args.seed, wal_path=os.path.join(workdir, "outage.wal")
    )
    engine.gateway.inject_outage("azure", outage)
    dark = timed_apply(engine, full_src)
    dark_apply = dark["result"].apply

    if not dark["result"].partial:
        failures.append("outage arm did not report a partial apply")
    if dark_apply.failed:
        failures.append(
            f"outage arm terminally failed {len(dark_apply.failed)} "
            f"resource(s); expected 0 (quarantine instead)"
        )
    if dark_apply.skipped:
        failures.append(
            f"outage arm skipped {len(dark_apply.skipped)} resource(s)"
        )
    if len(dark_apply.succeeded) != reachable_count:
        failures.append(
            f"reachable subgraph did not converge: "
            f"{len(dark_apply.succeeded)} != {reachable_count}"
        )
    ratio = dark["makespan_s"] / max(reachable["makespan_s"], 1e-9)
    if ratio > args.gate_makespan:
        failures.append(
            f"degraded makespan {dark['makespan_s']:.0f}s is "
            f"{ratio:.3f}x the reachable baseline "
            f"({reachable['makespan_s']:.0f}s); allowed "
            f"{args.gate_makespan}x"
        )
    # the breaker must stop the storm: only the failures that tripped it
    # plus operations already in flight may ever reach the dark region
    hits = engine.gateway.planes["azure"].faults.outage_hits
    policy = engine.health.policy
    hit_budget = policy.failure_threshold + 2 * 10  # 10 = exec concurrency
    if hits > hit_budget:
        failures.append(
            f"retry storm into the dark region: {hits} calls hit the "
            f"outage; budget {hit_budget}"
        )

    rows.append(
        {
            "op": "degraded_apply",
            "resources": args.resources,
            "reachable_resources": reachable_count,
            "quarantined": len(dark_apply.quarantined),
            "failed": len(dark_apply.failed),
            "full_makespan_s": round(full["makespan_s"], 1),
            "reachable_makespan_s": round(reachable["makespan_s"], 1),
            "degraded_makespan_s": round(dark["makespan_s"], 1),
            "makespan_ratio": round(ratio, 4),
            "dark_region_hits": hits,
            "dark_region_hit_budget": hit_budget,
            "wall_s": round(dark["wall_s"], 4),
        }
    )

    # recovery: the region comes back, resume drains the quarantine
    engine.clock.advance_to(outage.end_s + 4000.0)
    t0 = time.perf_counter()
    outcome = engine.resume(full_src)
    resume_wall = time.perf_counter() - t0
    if not outcome.ok:
        failures.append("post-recovery resume did not converge")
    else:
        try:
            assert_converged_like(engine, full_engine)
        except AssertionError as exc:
            failures.append(f"drained estate is not canonical: {exc}")
    summary = outcome.recovery.summary() if outcome.recovery else {}
    rows.append(
        {
            "op": "recovery_drain",
            "resources": args.resources,
            "resume_wall_s": round(resume_wall, 4),
            "recovery": summary,
            "drained": summary.get("quarantined", 0),
        }
    )
    return rows, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--resources", type=int, default=1000, help="two-region estate size"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--gate-makespan",
        type=float,
        default=1.1,
        help="max degraded/reachable-baseline makespan ratio",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(_HERE, "BENCH_outage.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-outage-") as workdir:
        rows, failures = run(args, workdir)
    for row in rows:
        print(f"  {json.dumps(row)}", file=sys.stderr)

    report = {
        "benchmark": "p5_outage",
        "seed": args.seed,
        "dark_region": DARK_REGION,
        "results": rows,
        "failures": failures,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if failures:
        for line in failures:
            print(f"GATE MISSED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
