"""E5 `drift-detection` -- paper 3.5, "IaC drift detection and
reconciliation".

Claim: driftctl-style full scans "incur significant time overhead due to
cloud API rate limiting" and are expensive to run frequently, while
activity-log watching detects drift natively and cheaply. Arms: periodic
full scan (baseline, 10-minute period -- running it faster would burn
even more quota) vs activity-log poll every minute. Both watch the same
8-hour horizon with drift events injected at random times. Metrics:
mean/95p detection latency, total API calls, detection recall.
"""

import random

import pytest

from repro.core import CloudlessEngine
from repro.drift import FullScanDetector, LogWatchDetector
from repro.workloads import sized_estate

from _support import Table, record

HORIZON_S = 8 * 3600.0
SCAN_PERIOD_S = 600.0
POLL_PERIOD_S = 60.0
N_EVENTS = 12


def build_estate(n_resources, seed):
    engine = CloudlessEngine(seed=seed)
    result = engine.apply(sized_estate(n_resources))
    assert result.ok
    return engine


def drift_schedule(engine, seed):
    """(time, injector) pairs spread over the horizon."""
    rng = random.Random(seed)
    start = engine.clock.now
    vms = [
        e
        for e in engine.state.resources()
        if e.address.type == "aws_virtual_machine"
    ]
    events = []
    for i in range(N_EVENTS):
        at = start + rng.uniform(0.05, 0.95) * HORIZON_S
        victim = rng.choice(vms)
        events.append((at, victim.resource_id))
    return sorted(events)


def run_arm(n_resources, detector_kind, seed):
    engine = build_estate(n_resources, seed)
    events = drift_schedule(engine, seed + 1)
    start = engine.clock.now
    calls_before = engine.gateway.total_api_calls()

    if detector_kind == "log":
        detector = LogWatchDetector(engine.gateway)
        detector.poll(engine.state)  # consume deployment history
        period = POLL_PERIOD_S
    elif detector_kind == "scan-fast":
        detector = FullScanDetector(engine.gateway)
        period = POLL_PERIOD_S  # scanning at log-watch latency
    else:
        detector = FullScanDetector(engine.gateway)
        period = SCAN_PERIOD_S

    latencies = []
    detected = set()
    pending = list(events)
    next_check = start + period
    while next_check <= start + HORIZON_S:
        # inject any drift events that occur before this check
        while pending and pending[0][0] <= next_check:
            at, rid = pending.pop(0)
            engine.clock.advance_to(max(engine.clock.now, at))
            engine.gateway.planes["aws"].external_update(
                rid, {"size": "xlarge"}, actor="legacy-script"
            )
        engine.clock.advance_to(max(engine.clock.now, next_check))
        run = (
            detector.poll(engine.state)
            if detector_kind == "log"
            else detector.scan(engine.state)
        )
        for finding in run.findings:
            if finding.kind == "modified" and finding.resource_id not in detected:
                detected.add(finding.resource_id)
                event_time = next(
                    at for at, rid in events if rid == finding.resource_id
                )
                latencies.append(engine.clock.now - event_time)
        next_check += period
    total_calls = engine.gateway.total_api_calls() - calls_before
    injected = {rid for _, rid in events}
    recall = len(detected & injected) / len(injected)
    latencies.sort()
    mean_latency = sum(latencies) / len(latencies) if latencies else float("inf")
    p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else float("inf")
    return {
        "mean_latency_s": mean_latency,
        "p95_latency_s": p95,
        "api_calls": total_calls,
        "recall": recall,
    }


def run_experiment():
    table = Table(
        "E5: drift detection over an 8h horizon (12 injected events)",
        [
            "estate",
            "arm",
            "mean_detect_s",
            "p95_detect_s",
            "api_calls",
            "recall",
        ],
    )
    headline = {}
    for n in (60, 120, 240):
        for kind, arm_name in (
            ("scan", f"full scan / {int(SCAN_PERIOD_S/60)}min (driftctl)"),
            ("scan-fast", f"full scan / {int(POLL_PERIOD_S/60)}min (driftctl@log latency)"),
            ("log", f"log watch / {int(POLL_PERIOD_S/60)}min (cloudless)"),
        ):
            out = run_arm(n, kind, seed=500 + n)
            table.add(
                n,
                arm_name,
                out["mean_latency_s"],
                out["p95_latency_s"],
                out["api_calls"],
                out["recall"],
            )
            headline[f"{n}|{kind}|calls"] = out["api_calls"]
            headline[f"{n}|{kind}|mean"] = round(out["mean_latency_s"], 1)
            headline[f"{n}|{kind}|recall"] = out["recall"]
    return table, headline


def test_e5_drift(benchmark):
    table, headline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    for n in (60, 120, 240):
        assert headline[f"{n}|log|recall"] == 1.0
        assert headline[f"{n}|scan|recall"] == 1.0
        # log watching detects ~10x faster than the 10-minute scan...
        assert headline[f"{n}|log|mean"] < headline[f"{n}|scan|mean"] / 3
        # ...and matching that latency by scanning every minute always
        # costs more quota than log watching
        assert headline[f"{n}|scan-fast|calls"] > headline[f"{n}|log|calls"]
    # scan cost grows with estate size; log cost does not
    assert headline["240|scan|calls"] > headline["60|scan|calls"] * 2
    assert headline["240|scan-fast|calls"] > headline["240|log|calls"] * 4
    assert headline["240|log|calls"] == headline["60|log|calls"]


if __name__ == "__main__":
    print(run_experiment()[0].render())
