"""E8 `synthesis` -- paper 3.1, "Automated IaC synthesis".

Claim: existing LLM tools "frequently generate invalid IaC code, even
for small-scale templates", while type-guided search plus retrieval
grounding yields "reliably correct IaC programs". Arms: noisy generator
(the LLM stand-in), noisy + retrieval grounding, and the type-guided
synthesizer; each evaluated one-shot and inside a repair loop (generate
-> validate -> retry, the practical deployment mode). Metrics: validity
rate, mean attempts to a valid program, convention adherence.
"""

import random

import pytest

from repro.lang import Configuration
from repro.synthesis import (
    NoisyGenerator,
    RetrievalCorpus,
    TypeGuidedSynthesizer,
    random_task,
)
from repro.validate import LEVEL_RULES, validate
from repro.workloads import web_tier

from _support import Table, record

N_TASKS = 40
MAX_ATTEMPTS = 5


def tasks():
    rng = random.Random(800)
    return [random_task(rng, i) for i in range(N_TASKS)]


def corpus():
    sources = [
        web_tier(name=f"corp{i}").replace(
            'size    = "small"', 'size    = "medium"'
        )
        for i in range(3)
    ]
    return RetrievalCorpus().fit([Configuration.parse(s) for s in sources])


def evaluate(make_generator):
    """One-shot validity + attempts-to-valid under a repair loop."""
    one_shot_ok = 0
    attempts_used = []
    unfixed = 0
    for i, task in enumerate(tasks()):
        first = None
        solved = None
        for attempt in range(1, MAX_ATTEMPTS + 1):
            generator = make_generator(seed=1000 * i + attempt)
            result = generator_generate(generator, task)
            ok = validate(result.sources, level=LEVEL_RULES).ok
            if attempt == 1:
                first = ok
            if ok:
                solved = attempt
                break
        one_shot_ok += 1 if first else 0
        if solved is None:
            unfixed += 1
        else:
            attempts_used.append(solved)
    mean_attempts = (
        sum(attempts_used) / len(attempts_used) if attempts_used else float("inf")
    )
    return {
        "one_shot": one_shot_ok / N_TASKS,
        "mean_attempts": mean_attempts,
        "unsolved": unfixed,
    }


def generator_generate(generator, task):
    if isinstance(generator, TypeGuidedSynthesizer):
        return generator.synthesize(task)
    return generator.generate(task)


def run_experiment():
    grounding = corpus()
    arms = {
        "unguided generator (LLM baseline)": lambda seed: NoisyGenerator(seed=seed),
        "+ retrieval grounding": lambda seed: NoisyGenerator(
            seed=seed, retrieval=grounding
        ),
        "type-guided synthesis (cloudless)": lambda seed: TypeGuidedSynthesizer(),
        "type-guided + retrieval": lambda seed: TypeGuidedSynthesizer(
            corpus=grounding
        ),
    }
    table = Table(
        f"E8: synthesis validity over {N_TASKS} tasks "
        f"(repair loop <= {MAX_ATTEMPTS} attempts)",
        ["arm", "one_shot_valid", "mean_attempts", "unsolved"],
    )
    headline = {}
    for arm_name, make in arms.items():
        out = evaluate(make)
        table.add(
            arm_name,
            f"{out['one_shot']:.0%}",
            out["mean_attempts"],
            out["unsolved"],
        )
        headline[f"{arm_name}|one_shot"] = round(out["one_shot"], 3)
        headline[f"{arm_name}|attempts"] = round(out["mean_attempts"], 2)

    # convention adherence: does retrieval personalize output?
    synth = TypeGuidedSynthesizer(corpus=grounding)
    conventional = 0
    vm_tasks = [
        t
        for t in tasks()
        if any(r.rtype == "aws_virtual_machine" for r in t.requests)
    ]
    for task in vm_tasks:
        result = synth.synthesize(task)
        if any("size" in c and "medium" in c for c in result.conventions_applied):
            conventional += 1
    convention_rate = conventional / max(1, len(vm_tasks))
    headline["convention_rate"] = round(convention_rate, 2)
    return table, headline


def test_e8_synthesis(benchmark):
    table, headline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    base = headline["unguided generator (LLM baseline)|one_shot"]
    grounded = headline["+ retrieval grounding|one_shot"]
    guided = headline["type-guided synthesis (cloudless)|one_shot"]
    assert base < 0.8  # "frequently generate invalid IaC code"
    assert grounded > base  # grounding suppresses hallucination
    assert guided == 1.0  # valid by construction
    assert headline["type-guided synthesis (cloudless)|attempts"] == 1.0
    assert headline["convention_rate"] >= 0.9  # personalization works


if __name__ == "__main__":
    print(run_experiment()[0].render())
