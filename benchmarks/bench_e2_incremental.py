"""E2 `incremental-update` -- paper 3.3 "accelerating deployment updates".

Claim: "even a single resource update will trigger expensive queries on
all cloud-level resource state and recomputation of the deployment plan
from the ground up." Arms: full-refresh replan (baseline) vs
impact-scoped replan. Expected shape: API calls and turnaround scale
with estate size for the baseline but with delta size for cloudless.
"""

import pytest

from repro.cloud import CloudGateway
from repro.deploy import CriticalPathExecutor, UpdatePipeline
from repro.deploy.incremental import read_data_sources
from repro.graph import Planner, build_graph
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import microservices

from _support import Table, record

SIZES = [4, 8, 16]  # services; ~12, ~25, ~50 aws resources + substrate


def deployed(gateway, source):
    graph = build_graph(Configuration.parse(source))
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    state = StateDocument()
    data = read_data_sources(gateway, graph, state)
    plan = planner.plan(graph, state, data_values=data)
    result = CriticalPathExecutor(gateway).apply(plan)
    assert result.ok
    return result.state


def single_resource_delta(source):
    # edit exactly one dns record (first occurrence only)
    return source.replace('zone  = "example.sim"', 'zone  = "edited.sim"', 1)


def run_experiment():
    table = Table(
        "E2: update turnaround, full refresh vs impact-scoped",
        [
            "services",
            "estate",
            "arm",
            "refresh_api_calls",
            "refresh_s",
            "turnaround_s",
            "scope",
        ],
    )
    headline = {}
    for services in SIZES:
        source = microservices(services=services, vms_per_service=2)
        new_source = single_resource_delta(source)
        for incremental in (False, True):
            gateway = CloudGateway.simulated(seed=200 + services)
            state = deployed(gateway, source)
            estate = len(state)
            pipeline = UpdatePipeline(gateway, incremental=incremental)
            outcome = pipeline.plan_update(
                Configuration.parse(source),
                Configuration.parse(new_source),
                state,
            )
            arm = "impact-scoped" if incremental else "full-refresh (terraform)"
            table.add(
                services,
                estate,
                arm,
                outcome.refresh.api_calls,
                outcome.refresh.duration_s,
                outcome.turnaround_s,
                outcome.scope_size if incremental else estate,
            )
            headline[f"{services}|{arm}|api"] = outcome.refresh.api_calls
            headline[f"{services}|{arm}|turnaround"] = round(
                outcome.turnaround_s, 2
            )
    return table, headline


def test_e2_incremental(benchmark):
    table, headline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    # shape: baseline refresh cost grows with estate; scoped cost does not
    big = SIZES[-1]
    small = SIZES[0]
    assert (
        headline[f"{big}|full-refresh (terraform)|api"]
        > headline[f"{small}|full-refresh (terraform)|api"] * 2
    )
    assert headline[f"{big}|impact-scoped|api"] <= headline[f"{small}|impact-scoped|api"] + 2
    assert (
        headline[f"{big}|impact-scoped|turnaround"]
        < headline[f"{big}|full-refresh (terraform)|turnaround"]
    )


if __name__ == "__main__":
    print(run_experiment()[0].render())
